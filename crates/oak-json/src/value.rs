//! The owned JSON document tree.

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value.
///
/// Objects preserve key order by storing members in a [`BTreeMap`]; Oak's
/// report codec never depends on insertion order, and sorted keys make
/// serialized output deterministic, which the experiment harness relies on
/// when sizing reports (paper Fig. 15).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// The `null` literal.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`, as in browsers producing HAR files.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence of values.
    Array(Vec<Value>),
    /// An object; keys are sorted for deterministic output.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Returns an empty JSON object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Returns an empty JSON array.
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Looks up a member of an object by key.
    ///
    /// Returns `None` if `self` is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Looks up an element of an array by index.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// Inserts a member into an object, replacing any existing value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object; the report codec only builds
    /// objects through [`Value::object`], so a non-object here is a logic
    /// error, not a data error.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        match self {
            Value::Object(map) => {
                map.insert(key.into(), value.into());
            }
            _ => panic!("Value::set on non-object"),
        }
    }

    /// Appends an element to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Value>) {
        match self {
            Value::Array(items) => items.push(value.into()),
            _ => panic!("Value::push on non-array"),
        }
    }

    /// Returns the boolean if `self` is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number if `self` is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as an unsigned integer if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Returns the string slice if `self` is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if `self` is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the members if `self` is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// True if `self` is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl Default for Value {
    /// The default value is `null`, matching an absent JSON member.
    fn default() -> Value {
        Value::Null
    }
}

impl fmt::Display for Value {
    /// Writes the compact serialization (no interstitial whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::writer::write_compact(self, f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}
