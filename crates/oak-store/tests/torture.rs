//! Crash-recovery torture: truncate and corrupt WAL files at arbitrary
//! byte offsets and prove recovery always yields a valid prefix state —
//! never a panic, never a partially-applied frame.

mod common;

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use common::{apply_op, fingerprint, scripted_ops, seed_rules, temp_dir};
use oak_core::engine::{Oak, OakConfig};
use oak_core::events::SequencedEvent;
use oak_store::segment::read_segment;
use oak_store::{recover, FsyncPolicy, OakStore, StoreOptions};

fn always_fsync() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::Always,
        ..StoreOptions::default()
    }
}

/// Journals a scripted workload into `dir`; returns the live fingerprint.
fn build_wal(dir: &Path, seed: u64, ops: usize) -> String {
    let store = Arc::new(OakStore::open(dir, always_fsync()).expect("open store"));
    let mut oak = Oak::new(OakConfig::default());
    oak.set_event_sink(store.clone());
    seed_rules(&oak);
    for (step, op) in scripted_ops(seed, ops).into_iter().enumerate() {
        apply_op(&oak, step, op);
    }
    fingerprint(&oak)
}

fn wal_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "wal"))
        .collect();
    files.sort();
    files
}

fn copy_dir(from: &Path, tag: &str) -> PathBuf {
    let to = temp_dir(tag);
    fs::create_dir_all(&to).expect("create copy dir");
    for entry in fs::read_dir(from).expect("read dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), to.join(entry.file_name())).expect("copy file");
    }
    to
}

/// The events a damaged directory still yields, computed independently of
/// `recover` (straight off the frames), for cross-checking.
fn salvageable_events(dir: &Path) -> Vec<SequencedEvent> {
    let mut events = Vec::new();
    for path in wal_files(dir) {
        let contents = read_segment(&path).expect("read segment");
        for payload in &contents.payloads {
            let Ok(text) = std::str::from_utf8(payload) else {
                break;
            };
            let Ok(doc) = oak_json::parse(text) else {
                break;
            };
            let Ok(event) = SequencedEvent::from_value(&doc) else {
                break;
            };
            events.push(event);
        }
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// Asserts the one torture invariant: recovery of `dir` succeeds without
/// panicking, and the rebuilt engine is exactly the replay of the frames
/// that survived — a valid prefix per segment, nothing partial.
fn assert_valid_prefix_recovery(dir: &Path) {
    let recovered = recover(dir, OakConfig::default()).expect("recover damaged dir");
    let reference = Oak::new(OakConfig::default());
    for event in salvageable_events(dir) {
        reference.apply_event(&event);
    }
    assert_eq!(
        fingerprint(&recovered.oak),
        fingerprint(&reference),
        "recovered state must equal replay of the surviving frame prefix"
    );
}

#[test]
fn pristine_wal_recovers_exactly() {
    let dir = temp_dir("pristine");
    let live = build_wal(&dir, 11, 60);
    let recovered = recover(&dir, OakConfig::default()).expect("recover");
    assert_eq!(recovered.torn_segments, 0);
    assert_eq!(fingerprint(&recovered.oak), live);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_every_offset_yields_valid_prefix() {
    let dir = temp_dir("trunc-src");
    build_wal(&dir, 23, 40);
    for target in wal_files(&dir) {
        let len = fs::metadata(&target).expect("metadata").len();
        // Every offset on small files would be slow across all segments;
        // a stride plus the first/last few bytes covers header cuts,
        // mid-frame cuts, and frame-boundary cuts.
        let mut cuts: Vec<u64> = (0..len).step_by(37).collect();
        cuts.extend(len.saturating_sub(5)..=len);
        for cut in cuts {
            let copy = copy_dir(&dir, "trunc");
            let victim = copy.join(target.file_name().expect("file name"));
            let file = fs::OpenOptions::new()
                .write(true)
                .open(&victim)
                .expect("open victim");
            file.set_len(cut).expect("truncate");
            drop(file);
            assert_valid_prefix_recovery(&copy);
            fs::remove_dir_all(&copy).ok();
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_at_arbitrary_offsets_yields_valid_prefix() {
    let dir = temp_dir("corrupt-src");
    build_wal(&dir, 31, 40);
    for target in wal_files(&dir) {
        let pristine = fs::read(&target).expect("read segment");
        for offset in (0..pristine.len()).step_by(23) {
            for flip in [0x01u8, 0x80, 0xFF] {
                let copy = copy_dir(&dir, "corrupt");
                let victim = copy.join(target.file_name().expect("file name"));
                let mut bytes = pristine.clone();
                bytes[offset] ^= flip;
                fs::write(&victim, &bytes).expect("write corrupted");
                assert_valid_prefix_recovery(&copy);
                fs::remove_dir_all(&copy).ok();
            }
        }
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_newest_snapshot_falls_back_without_loss() {
    let dir = temp_dir("snapfall");
    let live = {
        let store = Arc::new(OakStore::open(&dir, always_fsync()).expect("open store"));
        let mut oak = Oak::new(OakConfig::default());
        oak.set_event_sink(store.clone());
        seed_rules(&oak);
        let ops = scripted_ops(41, 60);
        for (step, op) in ops.iter().enumerate() {
            apply_op(&oak, step, *op);
            if step == 20 || step == 40 {
                store.snapshot(&oak).expect("snapshot");
            }
        }
        fingerprint(&oak)
    };
    let newest = {
        let mut snaps: Vec<PathBuf> = fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "snap"))
            .collect();
        snaps.sort();
        assert_eq!(snaps.len(), 2, "keep_snapshots: 2 holds two snapshots");
        snaps.pop().expect("newest snapshot")
    };

    // Flip one byte inside the newest snapshot's payload: its CRC fails,
    // recovery falls back to the older snapshot — and because segments
    // compact only below the *oldest kept* watermark, the WAL still holds
    // everything since that older snapshot. No state is lost.
    let mut bytes = fs::read(&newest).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&newest, &bytes).expect("write corrupted snapshot");

    let recovered = recover(&dir, OakConfig::default()).expect("recover");
    assert!(recovered.snapshot_loaded, "older snapshot still loads");
    assert_eq!(fingerprint(&recovered.oak), live);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_garbage_directories_recover_empty() {
    // No directory at all.
    let missing = temp_dir("missing");
    let recovered = recover(&missing, OakConfig::default()).expect("recover missing");
    assert!(!recovered.snapshot_loaded);
    assert_eq!(recovered.events_replayed, 0);

    // A directory holding a file that is pure garbage under WAL names.
    let dir = temp_dir("garbage");
    fs::create_dir_all(&dir).expect("create dir");
    fs::write(dir.join("seg-00-00000000.wal"), b"not a segment at all").expect("write garbage");
    fs::write(
        dir.join("snap-00000000000000000001.snap"),
        b"nor a snapshot",
    )
    .expect("write");
    let recovered = recover(&dir, OakConfig::default()).expect("recover garbage");
    assert!(!recovered.snapshot_loaded);
    assert_eq!(recovered.events_replayed, 0);
    assert_eq!(recovered.torn_segments, 1);
    fs::remove_dir_all(&dir).ok();
}
