//! Shared test harness: temp directories and a deterministic engine
//! workload that exercises every persisted event type.

// Each test binary compiles this module and uses a subset of it.
#![allow(dead_code)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use oak_core::engine::Oak;
use oak_core::matching::NoFetch;
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::{Rule, SelectionPolicy};
use oak_core::Instant;

/// A fresh, empty directory under the system temp root. Callers clean up
/// on success; a leftover directory after a failure is debugging aid, not
/// litter.
pub fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("oak-store-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Hosts (and rules) the workload plays with.
pub const HOSTS: usize = 4;
/// Users the workload spreads operations over (crosses shard boundaries).
pub const USERS: usize = 6;

/// A page referencing every host, so serving exercises rewrite + expiry.
pub fn page() -> String {
    (0..HOSTS)
        .map(|h| format!(r#"<script src="http://cdn{h}.example/lib.js"></script>"#))
        .collect()
}

/// Registers one rule per host, with varied TTL / quota / selection so
/// the persisted rule format carries every field at least once.
pub fn seed_rules(oak: &Oak) {
    for h in 0..HOSTS {
        let mut rule = Rule::replace_identical(
            format!(r#"<script src="http://cdn{h}.example/lib.js">"#),
            [
                format!(r#"<script src="http://m1.example/cdn{h}/lib.js">"#),
                format!(r#"<script src="http://m2.example/cdn{h}/lib.js">"#),
            ],
        );
        if h % 2 == 0 {
            rule = rule.with_ttl_ms(Some(25));
        }
        if h % 3 == 1 {
            rule = rule
                .with_violations_required(2)
                .with_selection(SelectionPolicy::UserHash);
        }
        oak.add_rule(rule).expect("seed rule");
    }
}

/// A report in which `cdn{host}` is the clear violator.
pub fn violating_report(user: usize, host: usize) -> PerfReport {
    let mut report = PerfReport::new(format!("u-{}", user % USERS), "/p");
    report.push(ObjectTiming::new(
        format!("http://cdn{host}.example/lib.js"),
        format!("10.0.{host}.1"),
        30_000,
        900.0,
    ));
    for good in 0..4 {
        report.push(ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 5.0,
        ));
    }
    report
}

/// A report in which every server performs alike (no violators).
pub fn benign_report(user: usize) -> PerfReport {
    let mut report = PerfReport::new(format!("u-{}", user % USERS), "/p");
    for good in 0..5 {
        report.push(ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 3.0,
        ));
    }
    report
}

/// One workload operation: `(kind, user, host)`. Kind selects among
/// every mutation the engine can journal.
pub type Op = (usize, usize, usize);

/// Applies one operation at logical time `step * 10`.
pub fn apply_op(oak: &Oak, step: usize, op: Op) {
    let (kind, user, host) = op;
    let now = Instant(step as u64 * 10);
    let user_name = format!("u-{}", user % USERS);
    let host = host % HOSTS;
    match kind % 8 {
        // Ingest dominates the mix, as it does in production.
        0 | 1 => {
            oak.ingest_report(now, &violating_report(user, host), &NoFetch);
        }
        2 => {
            oak.ingest_report(now, &benign_report(user), &NoFetch);
        }
        3 => {
            oak.modify_page(now, &user_name, "/p", &page());
        }
        4 => {
            if let Some((id, _)) = oak.rules().nth(host) {
                oak.force_activate(now, &user_name, id);
            }
        }
        5 => {
            if let Some((id, _)) = oak.rules().nth(host) {
                oak.force_deactivate(&user_name, id);
            }
        }
        6 => {
            oak.prune_inactive_users(Instant(now.as_millis().saturating_sub(15)));
        }
        _ => {
            // Rule turnover: retire one rule and register a replacement
            // (ids are never reused, so this grows the id space).
            if let Some((id, _)) = oak.rules().nth(host) {
                oak.remove_rule(id);
            }
            oak.add_rule(Rule::remove(format!(
                r#"<script src="http://cdn{host}.example/lib.js">"#
            )))
            .expect("replacement rule");
        }
    }
}

/// A canonical byte-exact fingerprint of every durable engine
/// observable: rules, per-user activations and pending counts, the
/// activity log, aggregates, and both sequence counters.
///
/// `last_seen` is masked: page serves refresh it in memory but are not
/// journaled (a WAL write on the serve fast path would defeat it), so it
/// is deliberately outside the byte-identical recovery guarantee — which
/// covers `rules()`, `active_rules()`, `aggregates()`, and `log()`.
pub fn fingerprint(oak: &Oak) -> String {
    let mut doc = oak.snapshot_json();
    mask_last_seen(&mut doc);
    doc.to_string()
}

fn mask_last_seen(value: &mut oak_json::Value) {
    use oak_json::Value;
    match value {
        Value::Object(members) => {
            for (key, member) in members.iter_mut() {
                if key == "last_seen" {
                    *member = Value::Number(0.0);
                } else {
                    mask_last_seen(member);
                }
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                mask_last_seen(item);
            }
        }
        _ => {}
    }
}

/// The acceptance-criteria observables, rendered to comparable text:
/// `rules()` (via the spec formatter — `Rule` has no `PartialEq`),
/// `active_rules()` for every given user, `aggregates()`, and `log()`.
pub fn observables(oak: &Oak, users: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (id, rule) in oak.rules() {
        writeln!(out, "rule {id:?} {}", oak_core::spec::format_rule(&rule)).unwrap();
    }
    for user in users {
        writeln!(out, "active {user} {:?}", oak.active_rules(user)).unwrap();
    }
    writeln!(out, "aggregates {:?}", oak.aggregates()).unwrap();
    writeln!(out, "log {:?}", oak.log()).unwrap();
    out
}

/// The user names a workload can touch.
pub fn all_users() -> Vec<String> {
    (0..USERS).map(|u| format!("u-{u}")).collect()
}

/// A small deterministic op sequence derived from a seed, for tests that
/// want variety without a strategy runner.
pub fn scripted_ops(seed: u64, len: usize) -> Vec<Op> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    (0..len)
        .map(|_| {
            let r = next();
            (
                (r % 8) as usize,
                ((r >> 8) % USERS as u64) as usize,
                ((r >> 16) % HOSTS as u64) as usize,
            )
        })
        .collect()
}
