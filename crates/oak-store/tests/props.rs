//! Property tests for the durability layer: WAL frame round-trips,
//! snapshot round-trips, and replay determinism.

mod common;

use proptest::prelude::*;

use common::{apply_op, fingerprint, seed_rules, HOSTS, USERS};
use oak_core::engine::{Oak, OakConfig};
use oak_store::segment::{decode_frame, encode_frame, FRAME_OVERHEAD};
use oak_store::{recover, FsyncPolicy, OakStore, StoreOptions};

/// Strategy: one workload operation.
fn op_strategy() -> impl Strategy<Value = common::Op> {
    (0usize..8, 0usize..USERS, 0usize..HOSTS)
}

fn always_fsync() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::Always,
        ..StoreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode_frame` inverts `encode_frame` for any payload and tells
    /// exactly how many bytes the frame occupied.
    #[test]
    fn frame_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let frame = encode_frame(&payload);
        prop_assert_eq!(frame.len(), FRAME_OVERHEAD + payload.len());
        let (decoded, next) = decode_frame(&frame, 0).expect("frame decodes");
        prop_assert_eq!(decoded, &payload[..]);
        prop_assert_eq!(next, frame.len());
    }

    /// Concatenated frames decode back to the same payload sequence, and
    /// chopping any suffix off never yields a phantom frame.
    #[test]
    fn frame_stream_roundtrip(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..10),
        chop in 0usize..32,
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            buf.extend_from_slice(&encode_frame(p));
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while let Some((payload, next)) = decode_frame(&buf, offset) {
            decoded.push(payload.to_vec());
            offset = next;
        }
        prop_assert_eq!(&decoded, &payloads);
        prop_assert_eq!(offset, buf.len());

        // Truncate mid-stream: decoding stops at a frame boundary at or
        // before the cut, never past it.
        let cut = buf.len().saturating_sub(chop);
        let truncated = &buf[..cut];
        let mut offset = 0;
        while let Some((_, next)) = decode_frame(truncated, offset) {
            offset = next;
        }
        prop_assert!(offset <= cut);
    }

    /// A snapshot document survives encode → parse → rebuild → encode
    /// byte-identically, whatever state the workload drove the engine to.
    #[test]
    fn snapshot_roundtrip(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let oak = Oak::new(OakConfig::default());
        seed_rules(&oak);
        for (step, op) in ops.into_iter().enumerate() {
            apply_op(&oak, step, op);
        }
        let doc = oak.snapshot_json();
        let text = doc.to_string();
        let parsed = oak_json::parse(&text).expect("snapshot parses");
        let rebuilt = Oak::from_snapshot_json(OakConfig::default(), &parsed)
            .expect("snapshot rebuilds");
        // Unmasked on both sides: a snapshot restores everything,
        // last_seen included.
        prop_assert_eq!(rebuilt.snapshot_json().to_string(), text);
    }

    /// Replay determinism, the tentpole guarantee: journal an arbitrary
    /// workload, recover from disk, and every engine observable — rules,
    /// activations, pending counts, log, aggregates, sequence counters —
    /// is byte-identical.
    #[test]
    fn replay_rebuilds_identical_state(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dir = common::temp_dir("props");
        {
            let store = std::sync::Arc::new(
                OakStore::open(&dir, always_fsync()).expect("open store"),
            );
            let mut oak = Oak::new(OakConfig::default());
            oak.set_event_sink(store.clone());
            seed_rules(&oak);
            for (step, op) in ops.into_iter().enumerate() {
                apply_op(&oak, step, op);
            }
            let recovered = recover(&dir, OakConfig::default()).expect("recover");
            prop_assert_eq!(recovered.torn_segments, 0);
            prop_assert_eq!(fingerprint(&recovered.oak), fingerprint(&oak));
            let users = common::all_users();
            prop_assert_eq!(
                common::observables(&recovered.oak, &users),
                common::observables(&oak, &users)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Same as above, but with a mid-workload snapshot: recovery composes
    /// snapshot + WAL tail instead of replaying from genesis.
    #[test]
    fn snapshot_plus_tail_rebuilds_identical_state(
        ops in prop::collection::vec(op_strategy(), 2..60),
        cut_permille in 0usize..1000,
    ) {
        let dir = common::temp_dir("snap-tail");
        {
            let store = std::sync::Arc::new(
                OakStore::open(&dir, always_fsync()).expect("open store"),
            );
            let mut oak = Oak::new(OakConfig::default());
            oak.set_event_sink(store.clone());
            seed_rules(&oak);
            let cut = ops.len() * cut_permille / 1000;
            for (step, op) in ops.into_iter().enumerate() {
                if step == cut {
                    store.snapshot(&oak).expect("snapshot");
                }
                apply_op(&oak, step, op);
            }
            let recovered = recover(&dir, OakConfig::default()).expect("recover");
            prop_assert!(recovered.snapshot_loaded);
            prop_assert_eq!(fingerprint(&recovered.oak), fingerprint(&oak));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
