//! WAL segment files: a fixed header followed by CRC-framed records.
//!
//! Layout:
//!
//! ```text
//! [magic "OAKSEG01": 8 bytes][shard: u32 LE]          ← segment header
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]    ← frame, repeated
//! ```
//!
//! The shard field names the engine shard whose events the segment holds;
//! [`META_SHARD`] marks the global segment (rule-table events). Frames are
//! self-delimiting and check-summed, so a reader can walk a segment and
//! stop at the first frame whose length or CRC does not hold — everything
//! before that point is valid history, everything after is a torn tail.

use std::io;
use std::path::{Path, PathBuf};

use crate::backend::{RealFs, StorageBackend, StorageFile};
use crate::crc32::crc32;

/// Magic prefix of every WAL segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"OAKSEG01";
/// Shard field value naming the global (rule-table) segment.
pub const META_SHARD: u32 = u32::MAX;
/// Upper bound on one frame's payload; a larger length is corruption.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;
/// Fixed per-frame overhead: `[len: u32][crc: u32]`.
pub const FRAME_OVERHEAD: usize = 8;
/// Fixed segment header size: magic plus the shard field.
pub const SEGMENT_HEADER: usize = SEGMENT_MAGIC.len() + 4;

/// Frames `payload` as `[len: u32 LE][crc32: u32 LE][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// One step of decoding a frame off an in-progress byte stream.
///
/// WAL readers treat a clean end of segment and a torn tail the same
/// (stop at the first non-frame, see [`decode_frame`]); a *stream*
/// reader must not — bytes that are merely still in flight mean "wait
/// for more", while bytes that can never become a valid frame mean the
/// link is poisoned and must be dropped.
#[derive(Debug)]
pub enum FrameStep<'a> {
    /// The bytes at `offset` are a valid prefix of a frame that has not
    /// fully arrived: read more.
    Incomplete,
    /// A whole, checksum-valid frame: its payload and the offset one
    /// past it.
    Frame(&'a [u8], usize),
    /// The bytes at `offset` can never complete into a valid frame (a
    /// length over [`MAX_FRAME`], or a full-length payload failing its
    /// CRC).
    Corrupt,
}

/// Classifies the bytes at `offset` as an incomplete, whole, or corrupt
/// frame. See [`FrameStep`].
pub fn decode_frame_step(buf: &[u8], offset: usize) -> FrameStep<'_> {
    let Some(header) = buf.get(offset..offset + FRAME_OVERHEAD) else {
        return FrameStep::Incomplete;
    };
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return FrameStep::Corrupt;
    }
    let expected = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    let start = offset + FRAME_OVERHEAD;
    let Some(payload) = buf.get(start..start + len as usize) else {
        return FrameStep::Incomplete;
    };
    if crc32(payload) != expected {
        return FrameStep::Corrupt;
    }
    FrameStep::Frame(payload, start + len as usize)
}

/// Decodes the frame starting at `offset` in `buf`.
///
/// Returns the payload and the offset one past the frame, or `None` when
/// the bytes at `offset` are not a whole, checksum-valid frame — a clean
/// end of segment and a torn tail look the same to the decoder; callers
/// that care compare `offset` against `buf.len()`. Stream readers that
/// must tell the two apart use [`decode_frame_step`].
pub fn decode_frame(buf: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    match decode_frame_step(buf, offset) {
        FrameStep::Frame(payload, next) => Some((payload, next)),
        FrameStep::Incomplete | FrameStep::Corrupt => None,
    }
}

/// Everything salvageable from one segment file.
#[derive(Debug)]
pub struct SegmentContents {
    /// The engine shard the segment belongs to; `None` for the global
    /// segment.
    pub shard: Option<usize>,
    /// Valid frame payloads, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// `false` when reading stopped at a torn or corrupt frame (or the
    /// header itself was damaged) before the end of the file.
    pub clean: bool,
}

/// Reads a segment file from the real filesystem, salvaging the valid
/// frame prefix. See [`read_segment_with`] for the backend-generic form.
pub fn read_segment(path: &Path) -> io::Result<SegmentContents> {
    read_segment_with(&RealFs, path)
}

/// Reads a segment file through `backend`, salvaging the valid frame
/// prefix.
///
/// Corruption — a damaged header, a torn final frame, a bit-flip anywhere
/// — is not an error: the contents up to the first bad frame come back
/// with `clean == false`. Only real I/O failures surface as `Err`.
pub fn read_segment_with(backend: &dyn StorageBackend, path: &Path) -> io::Result<SegmentContents> {
    let buf = backend.read(path)?;
    let mut contents = SegmentContents {
        shard: None,
        payloads: Vec::new(),
        clean: false,
    };
    let Some(header) = buf.get(..SEGMENT_HEADER) else {
        return Ok(contents);
    };
    if &header[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Ok(contents);
    }
    let shard = u32::from_le_bytes(header[SEGMENT_MAGIC.len()..].try_into().expect("4 bytes"));
    contents.shard = if shard == META_SHARD {
        None
    } else {
        Some(shard as usize)
    };
    let mut offset = SEGMENT_HEADER;
    while let Some((payload, next)) = decode_frame(&buf, offset) {
        contents.payloads.push(payload.to_vec());
        offset = next;
    }
    contents.clean = offset == buf.len();
    Ok(contents)
}

/// An open, append-only segment file.
#[derive(Debug)]
pub struct SegmentWriter {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    bytes: u64,
    max_seq: u64,
    appended_since_sync: u64,
}

impl SegmentWriter {
    /// Creates the file at `path` on the real filesystem and writes the
    /// segment header. See [`SegmentWriter::create_with`].
    pub fn create(path: PathBuf, shard: Option<usize>) -> io::Result<Self> {
        SegmentWriter::create_with(&RealFs, path, shard)
    }

    /// Creates the file at `path` through `backend` and writes the
    /// segment header. The new directory entry is durable only once the
    /// caller syncs the parent directory.
    pub fn create_with(
        backend: &dyn StorageBackend,
        path: PathBuf,
        shard: Option<usize>,
    ) -> io::Result<Self> {
        let mut file = backend.create(&path)?;
        let shard_field = match shard {
            Some(index) => index as u32,
            None => META_SHARD,
        };
        file.write_all(SEGMENT_MAGIC)?;
        file.write_all(&shard_field.to_le_bytes())?;
        Ok(SegmentWriter {
            file,
            path,
            bytes: SEGMENT_HEADER as u64,
            max_seq: 0,
            appended_since_sync: 0,
        })
    }

    /// Appends one framed record carrying the event with sequence `seq`.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.max_seq = self.max_seq.max(seq);
        self.appended_since_sync += 1;
        Ok(())
    }

    /// Flushes appended frames to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.appended_since_sync > 0 {
            self.file.sync_data()?;
            self.appended_since_sync = 0;
        }
        Ok(())
    }

    /// Records appended since the last [`SegmentWriter::sync`].
    pub fn appended_since_sync(&self) -> u64 {
        self.appended_since_sync
    }

    /// Current file size in bytes, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Highest event sequence number appended to this segment.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}
