//! Durability for the Oak engine: a write-ahead log, compacted
//! snapshots, and crash recovery.
//!
//! Oak's value compounds over time — per-user activations and per-server
//! aggregates are learned from weeks of client reports (paper §3) — yet
//! the engine itself is memory-only. This crate makes that state durable
//! without touching the engine's hot paths:
//!
//! 1. Every `&self` mutation on [`oak_core::engine::Oak`] emits a
//!    serializable [`oak_core::events::EngineEvent`] carrying the
//!    *decision* it made (which rules activated, what the aggregates
//!    folded), never the raw inputs — so replay needs no script fetcher
//!    and no clock, and is bit-for-bit deterministic.
//! 2. [`OakStore`] is an [`oak_core::events::EventSink`] that journals
//!    those events into CRC-framed, per-shard WAL segments
//!    ([`segment`]), fsyncing on a configurable policy.
//! 3. [`OakStore::snapshot`] compacts history into one JSON document
//!    (encoded with the in-tree `oak-json`), after which superseded
//!    segments are deleted.
//! 4. [`recover`] (or [`OakStore::boot`]) loads the newest valid
//!    snapshot and replays the WAL tail in global sequence order,
//!    truncating at the first torn or corrupt frame instead of failing.
//!
//! # Examples
//!
//! ```
//! use oak_core::prelude::*;
//! use oak_store::{FsyncPolicy, OakStore, StoreOptions};
//!
//! let dir = std::env::temp_dir().join(format!("oak-doc-{}", std::process::id()));
//! let options = StoreOptions { fsync: FsyncPolicy::Always, ..StoreOptions::default() };
//!
//! // First life: learn something, then "crash" (drop everything).
//! {
//!     let boot = OakStore::boot(&dir, OakConfig::default(), options).unwrap();
//!     let rule = Rule::remove(r#"<script src="http://slow.example/t.js">"#);
//!     let id = boot.oak.add_rule(rule).unwrap();
//!     boot.oak.force_activate(Instant::ZERO, "u-1", id);
//! }
//!
//! // Second life: the rule and the activation survived.
//! let boot = OakStore::boot(&dir, OakConfig::default(), options).unwrap();
//! assert_eq!(boot.events_replayed, 2); // RuleAdded + ForceActivate
//! assert_eq!(boot.oak.rules().count(), 1);
//! assert_eq!(boot.oak.active_rules("u-1").len(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod backend;
pub mod crc32;
pub mod obs;
pub mod segment;
pub mod store;
pub mod stream;

pub use backend::{RealFs, StorageBackend, StorageFile};
pub use obs::StoreMetrics;
pub use store::{
    recover, recover_with, Boot, FsyncPolicy, OakStore, Recovery, StoreOptions, RECENT_TAIL_CAP,
};
pub use stream::{tail_wal, wal_watermark, Tail};
