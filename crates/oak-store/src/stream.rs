//! WAL tailing: reading the journaled event stream back out of a store
//! directory, in global sequence order, starting at an arbitrary
//! sequence number.
//!
//! This is the read half of WAL shipping. A replication primary answers
//! "send me everything from sequence `F`" by calling
//! [`OakStore::tail`](crate::OakStore::tail) (or [`tail_wal`] on a bare
//! directory) and forwarding the returned events. Two outcomes are
//! possible:
//!
//! - [`Tail::Events`] — the log still covers `from_seq`, and the result
//!   is the *contiguous* run of events `from_seq, from_seq + 1, …` as
//!   far as the log currently reaches. Contiguity is the load-bearing
//!   guarantee: per-shard segments are merged by sequence number, and a
//!   frame that is mid-write (or torn) truncates the run rather than
//!   leaving a hole, so a follower can apply the batch blindly.
//! - [`Tail::Compacted`] — `from_seq` predates the newest snapshot
//!   watermark and the covering segments may already be deleted. The
//!   caller must fall back to snapshot transfer (ship the engine's
//!   current snapshot, then resume tailing from its watermark).
//!
//! Tailing is read-only and crash-consistent: it decodes the same frame
//! prefix recovery would, so anything it ships is state a post-crash
//! replay would also reconstruct.

use std::io;
use std::path::Path;

use oak_core::events::SequencedEvent;

use crate::backend::StorageBackend;
use crate::segment::read_segment_with;
use crate::store::{parse_segment_name, parse_snapshot_name};

/// What tailing the WAL from a sequence number produced.
#[derive(Debug)]
pub enum Tail {
    /// The log covers `from_seq`: the contiguous events from `from_seq`
    /// up to wherever the log currently ends (possibly empty when the
    /// follower is already caught up). Sorted ascending, no gaps.
    Events(Vec<SequencedEvent>),
    /// `from_seq` predates the newest snapshot watermark; events that
    /// old may have been compacted away. Ship a snapshot instead, then
    /// resume tailing from `watermark`.
    Compacted {
        /// The newest on-disk snapshot watermark: every event below it
        /// is reflected in that snapshot.
        watermark: u64,
    },
}

/// Decodes one WAL frame payload back into its event. `None` marks
/// corruption the CRC missed — callers treat it like a torn tail.
fn decode_event(payload: &[u8]) -> Option<SequencedEvent> {
    let text = std::str::from_utf8(payload).ok()?;
    let doc = oak_json::parse(text).ok()?;
    SequencedEvent::from_value(&doc).ok()
}

/// Tails the WAL in `dir` through `backend`, returning every event with
/// `seq >= from_seq` that the log contiguously covers. See the module
/// docs for the `Events` / `Compacted` split.
pub fn tail_wal(backend: &dyn StorageBackend, dir: &Path, from_seq: u64) -> io::Result<Tail> {
    if !backend.dir_exists(dir) {
        return Ok(Tail::Events(Vec::new()));
    }
    let mut watermark = 0u64;
    let mut events: Vec<SequencedEvent> = Vec::new();
    let mut names = backend.list_dir(dir)?;
    names.sort();
    for name in names {
        if let Some(w) = parse_snapshot_name(&name) {
            watermark = watermark.max(w);
            continue;
        }
        if parse_segment_name(&name).is_none() {
            continue;
        }
        let contents = read_segment_with(backend, &dir.join(&name))?;
        for payload in &contents.payloads {
            // Like recovery: a frame that passes its CRC but fails to
            // decode truncates this segment's contribution.
            let Some(event) = decode_event(payload) else {
                break;
            };
            if event.seq >= from_seq {
                events.push(event);
            }
        }
    }
    events.sort_by_key(|e| e.seq);
    events.dedup_by_key(|e| e.seq);

    if events.first().is_none_or(|e| e.seq != from_seq) {
        // The run does not start at `from_seq`. If the snapshot
        // watermark has moved past it, the missing prefix was (or may
        // have been) compacted — snapshot transfer territory. Otherwise
        // nothing at `from_seq` has reached the log yet (caught-up
        // follower, or a frame still mid-write): ship nothing.
        return Ok(if from_seq < watermark {
            Tail::Compacted { watermark }
        } else {
            Tail::Events(Vec::new())
        });
    }
    // Truncate at the first gap: a hole means a lower-seq frame is still
    // being written (or was torn) in another shard's segment, and
    // shipping past it would let a follower apply out of order.
    let mut end = 0;
    for (i, event) in events.iter().enumerate() {
        if event.seq != from_seq + i as u64 {
            break;
        }
        end = i + 1;
    }
    events.truncate(end);
    Ok(Tail::Events(events))
}

/// The newest snapshot watermark visible in `dir` (0 when none): every
/// event with `seq` below it is reflected in that snapshot.
pub fn wal_watermark(backend: &dyn StorageBackend, dir: &Path) -> io::Result<u64> {
    if !backend.dir_exists(dir) {
        return Ok(0);
    }
    let mut watermark = 0;
    for name in backend.list_dir(dir)? {
        if let Some(w) = parse_snapshot_name(&name) {
            watermark = watermark.max(w);
        }
    }
    Ok(watermark)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use oak_core::prelude::*;

    use super::*;
    use crate::{FsyncPolicy, OakStore, StoreOptions};

    fn options() -> StoreOptions {
        StoreOptions {
            fsync: FsyncPolicy::Always,
            ..StoreOptions::default()
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("oak-stream-{tag}-{}", std::process::id()))
    }

    fn events_of(tail: Tail) -> Vec<SequencedEvent> {
        match tail {
            Tail::Events(events) => events,
            Tail::Compacted { watermark } => panic!("unexpected Compacted {{ {watermark} }}"),
        }
    }

    #[test]
    fn tails_from_zero_and_midstream() {
        let dir = temp_dir("mid");
        let _ = std::fs::remove_dir_all(&dir);
        let boot = OakStore::boot(&dir, OakConfig::default(), options()).unwrap();
        let id = boot
            .oak
            .add_rule(Rule::remove(r#"<script src="http://a.example/x.js">"#))
            .unwrap();
        for i in 0..5 {
            boot.oak
                .force_activate(Instant::ZERO, &format!("u-{i}"), id);
        }
        let head = boot.oak.event_seq();
        assert_eq!(head, 6);

        let all = events_of(boot.store.tail(0).unwrap());
        assert_eq!(all.len(), 6);
        assert_eq!(
            all.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );

        let suffix = events_of(boot.store.tail(4).unwrap());
        assert_eq!(suffix.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4, 5]);

        // At or past the head: caught up, nothing to ship.
        assert!(events_of(boot.store.tail(head).unwrap()).is_empty());
        assert!(events_of(boot.store.tail(head + 10).unwrap()).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tailed_events_carry_their_epoch() {
        let dir = temp_dir("epoch");
        let _ = std::fs::remove_dir_all(&dir);
        let boot = OakStore::boot(&dir, OakConfig::default(), options()).unwrap();
        boot.oak.set_epoch(7);
        boot.oak
            .add_rule(Rule::remove(r#"<script src="http://a.example/x.js">"#))
            .unwrap();
        let events = events_of(boot.store.tail(0).unwrap());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].epoch, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recent_ring_matches_the_log_scan() {
        let dir = temp_dir("ring");
        let _ = std::fs::remove_dir_all(&dir);
        let boot = OakStore::boot(&dir, OakConfig::default(), options()).unwrap();
        let id = boot
            .oak
            .add_rule(Rule::remove(r#"<script src="http://a.example/x.js">"#))
            .unwrap();
        let total = crate::RECENT_TAIL_CAP + 40;
        for i in 0..total - 1 {
            boot.oak
                .force_activate(Instant::ZERO, &format!("u-{i}"), id);
        }
        let head = boot.oak.event_seq();
        assert_eq!(head as usize, total);
        // A follower further back than the ring reaches falls through to
        // the disk scan and still gets the complete contiguous run.
        let deep = events_of(boot.store.tail(0).unwrap());
        assert_eq!(deep.len(), total);
        // A nearly-caught-up follower is served from memory; the two
        // paths must agree event for event.
        let from = head - 16;
        let ring = events_of(boot.store.tail(from).unwrap());
        let scan = events_of(tail_wal(&crate::RealFs, &dir, from).unwrap());
        assert_eq!(ring.len(), 16);
        assert_eq!(ring.len(), scan.len());
        for (a, b) in ring.iter().zip(&scan) {
            assert_eq!(a.to_value().to_string(), b.to_value().to_string());
        }
        // Fully caught up: both paths ship nothing.
        assert!(events_of(boot.store.tail(head).unwrap()).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_forces_snapshot_fallback() {
        let dir = temp_dir("compact");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            fsync: FsyncPolicy::Always,
            keep_snapshots: 1,
            ..StoreOptions::default()
        };
        let boot = OakStore::boot(&dir, OakConfig::default(), opts).unwrap();
        let id = boot
            .oak
            .add_rule(Rule::remove(r#"<script src="http://a.example/x.js">"#))
            .unwrap();
        boot.oak.force_activate(Instant::ZERO, "u-1", id);
        // Snapshot at the head; with keep_snapshots=1 the segments
        // holding seqs 0..2 compact away immediately.
        boot.store.snapshot(&boot.oak).unwrap();
        let head = boot.oak.event_seq();
        // The live store still covers the compacted prefix from its
        // recent ring: shipping beats forcing a snapshot transfer.
        assert_eq!(events_of(boot.store.tail(0).unwrap()).len(), head as usize);
        // A rebooted store starts with an empty ring, so a follower
        // behind the on-disk compaction horizon is snapshot-transfer
        // territory.
        drop(boot);
        let reboot = OakStore::boot(&dir, OakConfig::default(), opts).unwrap();
        match reboot.store.tail(0).unwrap() {
            Tail::Compacted { watermark } => assert_eq!(watermark, head),
            Tail::Events(events) => panic!("expected Compacted, got {} events", events.len()),
        }
        // From the watermark onward the (empty) tail is servable again.
        assert!(events_of(reboot.store.tail(head).unwrap()).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncates_at_sequence_gaps() {
        use crate::backend::RealFs;
        use crate::segment::SegmentWriter;

        let dir = temp_dir("gap");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write a segment with seqs 0, 1, 3 — seq 2 is "mid-write
        // elsewhere". The tail must stop at the gap.
        let mut writer = SegmentWriter::create(dir.join("seg-16-00000000.wal"), None).unwrap();
        for seq in [0u64, 1, 3] {
            let ev = SequencedEvent {
                seq,
                epoch: 0,
                event: oak_core::events::EngineEvent::RuleRemoved {
                    id: oak_core::rule::RuleId(seq as u32),
                },
            };
            writer
                .append(seq, ev.to_value().to_string().as_bytes())
                .unwrap();
        }
        writer.sync().unwrap();
        let tail = tail_wal(&RealFs, &dir, 0).unwrap();
        let events = events_of(tail);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        // Asking from past the gap works once the gap is behind us.
        let events = events_of(tail_wal(&RealFs, &dir, 3).unwrap());
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_an_empty_tail() {
        let dir = temp_dir("missing-nonexistent");
        let _ = std::fs::remove_dir_all(&dir);
        let backend: Arc<dyn StorageBackend> = Arc::new(crate::backend::RealFs);
        assert!(events_of(tail_wal(&*backend, &dir, 0).unwrap()).is_empty());
        assert_eq!(wal_watermark(&*backend, &dir).unwrap(), 0);
    }
}
