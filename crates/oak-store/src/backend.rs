//! The injectable storage backend: everything the store asks of a
//! filesystem, as a trait.
//!
//! `oak-store`'s durability argument rests on a handful of POSIX
//! contracts — appends become durable at `fdatasync`, renames are atomic,
//! a rename (or a freshly created name) survives a crash only once the
//! *directory* is synced. Testing those contracts against a real disk is
//! slow and non-deterministic, so the store talks to storage exclusively
//! through [`StorageBackend`]:
//!
//! - [`RealFs`] forwards to `std::fs` — the production backend, and the
//!   default behind [`crate::OakStore::open`] / [`crate::OakStore::boot`]
//!   / [`crate::recover`];
//! - `oak-sim`'s `SimFs` implements the same trait in memory with
//!   *pessimal* crash semantics (torn unsynced tails, independently
//!   lost un-synced directory entries, seeded crash points at every
//!   write/rename/sync boundary), which is what lets the simulation
//!   harness prove recovery correct under every fault schedule a seed
//!   can produce.
//!
//! The trait is deliberately narrow: the store only ever creates files
//! (never re-opens for append across restarts), reads them whole, renames
//! within one directory, deletes, and syncs — so that is all a backend
//! must model.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// An open, append-only file handle issued by a [`StorageBackend`].
pub trait StorageFile: Send + fmt::Debug {
    /// Appends `buf` at the end of the file.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Pushes every appended byte to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The filesystem surface `oak-store` requires.
///
/// All paths are absolute or process-relative, exactly as the store was
/// configured; a backend must not canonicalize or otherwise alias them.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Whether `dir` exists.
    fn dir_exists(&self, dir: &Path) -> bool;

    /// The file names (not paths) directly inside `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating if present) a writable file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Atomically renames `from` to `to` (same directory). The rename is
    /// durable only after [`StorageBackend::sync_dir`] on the parent.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Deletes a file. Like a rename, durable only after the parent
    /// directory is synced.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Makes `dir`'s entries (creations, renames, removals) durable —
    /// `fsync` on the directory fd. Without this, a crash can orphan a
    /// rename: the file's *data* is on disk but no directory entry
    /// survives to name it.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production backend: `std::fs` on the real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

/// A real file wrapped as a [`StorageFile`].
#[derive(Debug)]
struct RealFile(fs::File);

impl StorageFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl StorageBackend for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn dir_exists(&self, dir: &Path) -> bool {
        dir.exists()
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Some platforms cannot open a directory for syncing; treat that
        // as "the platform gives no stronger guarantee" rather than an
        // error, matching what fsync-on-dir means elsewhere.
        match fs::File::open(dir) {
            Ok(handle) => handle.sync_all(),
            Err(_) => Ok(()),
        }
    }
}
