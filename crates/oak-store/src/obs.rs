//! Durability instrumentation: WAL and snapshot metrics.
//!
//! [`StoreMetrics`] registers the store's families once and holds
//! pre-resolved handles; [`crate::OakStore::set_obs`] attaches a bundle
//! to one store instance (each boot opens a fresh store, so the bundle
//! is set once per instance and never contended).

use std::fmt;
use std::sync::Arc;

use oak_obs::{elapsed_us, Clock, Counter, Histogram, Registry, DURATION_BOUNDS_US};

/// Pre-resolved handles for the store's metric families.
pub struct StoreMetrics {
    clock: Clock,
    /// `oak_wal_append_count` — events handed to the WAL (attempted
    /// appends; failures are also counted in `wal_append_errors`).
    pub wal_appends: Arc<Counter>,
    /// `oak_wal_append_errors_total` — appends that failed with I/O
    /// errors (the sink swallows them; this is the operator's signal).
    pub wal_append_errors: Arc<Counter>,
    /// `oak_wal_append_duration_us` — one event append, including any
    /// policy-driven fsync.
    pub append: Arc<Histogram>,
    /// `oak_wal_fsync_duration_us` — policy-driven fsyncs inside appends.
    pub fsync: Arc<Histogram>,
    /// `oak_store_snapshot_duration_us` — one full snapshot + compaction.
    pub snapshot: Arc<Histogram>,
    /// `oak_store_snapshots_total` — snapshots successfully written.
    pub snapshots: Arc<Counter>,
}

impl StoreMetrics {
    /// Registers the store families in `registry`; durations are
    /// measured with `clock`.
    pub fn new(registry: &Registry, clock: Clock) -> Arc<StoreMetrics> {
        Arc::new(StoreMetrics {
            clock,
            wal_appends: registry.counter(
                "oak_wal_append_count",
                "Engine events handed to the write-ahead log.",
                &[],
            ),
            wal_append_errors: registry.counter(
                "oak_wal_append_errors_total",
                "WAL appends that failed with an I/O error.",
                &[],
            ),
            append: registry.histogram(
                "oak_wal_append_duration_us",
                "Time to append one event to the WAL (including policy fsyncs).",
                &[],
                DURATION_BOUNDS_US,
            ),
            fsync: registry.histogram(
                "oak_wal_fsync_duration_us",
                "Time per policy-driven WAL fsync.",
                &[],
                DURATION_BOUNDS_US,
            ),
            snapshot: registry.histogram(
                "oak_store_snapshot_duration_us",
                "Time to write one compacted snapshot and retire old files.",
                &[],
                DURATION_BOUNDS_US,
            ),
            snapshots: registry.counter(
                "oak_store_snapshots_total",
                "Compacted snapshots written.",
                &[],
            ),
        })
    }

    /// The current clock reading, nanoseconds.
    pub fn now(&self) -> u64 {
        (self.clock)()
    }

    /// Records `start_ns..end_ns` into `histogram` in microseconds.
    pub fn record(histogram: &Histogram, start_ns: u64, end_ns: u64) {
        histogram.record(elapsed_us(start_ns, end_ns));
    }
}

impl fmt::Debug for StoreMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreMetrics").finish_non_exhaustive()
    }
}
