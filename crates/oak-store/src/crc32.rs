//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Every WAL frame carries a CRC over its payload so recovery can tell a
//! torn or bit-flipped tail from valid history. The table is built at
//! compile time; no external crate is involved.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Canonical check values for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"oak-store");
        let b = crc32(b"oak-stors");
        assert_ne!(a, b);
    }
}
