//! The store proper: per-shard WAL writers, snapshots, compaction, and
//! crash recovery.
//!
//! One [`OakStore`] owns a directory. Inside it live:
//!
//! - `seg-SS-NNNNNNNN.wal` — WAL segments, one live segment per engine
//!   shard plus one global segment (`SS` = shard slot, `16` for global;
//!   `NNNNNNNN` = allocation counter). Events land in the segment of the
//!   shard they mutate, so shard-parallel ingest never contends on one
//!   file; recovery merges segments by global sequence number.
//! - `snap-WWWWWWWWWWWWWWWWWWWW.snap` — compacted snapshots, named by
//!   their event-sequence watermark `W`: every event with `seq < W` is
//!   reflected in the snapshot, every event with `seq >= W` is replayed
//!   from the WAL on recovery.
//!
//! Segments are never appended across process restarts: a fresh store
//! opens fresh segments, and the boot snapshot supersedes (and deletes)
//! everything older. That keeps the write path free of any
//! truncate-then-append handling — torn tails exist only for readers.

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use oak_core::engine::{Oak, OakConfig, SHARD_COUNT};
use oak_core::events::{EventSink, SequencedEvent};
use oak_json::Value;

use crate::backend::{RealFs, StorageBackend};
use crate::segment::{decode_frame, encode_frame, read_segment_with, SegmentWriter};

/// Magic prefix of a snapshot file (the framed JSON document follows).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"OAKSNAP1";

/// Events kept in the in-memory recent ring that serves [`OakStore::tail`]
/// without touching disk. WAL shipping polls `tail` once per follower
/// per protocol tick; without the ring each poll decodes every live
/// segment, which is quadratic while a follower catches up. A follower
/// further behind than the ring reaches falls back to the full log scan
/// (or snapshot transfer, past the compaction horizon).
pub const RECENT_TAIL_CAP: usize = 1024;

/// When appended WAL frames are pushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every event. Survives power loss; slowest.
    Always,
    /// `fdatasync` once every N events per segment. Bounds loss to the
    /// last N events of each shard.
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    /// Survives process crashes (the page cache persists), not power
    /// loss.
    Never,
}

/// Durability and compaction policy for an [`OakStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// WAL fsync cadence.
    pub fsync: FsyncPolicy,
    /// [`OakStore::maybe_snapshot`] triggers after this many events.
    pub snapshot_every_events: u64,
    /// A segment is rotated out once it grows past this many bytes.
    pub rotate_segment_bytes: u64,
    /// How many snapshots to keep; older ones are deleted at compaction.
    pub keep_snapshots: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::EveryN(64),
            snapshot_every_events: 10_000,
            rotate_segment_bytes: 16 * 1024 * 1024,
            keep_snapshots: 2,
        }
    }
}

/// A rotated-out segment we still know the max sequence number of.
#[derive(Debug)]
struct ClosedSegment {
    path: PathBuf,
    max_seq: u64,
}

/// The write half: an [`EventSink`] that journals engine events into
/// per-shard WAL segments and periodically compacts them into snapshots.
#[derive(Debug)]
pub struct OakStore {
    backend: Arc<dyn StorageBackend>,
    dir: PathBuf,
    options: StoreOptions,
    /// One slot per engine shard plus the global slot at `SHARD_COUNT`.
    /// Writers open lazily on first use so idle shards cost nothing.
    slots: Vec<Mutex<Option<SegmentWriter>>>,
    closed: Mutex<Vec<ClosedSegment>>,
    segment_ids: AtomicU64,
    events_recorded: AtomicU64,
    events_since_snapshot: AtomicU64,
    write_errors: AtomicU64,
    snapshot_lock: Mutex<()>,
    /// WAL/snapshot instrumentation, set at most once per store instance
    /// ([`OakStore::set_obs`]); empty costs one atomic read per append.
    obs: std::sync::OnceLock<Arc<crate::obs::StoreMetrics>>,
    /// Journaled events in seq order, at most [`RECENT_TAIL_CAP`] of
    /// them, so `tail` can ship the common case from memory. Starts
    /// empty on every boot — the first poll after recovery scans disk.
    recent: Mutex<VecDeque<SequencedEvent>>,
}

impl OakStore {
    /// Opens (creating if needed) a store over `dir` on the real
    /// filesystem. See [`OakStore::open_with`].
    pub fn open(dir: impl Into<PathBuf>, options: StoreOptions) -> io::Result<OakStore> {
        OakStore::open_with(Arc::new(RealFs), dir, options)
    }

    /// Opens (creating if needed) a store over `dir` on `backend`.
    ///
    /// The store writes fresh segments; it never appends to files left by
    /// an earlier process. Pair with [`recover_with`] — or use
    /// [`OakStore::boot_with`], which sequences the two correctly. A
    /// directory must be owned by at most one live store.
    pub fn open_with(
        backend: Arc<dyn StorageBackend>,
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> io::Result<OakStore> {
        let dir = dir.into();
        backend.create_dir_all(&dir)?;
        // Start segment ids past everything on disk so fresh files never
        // collide with (not-yet-compacted) files from an earlier run.
        let mut next_id = 0;
        for name in backend.list_dir(&dir)? {
            if let Some(id) = parse_segment_name(&name).map(|(_, id)| id) {
                next_id = next_id.max(id + 1);
            }
        }
        Ok(OakStore {
            backend,
            dir,
            options,
            slots: (0..=SHARD_COUNT).map(|_| Mutex::new(None)).collect(),
            closed: Mutex::new(Vec::new()),
            segment_ids: AtomicU64::new(next_id),
            events_recorded: AtomicU64::new(0),
            events_since_snapshot: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            snapshot_lock: Mutex::new(()),
            obs: std::sync::OnceLock::new(),
            recent: Mutex::new(VecDeque::new()),
        })
    }

    /// Attaches WAL/snapshot instrumentation to this store instance.
    /// Callable through the shared `Arc` (boot hands the store out
    /// already shared); a second call is ignored.
    pub fn set_obs(&self, obs: Arc<crate::obs::StoreMetrics>) {
        let _ = self.obs.set(obs);
    }

    /// Recovers engine state from `dir` on the real filesystem and opens
    /// the store for writing. See [`OakStore::boot_with`].
    pub fn boot(
        dir: impl Into<PathBuf>,
        config: OakConfig,
        options: StoreOptions,
    ) -> io::Result<Boot> {
        OakStore::boot_with(Arc::new(RealFs), dir, config, options)
    }

    /// Recovers engine state from `dir` on `backend` and opens the store
    /// for writing: loads the newest valid snapshot, replays the WAL
    /// tail, writes a fresh boot snapshot (compacting every prior segment
    /// away), and attaches the store to the engine as its event sink.
    pub fn boot_with(
        backend: Arc<dyn StorageBackend>,
        dir: impl Into<PathBuf>,
        config: OakConfig,
        options: StoreOptions,
    ) -> io::Result<Boot> {
        let dir = dir.into();
        let recovery = recover_with(backend.clone(), &dir, config)?;
        let store = Arc::new(OakStore::open_with(backend, &dir, options)?);
        store.snapshot(&recovery.oak)?;
        let mut oak = recovery.oak;
        oak.set_event_sink(store.clone());
        Ok(Boot {
            oak,
            store,
            snapshot_loaded: recovery.snapshot_loaded,
            events_replayed: recovery.events_replayed,
            torn_segments: recovery.torn_segments,
            watermark: recovery.watermark,
            replayed_seqs: recovery.replayed_seqs,
        })
    }

    /// The directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total events journaled by this store instance.
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded.load(Ordering::Relaxed)
    }

    /// Events journaled since the last snapshot.
    pub fn events_since_snapshot(&self) -> u64 {
        self.events_since_snapshot.load(Ordering::Relaxed)
    }

    /// WAL append failures. The sink swallows I/O errors (the engine's
    /// hot path cannot surface them); operators watch this counter.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Tails this store's WAL: every event with `seq >= from_seq` the
    /// log contiguously covers, or [`crate::stream::Tail::Compacted`]
    /// when that range was compacted into a snapshot. The read half of
    /// WAL shipping — see [`crate::stream`].
    pub fn tail(&self, from_seq: u64) -> io::Result<crate::stream::Tail> {
        if let Some(events) = self.recent_tail(from_seq) {
            return Ok(crate::stream::Tail::Events(events));
        }
        crate::stream::tail_wal(&*self.backend, &self.dir, from_seq)
    }

    /// Serves [`OakStore::tail`] from the recent ring when it reaches
    /// back to `from_seq`; `None` falls through to the full log scan.
    /// Ring events below the compaction horizon are still served — they
    /// are correct copies, and shipping them spares the follower a
    /// snapshot transfer.
    fn recent_tail(&self, from_seq: u64) -> Option<Vec<SequencedEvent>> {
        let recent = self.recent.lock().expect("recent ring lock");
        let first = recent.front()?.seq;
        if from_seq < first {
            return None;
        }
        let mut events = Vec::new();
        let mut expect = from_seq;
        for event in recent.iter() {
            if event.seq < expect {
                continue;
            }
            if event.seq != expect {
                // A lower seq is still mid-append in another shard;
                // shipping past the hole would let a follower apply out
                // of order.
                break;
            }
            events.push(event.clone());
            expect += 1;
        }
        Some(events)
    }

    /// Flushes every open segment to stable storage regardless of the
    /// fsync policy.
    pub fn sync_all(&self) -> io::Result<()> {
        for slot in &self.slots {
            if let Some(writer) = self.lock_slot(slot).as_mut() {
                writer.sync()?;
            }
        }
        Ok(())
    }

    /// Takes a snapshot if `snapshot_every_events` have accumulated.
    ///
    /// Cheap when under threshold or when another thread is already
    /// snapshotting; call freely from the serving path. Returns whether a
    /// snapshot was written.
    pub fn maybe_snapshot(&self, oak: &Oak) -> io::Result<bool> {
        if self.events_since_snapshot.load(Ordering::Relaxed) < self.options.snapshot_every_events {
            return Ok(false);
        }
        if self.snapshot_lock.try_lock().is_err() {
            return Ok(false);
        }
        self.snapshot(oak)?;
        Ok(true)
    }

    /// Writes a compacted snapshot of `oak` and retires superseded files.
    ///
    /// The engine quiesces (all shard locks) only while the state is
    /// encoded; the write, fsync, and atomic rename happen outside the
    /// locks. Afterwards every live segment is rotated, snapshots beyond
    /// `keep_snapshots` are pruned, and every segment whose events all
    /// predate the *oldest kept* snapshot's watermark is deleted — so if
    /// the newest snapshot ever fails its checksum, the previous one
    /// plus the retained segments still recover the full state (with
    /// `keep_snapshots: 1` that safety margin is waived and segments
    /// compact up to the newest watermark).
    pub fn snapshot(&self, oak: &Oak) -> io::Result<PathBuf> {
        let _span = oak_obs::span("snapshot");
        let snapshot_start = self.obs.get().map(|o| o.now());
        let _guard = self.snapshot_lock.lock().expect("snapshot lock");
        let doc = oak.snapshot_json();
        let watermark = doc
            .get("event_seq")
            .and_then(Value::as_u64)
            .expect("snapshot carries event_seq");

        let payload = doc.to_string();
        let tmp = self.dir.join(format!("snap-{watermark:020}.tmp"));
        let path = self.dir.join(snapshot_name(watermark));
        {
            let mut file = self.backend.create(&tmp)?;
            file.write_all(SNAPSHOT_MAGIC)?;
            file.write_all(&encode_frame(payload.as_bytes()))?;
            file.sync_data()?;
        }
        self.backend.rename(&tmp, &path)?;
        // The rename must be *directory-durable* before anything it
        // supersedes is deleted: without this fsync a crash can persist
        // the deletions but not the rename, orphaning the snapshot and
        // losing acknowledged events. (The oak-sim SimFs regression suite
        // exercises exactly that schedule.)
        self.backend.sync_dir(&self.dir)?;
        self.events_since_snapshot.store(0, Ordering::Relaxed);

        // Rotate every live segment out; new ones open lazily.
        for slot in &self.slots {
            let mut slot = self.lock_slot(slot);
            if let Some(mut writer) = slot.take() {
                writer.sync()?;
                self.closed
                    .lock()
                    .expect("closed list")
                    .push(ClosedSegment {
                        path: writer.path().to_path_buf(),
                        max_seq: writer.max_seq(),
                    });
            }
        }

        // Prune snapshots beyond the retention count (names sort by
        // watermark), then compact segments up to the oldest survivor.
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        for name in self.backend.list_dir(&self.dir)? {
            if let Some(w) = parse_snapshot_name(&name) {
                snaps.push((w, self.dir.join(name)));
            }
        }
        snaps.sort();
        let keep_from = snaps
            .len()
            .saturating_sub(self.options.keep_snapshots.max(1));
        for (_, old) in &snaps[..keep_from] {
            let _ = self.backend.remove_file(old);
        }
        let compact_below = snaps[keep_from..]
            .first()
            .map_or(watermark, |(w, _)| *w)
            .min(watermark);

        let mut closed = self.closed.lock().expect("closed list");
        let mut keep = Vec::new();
        for segment in closed.drain(..) {
            if segment.max_seq >= compact_below {
                keep.push(segment);
            } else {
                let _ = self.backend.remove_file(&segment.path);
            }
        }
        let known: Vec<PathBuf> = keep.iter().map(|s| s.path.clone()).collect();
        *closed = keep;
        drop(closed);
        // Segments this store didn't write (leftovers from the run the
        // engine recovered from) don't carry an in-memory max_seq; read
        // it off the frames before deciding.
        for name in self.backend.list_dir(&self.dir)? {
            let candidate = self.dir.join(&name);
            if parse_segment_name(&name).is_none() || known.iter().any(|p| p == &candidate) {
                continue;
            }
            if segment_max_seq(&*self.backend, &candidate) < compact_below {
                let _ = self.backend.remove_file(&candidate);
            }
        }
        if let (Some(obs), Some(start)) = (self.obs.get(), snapshot_start) {
            obs.snapshots.inc();
            crate::obs::StoreMetrics::record(&obs.snapshot, start, obs.now());
        }
        Ok(path)
    }

    fn lock_slot<'a>(
        &self,
        slot: &'a Mutex<Option<SegmentWriter>>,
    ) -> std::sync::MutexGuard<'a, Option<SegmentWriter>> {
        slot.lock().expect("segment slot lock")
    }

    fn append_to_slot(&self, index: usize, seq: u64, payload: &[u8]) -> io::Result<()> {
        let slot = &self.slots[index];
        let mut guard = self.lock_slot(slot);
        if guard.is_none() {
            let id = self.segment_ids.fetch_add(1, Ordering::Relaxed);
            let path = self.dir.join(segment_name(index, id));
            let shard = if index == SHARD_COUNT {
                None
            } else {
                Some(index)
            };
            *guard = Some(SegmentWriter::create_with(&*self.backend, path, shard)?);
            // The new segment's directory entry must be durable before
            // any frame in it is acknowledged: data-only fsyncs pin the
            // bytes to an inode a crash could otherwise leave nameless.
            self.backend.sync_dir(&self.dir)?;
        }
        let writer = guard.as_mut().expect("just opened");
        writer.append(seq, payload)?;
        let fsync_timed = |writer: &mut SegmentWriter| -> io::Result<()> {
            let start = self.obs.get().map(|o| o.now());
            writer.sync()?;
            if let (Some(obs), Some(start)) = (self.obs.get(), start) {
                crate::obs::StoreMetrics::record(&obs.fsync, start, obs.now());
            }
            Ok(())
        };
        match self.options.fsync {
            FsyncPolicy::Always => fsync_timed(writer)?,
            FsyncPolicy::EveryN(n) => {
                if writer.appended_since_sync() >= n.max(1) {
                    fsync_timed(writer)?;
                }
            }
            FsyncPolicy::Never => {}
        }
        if writer.bytes() >= self.options.rotate_segment_bytes {
            let mut writer = guard.take().expect("just used");
            writer.sync()?;
            self.closed
                .lock()
                .expect("closed list")
                .push(ClosedSegment {
                    path: writer.path().to_path_buf(),
                    max_seq: writer.max_seq(),
                });
        }
        Ok(())
    }
}

impl EventSink for OakStore {
    fn record(&self, shard: Option<usize>, event: &SequencedEvent) {
        let index = shard.unwrap_or(SHARD_COUNT).min(SHARD_COUNT);
        let payload = event.to_value().to_string();
        let _span = oak_obs::span("wal_append");
        let start = self.obs.get().map(|o| o.now());
        let result = self.append_to_slot(index, event.seq, payload.as_bytes());
        if let Some(obs) = self.obs.get() {
            obs.wal_appends.inc();
            if result.is_err() {
                obs.wal_append_errors.inc();
            }
            if let Some(start) = start {
                crate::obs::StoreMetrics::record(&obs.append, start, obs.now());
            }
        }
        if result.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        } else {
            // Only journaled events enter the ring: `tail` asserts
            // what is on (or queued for) disk, never more.
            let mut recent = self.recent.lock().expect("recent ring lock");
            // Concurrent shard appends can land slightly out of order.
            let at = recent.partition_point(|e| e.seq < event.seq);
            recent.insert(at, event.clone());
            while recent.len() > RECENT_TAIL_CAP {
                recent.pop_front();
            }
        }
        self.events_recorded.fetch_add(1, Ordering::Relaxed);
        self.events_since_snapshot.fetch_add(1, Ordering::Relaxed);
    }
}

/// What [`recover`] rebuilt.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered engine. Attach a sink (or use [`OakStore::boot`])
    /// before mutating it if changes should keep being journaled.
    pub oak: Oak,
    /// Whether a valid snapshot was found and loaded.
    pub snapshot_loaded: bool,
    /// WAL events applied on top of the snapshot.
    pub events_replayed: u64,
    /// Segments that ended in a torn or corrupt frame (their valid prefix
    /// was still replayed).
    pub torn_segments: usize,
    /// Watermark of the snapshot that was loaded (0 when none was): every
    /// event with `seq < watermark` is reflected in the recovered state.
    pub watermark: u64,
    /// Sequence numbers of the WAL events applied on top of the snapshot,
    /// ascending. Together with `watermark` this names exactly the event
    /// set the recovered engine reflects — which is what lets an external
    /// oracle (oak-sim) rebuild the expected state and compare.
    pub replayed_seqs: Vec<u64>,
}

/// What [`OakStore::boot`] produced: a recovered engine already wired to
/// a fresh store.
#[derive(Debug)]
pub struct Boot {
    /// The recovered engine, journaling into `store`.
    pub oak: Oak,
    /// The open store (also installed as the engine's event sink).
    pub store: Arc<OakStore>,
    /// Whether a valid snapshot was found and loaded.
    pub snapshot_loaded: bool,
    /// WAL events applied on top of the snapshot.
    pub events_replayed: u64,
    /// Segments that ended in a torn or corrupt frame.
    pub torn_segments: usize,
    /// Watermark of the snapshot recovery loaded (0 when none was).
    pub watermark: u64,
    /// Sequence numbers of the WAL events replayed on top of it.
    pub replayed_seqs: Vec<u64>,
}

/// Rebuilds an engine from the newest valid snapshot plus the WAL tail.
///
/// Snapshots are tried newest-first; one that fails its CRC or decode is
/// skipped (recovery falls back to the next, or to replaying the full
/// WAL from an empty engine). Segment events below the snapshot's
/// watermark are skipped; the rest are merged across all segments in
/// global sequence order and applied. A torn or corrupt segment tail
/// truncates that segment's contribution, never the recovery.
///
/// Replay is deterministic: events carry resolved decisions, so the
/// rebuilt engine's `rules()`, `active_rules()`, `aggregates()`, and
/// `log()` are byte-identical to the state that was journaled.
pub fn recover(dir: &Path, config: OakConfig) -> io::Result<Recovery> {
    recover_with(Arc::new(RealFs), dir, config)
}

/// [`recover`] over an arbitrary [`StorageBackend`].
pub fn recover_with(
    backend: Arc<dyn StorageBackend>,
    dir: &Path,
    config: OakConfig,
) -> io::Result<Recovery> {
    if !backend.dir_exists(dir) {
        return Ok(Recovery {
            oak: Oak::new(config),
            snapshot_loaded: false,
            events_replayed: 0,
            torn_segments: 0,
            watermark: 0,
            replayed_seqs: Vec::new(),
        });
    }

    let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
    let mut segments: Vec<PathBuf> = Vec::new();
    let mut names = backend.list_dir(dir)?;
    names.sort();
    for name in names {
        if let Some(watermark) = parse_snapshot_name(&name) {
            snapshots.push((watermark, dir.join(name)));
        } else if parse_segment_name(&name).is_some() {
            segments.push(dir.join(name));
        }
    }
    snapshots.sort();

    let mut oak = None;
    let mut watermark = 0;
    let mut snapshot_loaded = false;
    for (snap_watermark, path) in snapshots.iter().rev() {
        match load_snapshot(&*backend, path, config) {
            Ok(recovered) => {
                oak = Some(recovered);
                watermark = *snap_watermark;
                snapshot_loaded = true;
                break;
            }
            Err(_) => continue, // corrupt snapshot: fall back to an older one
        }
    }
    let oak = oak.unwrap_or_else(|| Oak::new(config));

    let mut events: Vec<SequencedEvent> = Vec::new();
    let mut torn_segments = 0;
    for path in &segments {
        let contents = read_segment_with(&*backend, path)?;
        let mut clean = contents.clean;
        for payload in &contents.payloads {
            // A frame that passes its CRC but fails to decode is
            // corruption the checksum missed; stop salvaging this
            // segment there, like any other torn tail.
            let Ok(text) = std::str::from_utf8(payload) else {
                clean = false;
                break;
            };
            let Ok(doc) = oak_json::parse(text) else {
                clean = false;
                break;
            };
            let Ok(event) = SequencedEvent::from_value(&doc) else {
                clean = false;
                break;
            };
            if event.seq >= watermark {
                events.push(event);
            }
        }
        if !clean {
            torn_segments += 1;
        }
    }
    // Raft-style log matching, enforced at recovery time: a replica
    // that installed a newer primary's snapshot may still hold WAL
    // frames journaled on a dead branch — events a deposed primary
    // emitted past the snapshot watermark that never committed. Merging
    // by sequence number alone would replay them over the installed
    // state. Among duplicate seqs the highest epoch wins, and any frame
    // whose epoch is below the highest epoch already on the branch
    // (seeded by the snapshot's own epoch) is a conflicting suffix and
    // is dropped. Single-node WALs are uniformly epoch 0, where this
    // reduces to the plain seq merge.
    events.sort_by(|a, b| a.seq.cmp(&b.seq).then(b.epoch.cmp(&a.epoch)));
    events.dedup_by_key(|e| e.seq);
    let mut branch_epoch = oak.epoch();
    events.retain(|e| {
        if e.epoch < branch_epoch {
            return false;
        }
        branch_epoch = e.epoch;
        true
    });
    let events_replayed = events.len() as u64;
    let replayed_seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    for event in &events {
        oak.apply_event(event);
    }
    Ok(Recovery {
        oak,
        snapshot_loaded,
        events_replayed,
        torn_segments,
        watermark,
        replayed_seqs,
    })
}

/// Loads and validates one snapshot file.
fn load_snapshot(backend: &dyn StorageBackend, path: &Path, config: OakConfig) -> io::Result<Oak> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_owned());
    let buf = backend.read(path)?;
    if buf.get(..SNAPSHOT_MAGIC.len()) != Some(&SNAPSHOT_MAGIC[..]) {
        return Err(bad("snapshot magic mismatch"));
    }
    let Some((payload, end)) = decode_frame(&buf, SNAPSHOT_MAGIC.len()) else {
        return Err(bad("snapshot frame torn or corrupt"));
    };
    if end != buf.len() {
        return Err(bad("trailing bytes after snapshot frame"));
    }
    let text = std::str::from_utf8(payload).map_err(|_| bad("snapshot is not UTF-8"))?;
    let doc = oak_json::parse(text).map_err(|e| bad(&e.to_string()))?;
    Oak::from_snapshot_json(config, &doc).map_err(|e| bad(&e))
}

/// The highest event sequence number readable from a segment file; 0
/// when nothing decodes (frames carry their seq in the JSON payload).
fn segment_max_seq(backend: &dyn StorageBackend, path: &Path) -> u64 {
    let Ok(contents) = read_segment_with(backend, path) else {
        return 0;
    };
    let mut max_seq = 0;
    for payload in &contents.payloads {
        let seq = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| oak_json::parse(text).ok())
            .and_then(|doc| doc.get("seq").and_then(Value::as_u64));
        if let Some(seq) = seq {
            max_seq = max_seq.max(seq);
        }
    }
    max_seq
}

fn segment_name(slot: usize, id: u64) -> String {
    format!("seg-{slot:02}-{id:08}.wal")
}

fn snapshot_name(watermark: u64) -> String {
    format!("snap-{watermark:020}.snap")
}

/// Parses `seg-SS-NNNNNNNN.wal` into `(slot, id)`.
pub(crate) fn parse_segment_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".wal")?;
    let (slot, id) = rest.split_once('-')?;
    Some((slot.parse().ok()?, id.parse().ok()?))
}

/// Parses `snap-W...W.snap` into the watermark.
pub(crate) fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}
