//! An offline, dependency-free benchmarking shim.
//!
//! This workspace must build without access to crates.io, so this crate
//! re-implements the subset of the `criterion` API the oak benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups, and the [`Bencher::iter`], [`Bencher::iter_batched`],
//! and [`Bencher::iter_custom`] timing loops.
//!
//! Measurement is deliberately simple: each benchmark is calibrated until
//! it has run for a short warm-up window, then timed over a fixed
//! measurement window, and the mean ns/iteration is printed. There are no
//! statistical comparisons against saved baselines.
//!
//! Because the bench targets build with `harness = false`, `cargo test`
//! executes them too; cargo passes `--test` in that mode, and (like the
//! real crate) each routine then runs exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// How long each benchmark warms up before measurement.
const WARMUP: Duration = Duration::from_millis(5);
/// The measurement window a benchmark's iteration count is scaled to.
const MEASURE: Duration = Duration::from_millis(50);

/// Batch sizing hint for [`Bencher::iter_batched`]. The shim times each
/// batch element individually, so the variants only affect intent
/// documentation, not measurement.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            // Set when cargo runs a harness=false bench under `cargo test`.
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group; benchmark ids print as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.test_mode, f);
        self
    }
}

/// A named collection of benchmarks (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup {
    name: String,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's fixed measurement
    /// window ignores the requested sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut BenchmarkGroup {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.test_mode, f);
        self
    }

    /// Ends the group (no summary output in the shim).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, test_mode: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        test_mode,
        iters: 0,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("bench {id}: ok (test mode, 1 iteration)");
    } else if bencher.iters > 0 {
        let nanos = bencher.total.as_nanos() as f64 / bencher.iters as f64;
        println!("{id:<48} {nanos:>14.1} ns/iter  ({} iters)", bencher.iters);
    }
}

/// The timing handle passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let iters = calibrate(|n| {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            start.elapsed()
        });
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.record(iters, start.elapsed());
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let iters = calibrate(|n| {
            let mut elapsed = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed();
            }
            elapsed
        });
        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.record(iters, elapsed);
    }

    /// Hands the iteration count to `routine`, which returns the time it
    /// measured itself — for benchmarks that must own their timing (e.g.
    /// multi-threaded sections where spawn overhead must be excluded).
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        if self.test_mode {
            routine(1);
            return;
        }
        let iters = calibrate(&mut routine);
        let elapsed = routine(iters);
        self.record(iters, elapsed);
    }

    fn record(&mut self, iters: u64, elapsed: Duration) {
        self.iters = iters;
        self.total = elapsed;
    }
}

/// Doubles the iteration count until `run` fills the warm-up window,
/// then scales that rate to the measurement window.
fn calibrate<R>(mut run: R) -> u64
where
    R: FnMut(u64) -> Duration,
{
    let mut iters: u64 = 1;
    let elapsed = loop {
        let elapsed = run(iters);
        if elapsed >= WARMUP || iters >= 1 << 40 {
            break elapsed.max(Duration::from_nanos(1));
        }
        iters *= 2;
    };
    let per_iter = elapsed.as_nanos().max(1) as u64 / iters.max(1);
    (MEASURE.as_nanos() as u64 / per_iter.max(1)).max(1)
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
