//! Tests for the experiment-harness library: the exhibits are only as
//! trustworthy as the machinery that computes them.

use crate::benchworld::{
    alternate_of, benchmark_rules, benchmark_world, sensitivity_rules, sensitivity_world,
};
use crate::matchrate::site_match_rates;
use crate::replicated::select_sites;
use crate::support::*;

use oak_webgen::{Corpus, CorpusConfig};

// ---------------------------------------------------------------------
// support
// ---------------------------------------------------------------------

#[test]
fn fractions_and_grid() {
    let xs = [1.0, 2.0, 3.0, 4.0];
    assert_eq!(fraction_at_least(&xs, 3.0), 0.5);
    assert_eq!(fraction_at_most(&xs, 2.0), 0.5);
    assert_eq!(fraction_at_least(&[], 1.0), 0.0);
    assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    let grid = [0.0, 2.5, 5.0];
    assert_eq!(
        cdf_grid(&xs, &grid),
        vec![(0.0, 0.0), (2.5, 0.5), (5.0, 1.0)]
    );
    assert!(median(&xs) == 2.5);
    assert!(median(&[]).is_nan());
}

#[test]
fn ascii_plot_is_monotone_and_labelled() {
    let grid: Vec<f64> = (0..=10).map(|i| i as f64).collect();
    let values: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
    let plot = ascii_cdf_plot("test plot", &[("series-a", &values)], &grid);
    assert!(plot.contains("test plot"));
    assert!(plot.contains("[*] series-a"));
    assert!(plot.contains(" 1.00 |"));
    assert!(plot.contains(" 0.00 |"));
    // Top row carries the glyph at the right edge (CDF reaches 1).
    let top_row = plot.lines().find(|l| l.starts_with(" 1.00")).unwrap();
    assert!(top_row.ends_with('*'));
}

// ---------------------------------------------------------------------
// benchworld
// ---------------------------------------------------------------------

#[test]
fn sensitivity_world_shape() {
    let (corpus, clients) = sensitivity_world(1);
    assert_eq!(clients.len(), 3);
    assert_eq!(corpus.sites.len(), 1);
    let site = &corpus.sites[0];
    // 5 hosts × 5 sizes.
    assert_eq!(site.objects.iter().filter(|o| o.external).count(), 25);
    // Every alternate host resolves.
    for host in crate::benchworld::sensitivity_hosts() {
        assert!(corpus
            .world
            .resolve(&alternate_of(&host), clients[0])
            .is_some());
    }
    let rules = sensitivity_rules();
    assert_eq!(rules.len(), 5);
    for rule in rules {
        rule.validate().unwrap();
    }
}

#[test]
fn alternate_host_naming() {
    assert_eq!(alternate_of("s3.bench.example"), "alt3.bench.example");
    assert_eq!(alternate_of("s1.bench.example"), "alt1.bench.example");
}

#[test]
fn benchmark_world_shape() {
    let (corpus, clients) = benchmark_world(2);
    assert_eq!(clients.len(), 25);
    let site = &corpus.sites[0];
    // 6 sets × 4 sizes.
    assert_eq!(site.objects.len(), 24);
    assert_eq!(site.objects.iter().filter(|o| !o.external).count(), 4);
    let rules = benchmark_rules();
    assert_eq!(rules.len(), 5);
    // The two Poor defaults carry the deep diurnal collapse.
    let deep: usize = corpus
        .world
        .servers()
        .iter()
        .filter(|s| s.diurnal_amplitude > 5.0)
        .count();
    assert_eq!(deep, 2);
}

#[test]
fn benchmark_world_is_deterministic() {
    let (a, _) = benchmark_world(7);
    let (b, _) = benchmark_world(7);
    assert_eq!(a.sites[0].html, b.sites[0].html);
}

// ---------------------------------------------------------------------
// matchrate + replicated selection
// ---------------------------------------------------------------------

fn small_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        sites: 60,
        seed: 5,
        providers: 40,
        ..CorpusConfig::default()
    })
}

#[test]
fn match_rates_are_cumulative_and_bounded() {
    let corpus = small_corpus();
    for site in &corpus.sites {
        let r = site_match_rates(&corpus, site);
        assert!(r.direct <= r.text + 1e-9);
        assert!(r.text <= r.external_js + 1e-9);
        assert!((0.0..=1.0).contains(&r.direct));
        assert!((0.0..=1.0).contains(&r.external_js));
        assert_eq!(r.external_servers, site.external_domains().len());
    }
}

#[test]
fn site_selection_respects_host_bounds() {
    let corpus = small_corpus();
    let (h1, h2) = select_sites(&corpus);
    assert!(h1.len() <= 5 && h2.len() <= 5);
    for &i in &h1 {
        let hosts = corpus.sites[i].external_domains().len();
        assert!(hosts > 5 && hosts < 15, "H1 site {i} has {hosts} hosts");
    }
    for &i in &h2 {
        let hosts = corpus.sites[i].external_domains().len();
        assert!(hosts > 15, "H2 site {i} has {hosts} hosts");
    }
    // No overlap.
    for i in &h1 {
        assert!(!h2.contains(i));
    }
}

#[test]
fn durability_bench_workload_round_trips() {
    assert!(
        crate::durability::roundtrip_check(40),
        "bench WAL must recover cleanly with every event replayed"
    );
}

#[test]
fn resilience_bench_breaker_trace_is_deterministic() {
    use oak_core::fetch::FetchPolicy;
    let policy = FetchPolicy {
        deadline: None,
        retries: 0,
        backoff_base: std::time::Duration::ZERO,
        negative_ttl_ms: 0,
        breaker_threshold: 3,
        breaker_cooldown_ms: 1_000,
    };
    // Host heals on the third probe: exactly three cooldowns of
    // engine time, every run.
    let (ms, attempts, skips) = crate::resilience::breaker_recovery_trace(policy, 5);
    assert_eq!((ms, attempts, skips), (3_000, 6, 0));
    // Heal on the first probe: one cooldown.
    let (ms, attempts, _) = crate::resilience::breaker_recovery_trace(policy, 3);
    assert_eq!((ms, attempts), (1_000, 4));
}

#[test]
fn resilience_bench_flaky_ingest_opens_the_breaker() {
    use oak_core::fetch::FetchPolicy;
    let policy = FetchPolicy {
        deadline: Some(std::time::Duration::from_millis(5)),
        retries: 0,
        backoff_base: std::time::Duration::ZERO,
        negative_ttl_ms: 0,
        breaker_threshold: 2,
        breaker_cooldown_ms: 60_000,
    };
    let (_, fetches) =
        crate::resilience::flaky_ingest_duration(6, std::time::Duration::from_millis(30), policy);
    assert_eq!(fetches.attempts, 2, "breaker caps attempts at threshold");
    assert_eq!(fetches.breaker_open_skips, 4);
}
