//! Per-site connection-dependency match rates (Fig. 8, Table 2).
//!
//! §4.2.2's validation experiment: "we treat the entire index page as a
//! single rule, and attempt to match each server to it. Any servers which
//! do not match therefore represent objects that are loaded as the result
//! of scripts or other methods which mask the origin from Oak."

use oak_core::matching::{match_rule, MatchLevel, ScriptFetcher};
use oak_webgen::{Corpus, Site};

/// Match rates for one site at the three levels (cumulative fractions of
/// external servers matched).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteMatchRates {
    /// Number of distinct external servers the page contacts.
    pub external_servers: usize,
    /// Fraction matched with direct `src` inclusion only.
    pub direct: f64,
    /// Fraction matched with direct + text search.
    pub text: f64,
    /// Fraction matched with direct + text + external-JS expansion.
    pub external_js: f64,
}

/// Computes the three-level match rates for `site`, using the corpus as
/// the script fetcher.
pub fn site_match_rates(corpus: &Corpus, site: &Site) -> SiteMatchRates {
    let fetcher = |url: &str| corpus.script_body(url);
    let domains = site.external_domains();
    let total = domains.len().max(1);
    let mut counts = [0usize; 3];
    for domain in &domains {
        let owned = vec![(*domain).to_owned()];
        let outcome = match_rule(
            &site.html,
            &owned,
            MatchLevel::ExternalJs,
            &fetcher as &dyn ScriptFetcher,
        );
        match outcome.map(|m| m.level) {
            Some(MatchLevel::DirectInclude) => {
                counts[0] += 1;
                counts[1] += 1;
                counts[2] += 1;
            }
            Some(MatchLevel::TextMatch) => {
                counts[1] += 1;
                counts[2] += 1;
            }
            Some(MatchLevel::ExternalJs) => counts[2] += 1,
            None => {}
        }
    }
    SiteMatchRates {
        external_servers: domains.len(),
        direct: counts[0] as f64 / total as f64,
        text: counts[1] as f64 / total as f64,
        external_js: counts[2] as f64 / total as f64,
    }
}
