//! A counting global allocator for allocs-per-op benchmarks.
//!
//! Benchmark binaries opt in by registering the wrapper:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: oak_bench::alloc::CountingAlloc = oak_bench::alloc::CountingAlloc;
//! ```
//!
//! then bracket a measured region with [`snapshot`] and subtract. The
//! counters are process-global relaxed atomics — cheap enough (one
//! `fetch_add` per allocation) that they don't distort the throughput
//! numbers they annotate, but *not* per-thread: run the measured region
//! single-threaded when attributing allocations to an operation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] plus two relaxed counters: allocation calls and bytes
/// requested. `realloc` counts as one allocation of the new size;
/// `dealloc` is uncounted (the benchmarks report allocation pressure,
/// not live-heap size).
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// The running totals `(allocation_calls, bytes_requested)` since process
/// start. Diff two snapshots to price a region.
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// `end - start` per-op costs for `ops` operations between two
/// [`snapshot`]s, as `(allocs_per_op, bytes_per_op)`.
pub fn per_op(start: (u64, u64), end: (u64, u64), ops: u64) -> (f64, f64) {
    let ops = ops.max(1) as f64;
    (
        end.0.saturating_sub(start.0) as f64 / ops,
        end.1.saturating_sub(start.1) as f64 / ops,
    )
}
