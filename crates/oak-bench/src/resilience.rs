//! Shared machinery for the edge-resilience benchmark
//! (`bench_resilience`): what the guard rails cost on the happy path,
//! and what they save when a dependency misbehaves.
//!
//! Three measurements:
//!
//! 1. **Guard tax**: requests/s through a [`TcpServer`] with production
//!    [`ServerLimits`] vs. effectively-unlimited ones — the price of the
//!    permit gauge, deadline re-arming, and size checks on every request.
//! 2. **Breaker savings**: report-ingest time against a hanging script
//!    host, with the circuit breaker on vs. off — the naive edge pays
//!    the fetch deadline on every report, the guarded edge only until
//!    the circuit opens.
//! 3. **Breaker recovery**: engine-clock milliseconds from a host dying
//!    to its circuit closing again, on a fake clock — fully
//!    deterministic, so the recorded number is a regression tripwire.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant as WallInstant};

use oak_core::engine::{Oak, OakConfig};
use oak_core::fetch::{FetchPolicy, FetchSnapshot, FetchStep, FlakyFetcher, ResilientFetcher};
use oak_core::matching::ScriptFetcher;
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::Instant;
use oak_http::{fetch_tcp, Method, Request, ServerLimits, TcpServer};
use oak_server::{OakService, SiteStore};

const PAGE: &str = r#"<html><head><script src="http://cdn-a.example/jquery.js"></script></head><body>shop</body></html>"#;

/// The benchmark site: one page, one Type 2 rule.
fn service() -> OakService {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(
        r#"<script src="http://cdn-a.example/jquery.js">"#,
        [r#"<script src="http://cdn-b.example/jquery.js">"#],
    ))
    .expect("bench rule");
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    OakService::new(oak, store)
}

/// Limits so large nothing ever trips — the "guard off" baseline (the
/// gauge and deadline machinery still runs; only the thresholds move).
pub fn permissive_limits() -> ServerLimits {
    ServerLimits {
        max_connections: 1 << 20,
        max_head_bytes: 1 << 30,
        max_body_bytes: 1 << 30,
        read_timeout: Duration::from_secs(3_600),
        write_timeout: Duration::from_secs(3_600),
        drain_timeout: Duration::from_secs(5),
        queue_deadline: Duration::ZERO,
    }
}

/// Serves `requests` page fetches over real TCP under `limits` and
/// returns the elapsed wall time.
pub fn edge_duration(limits: ServerLimits, requests: u64) -> Duration {
    let mut server =
        TcpServer::start_with_limits(0, service().into_shared(), limits).expect("bench server");
    let addr = server.addr();
    let request = Request::new(Method::Get, "/index.html");
    let started = WallInstant::now();
    for _ in 0..requests {
        let resp = fetch_tcp(addr, &request).expect("bench fetch");
        assert!(resp.status.is_success());
    }
    let elapsed = started.elapsed();
    server.shutdown();
    elapsed
}

/// A report that makes an off-page host the violator, forcing level-3
/// matching to fetch the rule's external script.
fn level3_report(user: &str) -> PerfReport {
    let mut report = PerfReport::new(user, "/index.html");
    report.push(ObjectTiming::new(
        "http://elsewhere.example/app.js",
        "10.0.0.9",
        30_000,
        900.0,
    ));
    for (host, ms) in [("a", 80.0), ("b", 95.0), ("c", 70.0), ("d", 90.0)] {
        report.push(ObjectTiming::new(
            format!("http://{host}.example/o.png"),
            format!("10.0.1.{}", ms as u32),
            30_000,
            ms,
        ));
    }
    report
}

/// Ingests `reports` level-3 reports while every script fetch hangs for
/// `hang`, under `policy`. Returns elapsed wall time and the fetch
/// counters (the breaker-on run attempts a handful of fetches; the
/// breaker-off run attempts one per report).
pub fn flaky_ingest_duration(
    reports: u64,
    hang: Duration,
    policy: FetchPolicy,
) -> (Duration, FetchSnapshot) {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(
        r#"<script src="http://cdn-a.example/jquery.js">"#,
        [r#"<script src="http://cdn-b.example/jquery.js">"#],
    ))
    .expect("bench rule");
    let t0 = WallInstant::now();
    let fetcher = ResilientFetcher::new(FlakyFetcher::new([FetchStep::Hang(hang)]), policy)
        .with_clock(move || Instant(t0.elapsed().as_millis() as u64));
    let started = WallInstant::now();
    for i in 0..reports {
        let report = level3_report(&format!("u-{i}"));
        oak.ingest_report_from(Instant(i), &report, &fetcher, None);
    }
    (started.elapsed(), fetcher.stats())
}

/// Deterministic breaker-recovery trace on a fake clock: the host fails
/// `failures_before_heal` times (opening the circuit at
/// `policy.breaker_threshold`), then heals. The clock is advanced one
/// cooldown at a time until a probe closes the circuit.
///
/// Returns `(engine_ms_to_recovery, attempts, skips)` — all exact, every
/// run.
pub fn breaker_recovery_trace(policy: FetchPolicy, failures_before_heal: u32) -> (u64, u64, u64) {
    let clock = Arc::new(AtomicU64::new(0));
    let clock_ref = Arc::clone(&clock);
    let script: Vec<FetchStep> = (0..failures_before_heal)
        .map(|_| FetchStep::Fail)
        .chain([FetchStep::Ok("healed".into())])
        .collect();
    let fetcher = ResilientFetcher::new(FlakyFetcher::new(script), policy)
        .with_clock(move || Instant(clock_ref.load(Ordering::SeqCst)));
    let url = "http://flaky.example/lib.js";
    let host = "flaky.example";

    // Drive fetches until the circuit opens...
    while !fetcher.circuit_open(host) {
        fetcher.fetch_script(url);
    }
    let opened_at = clock.load(Ordering::SeqCst);
    // ...then advance one cooldown per probe until it closes.
    while fetcher.circuit_open(host) {
        clock.fetch_add(policy.breaker_cooldown_ms, Ordering::SeqCst);
        fetcher.fetch_script(url);
    }
    let stats = fetcher.stats();
    (
        clock.load(Ordering::SeqCst) - opened_at,
        stats.attempts,
        stats.breaker_open_skips,
    )
}
