//! Output formatting shared by every experiment binary.

use oak_core::stats::percentile;

/// Prints a CDF as fixed-quantile rows: p10 p25 p50 p75 p90 p99 max.
pub fn print_cdf(label: &str, values: &[f64]) {
    if values.is_empty() {
        println!("{label:<28} (no samples)");
        return;
    }
    let q = |p: f64| percentile(values, p).unwrap();
    println!(
        "{label:<28} n={:<5} p10={:<9.3} p25={:<9.3} p50={:<9.3} p75={:<9.3} p90={:<9.3} max={:<9.3}",
        values.len(),
        q(10.0),
        q(25.0),
        q(50.0),
        q(75.0),
        q(90.0),
        q(100.0),
    );
}

/// Fraction of samples at or above `threshold`.
pub fn fraction_at_least(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v >= threshold).count() as f64 / values.len() as f64
}

/// Fraction of samples at or below `threshold`.
pub fn fraction_at_most(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= threshold).count() as f64 / values.len() as f64
}

/// The empirical CDF evaluated on a fixed grid, as `(x, F(x))` rows —
/// ready to plot against the paper's figure.
pub fn cdf_grid(values: &[f64], grid: &[f64]) -> Vec<(f64, f64)> {
    grid.iter()
        .map(|&x| (x, fraction_at_most(values, x)))
        .collect()
}

/// Prints `(x, F(x))` rows, one per line, with a header.
pub fn print_cdf_grid(label: &str, values: &[f64], grid: &[f64]) {
    println!("# CDF: {label}");
    println!("# x\tF(x)");
    for (x, f) in cdf_grid(values, grid) {
        println!("{x:.3}\t{f:.3}");
    }
}

/// The sample median (convenience over `oak_core::stats`).
pub fn median(values: &[f64]) -> f64 {
    oak_core::stats::median(values).unwrap_or(f64::NAN)
}

/// Renders one or more empirical CDFs as an ASCII plot, x on the given
/// grid, F(x) on a 0–1 vertical axis — a rough visual check against the
/// paper's figures without leaving the terminal.
///
/// Each series is drawn with its own glyph (`*`, `o`, `+`, `x`, …).
pub fn ascii_cdf_plot(title: &str, series: &[(&str, &[f64])], grid: &[f64]) -> String {
    const HEIGHT: usize = 12;
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

    let mut canvas = vec![vec![' '; grid.len()]; HEIGHT + 1];
    for (si, (_, values)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (col, &x) in grid.iter().enumerate() {
            let f = fraction_at_most(values, x);
            let row = HEIGHT - (f * HEIGHT as f64).round() as usize;
            canvas[row][col] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (row, line) in canvas.iter().enumerate() {
        let f = 1.0 - row as f64 / HEIGHT as f64;
        out.push_str(&format!("{f:>5.2} |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(grid.len()));
    out.push('\n');
    out.push_str(&format!(
        "       x: {:.2} … {:.2}   ",
        grid.first().copied().unwrap_or(0.0),
        grid.last().copied().unwrap_or(0.0)
    ));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("[{}] {}  ", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push('\n');
    out
}

/// Prints a two-column table with a title.
pub fn print_table(title: &str, header: (&str, &str), rows: &[(String, String)]) {
    println!("\n## {title}");
    println!("{:<42} {}", header.0, header.1);
    println!("{:-<42} {:-<30}", "", "");
    for (a, b) in rows {
        println!("{a:<42} {b}");
    }
}
