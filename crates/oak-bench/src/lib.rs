//! Experiment harness for the Oak reproduction.
//!
//! One binary per table/figure of the paper (`src/bin/fig*.rs`,
//! `src/bin/table*.rs`) regenerates that exhibit's rows or series; this
//! library holds the shared machinery:
//!
//! - [`support`]: CDF/percentile printing used by every binary,
//! - [`benchworld`]: the §5.1/§5.2 controlled worlds (sensitivity and
//!   benchmark-detection experiments, Figs. 9–11),
//! - [`matchrate`]: per-site connection-dependency match rates (Fig. 8,
//!   Table 2),
//! - [`replicated`]: the §5.3 replicated-sites experiment shared by
//!   Figs. 12–14 and Tables 2–3.
//!
//! Run any exhibit with
//! `cargo run --release -p oak-bench --bin <name>`; see DESIGN.md §4 for
//! the full index and EXPERIMENTS.md for recorded paper-vs-measured
//! results.

pub mod alloc;
pub mod benchworld;
pub mod contention;
pub mod durability;
pub mod matchrate;
pub mod replicated;
pub mod resilience;
pub mod support;

#[cfg(test)]
mod tests;
