//! Multi-threaded engine contention harness.
//!
//! Measures ingest+serve throughput with K threads driving K *disjoint*
//! users — the workload the engine's lock striping is built for (each
//! user maps to one state shard, so disjoint users only contend when
//! their FNV hashes collide on a shard). The baseline wraps the same
//! engine in one big `Mutex`, reproducing the pre-striping design where
//! every request serialized on a single lock.
//!
//! Used by the `engine_contended` criterion group in
//! `benches/hot_paths.rs` and by the `bench_throughput` binary, which
//! records the scaling table in `BENCH_throughput.json`.

use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::Duration;

use oak_core::engine::{Oak, OakConfig};
use oak_core::matching::NoFetch;
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::Instant;

/// Rules registered on the engine under test (mirrors the single-threaded
/// `engine/*` benches, so contended and uncontended numbers compare).
pub const RULE_COUNT: usize = 40;

/// Servers per synthetic report; the last object of one server is always
/// a violator-grade outlier.
pub const SERVER_COUNT: usize = 40;

/// External tags on the synthetic page being rewritten.
pub const PAGE_TAGS: usize = 40;

/// A report from `user` with [`SERVER_COUNT`] servers, three objects each.
pub fn contended_report(user: &str) -> PerfReport {
    let mut report = PerfReport::new(user, "/index.html");
    for s in 0..SERVER_COUNT {
        for o in 0..3 {
            report.push(ObjectTiming::new(
                format!("http://host{s}.example/obj{o}.js"),
                format!("10.0.{}.{}", s / 250, s % 250 + 1),
                if o == 2 {
                    120_000
                } else {
                    8_000 + (s * 131 + o * 17) as u64 % 30_000
                },
                80.0 + ((s * 37 + o * 101) % 120) as f64,
            ));
        }
    }
    report
}

/// The page every worker asks the engine to rewrite.
pub fn contended_page() -> String {
    let mut page = String::from("<!DOCTYPE html><html><head><title>bench</title></head><body>\n");
    for i in 0..PAGE_TAGS {
        page.push_str(&format!(
            "<script src=\"http://host{i}.example/lib{i}.js\"></script>\n"
        ));
    }
    page.push_str("</body></html>\n");
    page
}

/// A fresh engine with [`RULE_COUNT`] Type 2 rules.
pub fn build_engine() -> Oak {
    let oak = Oak::new(OakConfig::default());
    for i in 0..RULE_COUNT {
        oak.add_rule(Rule::replace_identical(
            format!("http://host{i}.example/"),
            [format!("http://alt.example/host{i}.example/")],
        ))
        .unwrap();
    }
    oak
}

/// Wall time for `threads` workers to each run `ops_per_thread` calls of
/// `op(thread_index)`, from a common start barrier to the last finish.
fn timed_run(
    threads: usize,
    ops_per_thread: u64,
    op: impl Fn(usize) + Send + Sync + 'static,
) -> Duration {
    let op = Arc::new(op);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let op = Arc::clone(&op);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for _ in 0..ops_per_thread {
                    op(t);
                }
            })
        })
        .collect();
    barrier.wait();
    let start = std::time::Instant::now();
    for handle in handles {
        handle.join().expect("contention worker");
    }
    start.elapsed()
}

/// One op = ingest the thread's report, then serve the page to the same
/// user — the request pair every page view costs the server.
fn run_op(oak: &Oak, report: &PerfReport, page: &str) {
    oak.ingest_report(Instant::ZERO, report, &NoFetch);
    oak.modify_page(Instant::ZERO, &report.user, "/index.html", page);
}

/// Wall time for the striped engine: workers call it directly, relying on
/// its internal sharding.
pub fn sharded_duration(threads: usize, ops_per_thread: u64) -> Duration {
    let oak = Arc::new(build_engine());
    let reports: Vec<PerfReport> = (0..threads)
        .map(|t| contended_report(&format!("contended-u{t}")))
        .collect();
    let page = contended_page();
    timed_run(threads, ops_per_thread, move |t| {
        run_op(&oak, &reports[t], &page)
    })
}

/// Wall time for the single-mutex baseline: the same engine behind one
/// lock held for each whole call, as the service did before striping.
pub fn single_mutex_duration(threads: usize, ops_per_thread: u64) -> Duration {
    let oak = Arc::new(Mutex::new(build_engine()));
    let reports: Vec<PerfReport> = (0..threads)
        .map(|t| contended_report(&format!("contended-u{t}")))
        .collect();
    let page = contended_page();
    timed_run(threads, ops_per_thread, move |t| {
        let guard = oak.lock().expect("baseline lock");
        run_op(&guard, &reports[t], &page)
    })
}
