//! The §5.3 replicated-sites experiment.
//!
//! "We replicate existing sites by copying them onto a server in our
//! control which is running Oak. … We then load the site from external
//! clients and demonstrate that Oak is able to identify the violating
//! servers … and switch to viable alternatives when available."
//!
//! The machinery here drives Figs. 12 (correct choices), 13 (object time
//! ratios), 14 (rule activation concentration) and Tables 2–3.

use std::collections::BTreeMap;

use oak_client::rules::{closest_replica, rules_for_site};
use oak_client::{original_url, Browser, BrowserConfig, Universe};
use oak_core::engine::{LogAction, Oak, OakConfig};
use oak_core::rule::RuleId;
use oak_core::stats::median;
use oak_core::Instant;
use oak_net::{ClientId, SimTime};
use oak_webgen::Corpus;

use crate::matchrate::site_match_rates;

/// Paper parameters: 15 loads per (site, client) per condition.
pub const LOADS: usize = 15;

/// H1 ("low-expectation") and H2 ("high-expectation") site indices:
/// 5 sites each, H1 with 5–15 external hosts, H2 with more than 15,
/// "sites which were able to achieve the highest rule-activation match
/// rate" (§5.3).
pub fn select_sites(corpus: &Corpus) -> (Vec<usize>, Vec<usize>) {
    let mut h1: Vec<(usize, f64)> = Vec::new();
    let mut h2: Vec<(usize, f64)> = Vec::new();
    for (i, site) in corpus.sites.iter().enumerate() {
        let hosts = site.external_domains().len();
        let rates = site_match_rates(corpus, site);
        if hosts > 5 && hosts < 15 {
            h1.push((i, rates.external_js));
        } else if hosts > 15 {
            h2.push((i, rates.external_js));
        }
    }
    let top5 = |mut v: Vec<(usize, f64)>| {
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v.into_iter().take(5).map(|(i, _)| i).collect::<Vec<_>>()
    };
    (top5(h1), top5(h2))
}

/// Samples aggregated per experimental condition (H1/H2 × Close/Far).
#[derive(Clone, Debug, Default)]
pub struct ConditionData {
    /// Per activated (site, client, rule): fraction of loads on which
    /// Oak's on/off choice matched the post-hoc correct choice (Fig. 12).
    pub correct_fractions: Vec<f64>,
    /// Per protected (site, client, domain) with an activated rule:
    /// median default object time / median Oak-arm object time (Fig. 13;
    /// > 1 means Oak's choice was faster).
    pub object_ratios: Vec<f64>,
}

/// Everything the replicated-sites binaries read.
#[derive(Clone, Debug, Default)]
pub struct ReplicatedResults {
    /// H1 site indices.
    pub h1: Vec<usize>,
    /// H2 site indices.
    pub h2: Vec<usize>,
    /// Keys: `"H1-Close"`, `"H1-Far"`, `"H2-Close"`, `"H2-Far"`.
    pub conditions: BTreeMap<&'static str, ConditionData>,
    /// Activation counts per (site index, rule domain), across clients.
    pub rule_activations: BTreeMap<(usize, String), usize>,
    /// Total activations per site index.
    pub site_activations: BTreeMap<usize, usize>,
}

/// Runs the full experiment over the selected sites.
pub fn run(corpus: &Corpus) -> ReplicatedResults {
    let (h1, h2) = select_sites(corpus);
    let universe = Universe::new(corpus);
    let mut results = ReplicatedResults {
        h1: h1.clone(),
        h2: h2.clone(),
        ..ReplicatedResults::default()
    };
    for key in ["H1-Close", "H1-Far", "H2-Close", "H2-Far"] {
        results.conditions.insert(key, ConditionData::default());
    }

    for (&site_index, is_h1) in h1
        .iter()
        .map(|s| (s, true))
        .chain(h2.iter().map(|s| (s, false)))
    {
        for &client in &corpus.clients {
            let (run, activated_domains) = run_site_client(corpus, &universe, site_index, client);
            let close = corpus.world.client(client).region
                == corpus.world.server(corpus.sites[site_index].origin).region;
            let key = match (is_h1, close) {
                (true, true) => "H1-Close",
                (true, false) => "H1-Far",
                (false, true) => "H2-Close",
                (false, false) => "H2-Far",
            };
            let data = results.conditions.get_mut(key).expect("condition exists");
            data.correct_fractions.extend(run.correct_fractions);
            data.object_ratios.extend(run.object_ratios);

            for domain in activated_domains {
                *results
                    .rule_activations
                    .entry((site_index, domain))
                    .or_insert(0) += 1;
                *results.site_activations.entry(site_index).or_insert(0) += 1;
            }
        }
    }
    results
}

struct SiteClientRun {
    correct_fractions: Vec<f64>,
    object_ratios: Vec<f64>,
}

/// Per-domain object times for one arm: `(load index, time_ms)` pairs, so
/// correctness can be judged over the same window Oak acted in.
type DomainTimes = BTreeMap<String, Vec<(usize, f64)>>;

/// Median of the times at or after `from_load`.
fn windowed_median(times: &DomainTimes, domain: &str, from_load: usize) -> Option<f64> {
    let window: Vec<f64> = times
        .get(domain)?
        .iter()
        .filter(|(load, _)| *load >= from_load)
        .map(|(_, t)| *t)
        .collect();
    median(&window)
}

/// Runs the three §5.3 conditions — default, all-rules-forced, normal Oak
/// — for one (site, client), and derives the per-rule correctness and
/// per-object ratio samples.
fn run_site_client(
    corpus: &Corpus,
    universe: &Universe<'_>,
    site_index: usize,
    client: ClientId,
) -> (SiteClientRun, Vec<String>) {
    let site = &corpus.sites[site_index];
    let region = corpus.world.client(client).region;
    let replica = closest_replica(region);
    let rules = rules_for_site(site, replica);

    // Arm 1: default (no Oak).
    let default_times = run_arm(universe, site_index, client, |_| None);

    // Arm 2: every rule forced on, no report ingestion.
    let forced_oak = Oak::new(OakConfig::default());
    let mut rule_ids: Vec<(RuleId, String)> = Vec::new();
    for (domain, rule) in &rules {
        if let Ok(id) = forced_oak.add_rule(rule.clone()) {
            rule_ids.push((id, domain.clone()));
        }
    }
    let user = format!("u-{}", client.0);
    for (id, _) in &rule_ids {
        forced_oak.force_activate(Instant::ZERO, &user, *id);
    }
    let forced_times = run_arm(universe, site_index, client, |t| {
        Some(forced_oak.modify_page(Instant(t.as_millis()), &user, &site.index_path, &site.html))
    });

    // Arm 3: normal Oak — serve, load, report, ingest, repeat.
    let oak = Oak::new(OakConfig::default());
    let mut id_to_domain: BTreeMap<RuleId, String> = BTreeMap::new();
    for (domain, rule) in &rules {
        if let Ok(id) = oak.add_rule(rule.clone()) {
            id_to_domain.insert(id, domain.clone());
        }
    }
    let mut browser = Browser::new(client, user.clone(), BrowserConfig::default());
    let mut oak_times: DomainTimes = BTreeMap::new();
    // Choice in effect per load, per rule id.
    let mut choices: BTreeMap<RuleId, Vec<bool>> = BTreeMap::new();
    for k in 0..LOADS {
        let t = load_time(k);
        let now = Instant(t.as_millis());
        let active: Vec<RuleId> = oak.active_rules(&user).iter().map(|(id, _)| *id).collect();
        // The first load precedes any report: Oak has no information yet,
        // so the paper's "choices" start once the client has reported
        // ("Oak must use a server before it has information about that
        // server", §5.3).
        if k > 0 {
            for id in id_to_domain.keys() {
                choices.entry(*id).or_default().push(active.contains(id));
            }
        }
        let modified = oak.modify_page(now, &user, &site.index_path, &site.html);
        let load = browser.load_page(universe, site, &modified.html, &modified.cache_hints, t);
        record_times(&mut oak_times, k, &load);
        oak.ingest_report(now, &load.report, universe);
    }

    // Activated domains: rules with at least one Activated log event.
    let activated: Vec<RuleId> = oak
        .log()
        .iter()
        .filter(|e| matches!(e.action, LogAction::Activated { .. }))
        .map(|e| e.rule)
        .collect();
    let mut activated_domains: Vec<String> = Vec::new();

    // Correctness and ratios, for activated rules only ("we ignore cases
    // in which no rule was ever activated", §5.3). Both are judged over
    // the window from the rule's first activation to the end of the run:
    // before a violation surfaces there is nothing to choose, and the
    // paper's error budget is about activations "later deactivated when
    // the alternate was non-performing", not about watchful waiting.
    let mut correct_fractions = Vec::new();
    let mut object_ratios = Vec::new();
    for id in activated.iter().collect::<std::collections::BTreeSet<_>>() {
        let domain = &id_to_domain[id];
        activated_domains.push(domain.clone());
        let Some(chosen) = choices.get(id) else {
            continue;
        };
        // chosen[i] is the state in effect for load i+1.
        let Some(from) = chosen.iter().position(|&on| on) else {
            continue;
        };
        let from_load = from + 1;
        let (Some(default_med), Some(forced_med)) = (
            windowed_median(&default_times, domain, from_load),
            windowed_median(&forced_times, domain, from_load),
        ) else {
            continue;
        };
        // The post-hoc correct setting over the decision window:
        // whichever arm served this rule's objects faster (§5.3).
        let correct_on = forced_med < default_med;
        let window = &chosen[from..];
        if !window.is_empty() {
            let agree = window.iter().filter(|&&on| on == correct_on).count();
            correct_fractions.push(agree as f64 / window.len() as f64);
        }
        if let Some(oak_med) = windowed_median(&oak_times, domain, from_load) {
            if oak_med > 0.0 {
                object_ratios.push(default_med / oak_med);
            }
        }
    }

    (
        SiteClientRun {
            correct_fractions,
            object_ratios,
        },
        activated_domains,
    )
}

/// Loads the site [`LOADS`] times through an optional page-modification
/// hook, returning per-original-domain object times.
fn run_arm(
    universe: &Universe<'_>,
    site_index: usize,
    client: ClientId,
    mut modify: impl FnMut(SimTime) -> Option<oak_core::engine::ModifiedPage>,
) -> DomainTimes {
    let site = &universe.corpus().sites[site_index];
    let mut browser = Browser::new(client, "arm", BrowserConfig::default());
    let mut times = DomainTimes::new();
    for k in 0..LOADS {
        let t = load_time(k);
        let (html, hints) = match modify(t) {
            Some(m) => (m.html, m.cache_hints),
            None => (site.html.clone(), Vec::new()),
        };
        let load = browser.load_page(universe, site, &html, &hints, t);
        record_times(&mut times, k, &load);
    }
    times
}

/// Attributes each fetch to its *original* domain (replica fetches are
/// un-nested), so default/forced/Oak arms compare like for like.
fn record_times(times: &mut DomainTimes, load_index: usize, load: &oak_client::PageLoad) {
    for fetch in &load.fetches {
        if fetch.from_cache {
            continue;
        }
        let domain = original_url(&fetch.url)
            .and_then(|orig| {
                orig.split_once("://")
                    .map(|(_, r)| r.split('/').next().unwrap_or("").to_owned())
            })
            .unwrap_or_else(|| fetch.domain.clone());
        times
            .entry(domain)
            .or_default()
            .push((load_index, fetch.time_ms));
    }
}

/// Load `k`'s wall-clock: every 30 minutes starting 08:00, so the run
/// spans working hours and the diurnal curve moves underneath it.
fn load_time(k: usize) -> SimTime {
    SimTime::from_hours(8) + (k as u64) * 30 * 60_000
}
