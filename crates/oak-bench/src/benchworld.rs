//! Hand-built worlds for the controlled experiments of §5.1 and §5.2.
//!
//! These bypass the corpus generator: the paper built these pages by hand
//! ("a simple website which consists of 6 sets of simple objects", §5.2),
//! so the harness does too — assembling a [`Corpus`] value directly with
//! exactly the servers, objects, and rules the experiment calls for.

use std::collections::BTreeMap;

use oak_core::rule::Rule;
use oak_net::{ClientId, Quality, Region, ServerId, WorldBuilder};
use oak_webgen::{Category, Corpus, Inclusion, PageObject, Site};

/// The five external hosts of the §5.1 sensitivity page.
pub fn sensitivity_hosts() -> Vec<String> {
    (1..=5).map(|i| format!("s{i}.bench.example")).collect()
}

/// Alternate host for a default host (`s3.bench.example` →
/// `alt3.bench.example`).
pub fn alternate_of(host: &str) -> String {
    host.replacen('s', "alt", 1)
}

/// Builds the §5.1 sensitivity world: one origin, five external servers
/// plus five alternates (all North-American, same quality tier, so only
/// injected delays differentiate them), and one client in each of NA, EU,
/// and AS.
///
/// Returns the corpus (with a single one-page site) and the three client
/// ids in `[NA, EU, AS]` order.
pub fn sensitivity_world(seed: u64) -> (Corpus, Vec<ClientId>) {
    let mut b = WorldBuilder::new(seed);
    let origin = b.server("bench.example", Region::NorthAmerica, Quality::Good);

    let mut objects = Vec::new();
    let mut servers: Vec<ServerId> = Vec::new();
    for host in sensitivity_hosts() {
        let server = b.server(&host, Region::NorthAmerica, Quality::Mediocre);
        let alt = alternate_of(&host);
        b.server(&alt, Region::NorthAmerica, Quality::Mediocre);
        servers.push(server);
        // "objects of varying sizes": straddle the 50 KB split so both
        // detection axes run.
        for (j, bytes) in [10_000u64, 30_000, 45_000, 100_000, 500_000]
            .into_iter()
            .enumerate()
        {
            let url = format!("http://{host}/obj{j}.bin");
            objects.push(PageObject {
                url: url.clone(),
                domain: host.clone(),
                server,
                bytes,
                category: Category::Cdn,
                inclusion: Inclusion::SrcAttr,
                external: true,
                snippet: Some(format!(r#"<img src="{url}">"#)),
            });
        }
    }

    let clients = vec![
        b.client(Region::NorthAmerica),
        b.client(Region::Europe),
        b.client(Region::Asia),
    ];

    let site = assemble_site("bench.example", origin, objects);
    let corpus = Corpus {
        world: b.build(),
        providers: Vec::new(),
        sites: vec![site],
        clients: clients.clone(),
        replicas: Vec::new(),
        script_bodies: BTreeMap::new(),
    };
    (corpus, clients)
}

/// One Type 2 prefix rule per sensitivity host, to its alternate.
pub fn sensitivity_rules() -> Vec<Rule> {
    sensitivity_hosts()
        .iter()
        .map(|host| oak_client::rules::prefix_rule(host, &alternate_of(host)))
        .collect()
}

/// Builds the §5.2 benchmark-detection world: an origin plus five default
/// external servers of deliberately mixed quality (the paper found "2 of
/// the Planet Lab servers were performing significantly worse than the
/// others") and five randomly-good alternates, 6 object sets of
/// 30/50/100/500 KB, and the standard 25 clients.
pub fn benchmark_world(seed: u64) -> (Corpus, Vec<ClientId>) {
    let mut b = WorldBuilder::new(seed);
    let origin = b.server("bench10.example", Region::NorthAmerica, Quality::Good);

    // Default set qualities: two bad apples, as the paper observed.
    let default_quality = [
        Quality::Good,
        Quality::Good,
        Quality::Mediocre,
        Quality::Poor,
        Quality::Poor,
    ];
    let alt_quality = [
        Quality::Good,
        Quality::Mediocre,
        Quality::Good,
        Quality::Good,
        Quality::Good,
    ];

    let mut objects = Vec::new();
    // Set 0: hosted on the origin itself.
    for (j, bytes) in SET_SIZES.into_iter().enumerate() {
        let url = format!("http://bench10.example/set0/obj{j}.bin");
        objects.push(PageObject {
            url: url.clone(),
            domain: "bench10.example".into(),
            server: origin,
            bytes,
            category: Category::OriginAsset,
            inclusion: Inclusion::SrcAttr,
            external: false,
            snippet: Some(format!(r#"<img src="{url}">"#)),
        });
    }
    // Sets 1–5: external pairs. The two Poor defaults get a deep daytime
    // collapse — the paper's two bad PlanetLab nodes slowed by over 10×
    // when busy, far beyond an ordinary diurnal swing.
    for i in 0..5 {
        let host = format!("d{}.bench10.net", i + 1);
        let server = b.server(&host, Region::NorthAmerica, default_quality[i]);
        if default_quality[i] == Quality::Poor {
            b.tune_server(server, |s| {
                s.diurnal_amplitude = if i == 3 { 10.0 } else { 15.0 }
            });
        }
        let alt_host = format!("a{}.bench10.net", i + 1);
        b.server(&alt_host, Region::NorthAmerica, alt_quality[i]);
        for (j, bytes) in SET_SIZES.into_iter().enumerate() {
            let url = format!("http://{host}/set{}/obj{j}.bin", i + 1);
            objects.push(PageObject {
                url: url.clone(),
                domain: host.clone(),
                server,
                bytes,
                category: Category::Cdn,
                inclusion: Inclusion::SrcAttr,
                external: true,
                snippet: Some(format!(r#"<img src="{url}">"#)),
            });
        }
    }

    let mut clients = Vec::new();
    for _ in 0..13 {
        clients.push(b.client(Region::NorthAmerica));
    }
    for _ in 0..6 {
        clients.push(b.client(Region::Europe));
    }
    for _ in 0..4 {
        clients.push(b.client(Region::Asia));
    }
    for _ in 0..2 {
        clients.push(b.client(Region::Oceania));
    }

    let site = assemble_site("bench10.example", origin, objects);
    let corpus = Corpus {
        world: b.build(),
        providers: Vec::new(),
        sites: vec![site],
        clients: clients.clone(),
        replicas: Vec::new(),
        script_bodies: BTreeMap::new(),
    };
    (corpus, clients)
}

/// The §5.2 object sizes: "files sized 30, 50, 100, and 500KB".
pub const SET_SIZES: [u64; 4] = [30_000, 50_000, 100_000, 500_000];

/// One Type 2 prefix rule per benchmark default host, to its paired
/// alternate.
pub fn benchmark_rules() -> Vec<Rule> {
    (1..=5)
        .map(|i| {
            oak_client::rules::prefix_rule(
                &format!("d{i}.bench10.net"),
                &format!("a{i}.bench10.net"),
            )
        })
        .collect()
}

/// Renders the page HTML from the snippets and wraps everything in a
/// [`Site`].
fn assemble_site(host: &str, origin: ServerId, objects: Vec<PageObject>) -> Site {
    let body: String = objects
        .iter()
        .filter_map(|o| o.snippet.as_deref())
        .collect::<Vec<_>>()
        .join("\n");
    let html =
        format!("<!DOCTYPE html>\n<html><head><title>{host}</title></head>\n<body>\n{body}\n</body></html>\n");
    Site {
        host: host.to_owned(),
        origin,
        index_path: "/index.html".to_owned(),
        html,
        objects,
    }
}
