//! Fig. 11 — average PLT ratio (default / Oak) over three days.
//!
//! Paper shape (§5.2): "during the night, Oak performance was near that
//! of the default. As the default providers became busy during the day,
//! Oak was able to significantly improve the total page load time" — with
//! peak gains over 10×, "exactly proportional to the delays incurred at
//! the poorly performing servers".
//!
//! Run: `cargo run --release -p oak-bench --bin fig11_plt_timeseries`

use oak_bench::benchworld::{benchmark_rules, benchmark_world};
use oak_core::engine::{Oak, OakConfig};
use oak_net::SimTime;

const HOURS: u64 = 72;
const INTERVAL_MIN: u64 = 30;

fn main() {
    let (corpus, clients) = benchmark_world(0x11b);
    let oak = Oak::new(OakConfig::default());
    for rule in benchmark_rules() {
        oak.add_rule(rule).expect("bench rules validate");
    }
    let mut session = oak_client::SimSession::new(&corpus, oak);

    println!("Fig. 11 — mean PLT ratio (default / Oak) across 25 clients, every 3 h\n");
    println!("{:>8}  {:>8}  {:>8}", "hour", "ratio", "stddev");

    let mut peak = (0u64, 0.0f64);
    let mut slot = 0u64;
    while slot * INTERVAL_MIN < HOURS * 60 {
        let t = SimTime::from_minutes(slot * INTERVAL_MIN);
        let mut ratios = Vec::with_capacity(clients.len());
        for &client in &clients {
            let (oak_load, _) = session.visit(0, client, t);
            let default_plt = session.visit_default(0, client, t).plt_ms;
            ratios.push(default_plt / oak_load.plt_ms);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / ratios.len() as f64;
        if mean > peak.1 {
            peak = (slot * INTERVAL_MIN / 60, mean);
        }
        // Print every 6th slot (3 h) to keep the series readable.
        if slot.is_multiple_of(6) {
            println!(
                "{:>8}  {:>8.2}  {:>8.2}",
                slot * INTERVAL_MIN / 60,
                mean,
                var.sqrt()
            );
        }
        slot += 1;
    }

    println!(
        "\npeak mean ratio {:.1}× at hour {} (paper: >10× at the default providers' local peak;\n\
         night-time ratios near 1.0 — gains are proportional to the injected load)",
        peak.1, peak.0
    );
}
