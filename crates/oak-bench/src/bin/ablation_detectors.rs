//! Ablation — the MAD criterion against its two rejected alternatives.
//!
//! §4.2.1 argues for median ± 2·MAD over mean ± 2·σ (the deviation
//! statistic must not be dragged by the outliers it hunts), and §6
//! argues for *relative* detection over absolute thresholds ("users on
//! narrow-bandwidth long-haul links will likely see low performance no
//! matter which servers they are communicating with, and Oak need not
//! waste its time with such cases"; absolute bounds also "require
//! regularly updated measurements" to tune). This experiment quantifies
//! both arguments on the corpus.
//!
//! Run: `cargo run --release -p oak-bench --bin ablation_detectors`

use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig, OutlierMethod};
use oak_core::report::PerfReport;
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn count_violators(report: &PerfReport, method: OutlierMethod) -> usize {
    let analysis = PageAnalysis::from_report(report);
    detect_violators(
        &analysis,
        &DetectorConfig {
            method,
            ..DetectorConfig::default()
        },
    )
    .len()
}

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 120,
        ..CorpusConfig::default()
    });
    let universe = Universe::new(&corpus);
    let absolute = OutlierMethod::Absolute {
        max_small_ms: 400.0,
        min_large_kbps: 500.0,
    };

    // Part 1: detections per load across the corpus, healthy clients.
    let mut totals = [0usize; 3];
    let mut loads = 0usize;
    for site in &corpus.sites {
        for &client in corpus.clients.iter().take(8) {
            let mut browser = Browser::new(client, "abl", BrowserConfig::default());
            let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(13));
            totals[0] += count_violators(&load.report, OutlierMethod::Mad);
            totals[1] += count_violators(&load.report, OutlierMethod::StdDev);
            totals[2] += count_violators(&load.report, absolute);
            loads += 1;
        }
    }
    println!("Ablation — violators per load over {loads} corpus loads:");
    println!(
        "  MAD (paper):       {:.2}",
        totals[0] as f64 / loads as f64
    );
    println!(
        "  mean ± 2σ:         {:.2}",
        totals[1] as f64 / loads as f64
    );
    println!(
        "  absolute bounds:   {:.2}",
        totals[2] as f64 / loads as f64
    );

    // Part 2: the narrow-bandwidth long-haul client. Every server looks
    // slow in absolute terms; none is slow relative to the page.
    let mut slow = PerfReport::new("slow-link-user", "/");
    for s in 0..8 {
        slow.push(oak_core::report::ObjectTiming::new(
            format!("http://host{s}.example/x.js"),
            format!("10.9.9.{s}"),
            20_000,
            2_000.0 + s as f64 * 60.0,
        ));
    }
    println!("\nNarrow-bandwidth long-haul client (every server ≈ 2 s):");
    println!(
        "  MAD flags {} servers (nothing relatively slow — correct: switching providers cannot help this client)",
        count_violators(&slow, OutlierMethod::Mad)
    );
    println!(
        "  absolute bounds flag {} of 8 servers (all of them — rules would churn pointlessly)",
        count_violators(&slow, absolute)
    );

    // Part 3: σ self-masking. Two gross outliers inflate σ until one
    // escapes detection.
    let mut masked = PerfReport::new("mask", "/");
    for (i, t) in [100.0, 105.0, 98.0, 102.0, 2_500.0, 2_700.0]
        .iter()
        .enumerate()
    {
        masked.push(oak_core::report::ObjectTiming::new(
            format!("http://m{i}.example/x.js"),
            format!("10.8.8.{i}"),
            10_000,
            *t,
        ));
    }
    println!("\nTwo gross outliers on one page (σ self-masking):");
    println!(
        "  MAD flags {}; mean ± 2σ flags {} (σ is inflated by the very outliers it hunts)",
        count_violators(&masked, OutlierMethod::Mad),
        count_violators(&masked, OutlierMethod::StdDev)
    );
}
