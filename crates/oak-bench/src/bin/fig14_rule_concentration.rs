//! Fig. 14 — cumulative rule activations by the fraction of a site's
//! activations each rule accounts for.
//!
//! Paper shape (§5.3): "80% of rules never account for more than 18% of
//! their sites activations" — most rules fire for a few users only
//! (client-specific conditions), while a short head of rules (a fonts
//! API at 88% of one site's activations) reflects problems common to
//! many clients.
//!
//! Run: `cargo run --release -p oak-bench --bin fig14_rule_concentration`

use oak_bench::replicated::run;
use oak_bench::support::{fraction_at_most, print_cdf_grid};
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let results = run(&corpus);

    // Share of each site's activations per rule.
    let mut shares = Vec::new();
    let mut top: Option<(String, f64)> = None;
    for ((site, domain), &count) in &results.rule_activations {
        let total = results.site_activations[site];
        let share = count as f64 / total as f64;
        shares.push(share);
        if top.as_ref().is_none_or(|(_, s)| share > *s) {
            top = Some((format!("{domain} on {}", corpus.sites[*site].host), share));
        }
    }

    println!("Fig. 14 — per-rule share of its site's activations\n");
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    print_cdf_grid("activation share", &shares, &grid);
    println!(
        "\nrules at or below an 18% share: {:.0}%   (paper: 80%)",
        fraction_at_most(&shares, 0.18) * 100.0
    );
    if let Some((name, share)) = top {
        println!(
            "most-activated rule: {name} at {:.0}% of its site's activations (paper: a Google\n\
             fonts rule at 88% of wordpress.com's activations)",
            share * 100.0
        );
    }
}
