//! Replication, measured: how long the lease protocol takes to seat a
//! new primary after the old one dies (the failover window, in
//! deterministic sim-ms), and what WAL shipping costs the ingest path
//! relative to a single durable node (the replication tax).
//!
//! Both studies run the real [`oak_cluster::ClusterNode`] state machine
//! over an in-memory [`oak_sim::SimFs`] with instant loss-free delivery,
//! so the numbers isolate protocol cost from disk and network noise.
//! The tax is an upper bound: here one thread plays every replica, while
//! a live deployment runs followers on other machines.
//!
//! Prints the tables and records them in `BENCH_cluster.json`; exits
//! nonzero if any failover trial loses an acked event or the mean
//! failover window exceeds its SLO. Run with `cargo run --release -p
//! oak-bench --bin bench_cluster`; pass `--smoke` for the fast CI
//! variant (same shape, fewer trials).

use std::collections::VecDeque;
use std::process::ExitCode;
use std::sync::Arc;

use oak_cluster::{ClusterNode, Envelope, NodeId, NodeOptions, Role, Topology};
use oak_core::matching::NoFetch;
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::Instant;
use oak_sim::{SimFs, SimFsOptions};
use oak_store::{OakStore, StorageBackend};

/// Protocol tick cadence, matching the sim's cluster world and the live
/// runtime.
const TICK_MS: u64 = 20;

/// Mean failover SLO: generous against the 200 ms election timeout plus
/// worst-case per-node jitter, tight enough to catch a protocol
/// regression that adds extra election rounds.
const FAILOVER_SLO_MS: f64 = 1_000.0;

/// A replication group on simulated disks with perfect delivery: every
/// envelope a tick emits is handled before the next tick.
struct MiniCluster {
    nodes: Vec<Option<ClusterNode>>,
    now: u64,
}

impl MiniCluster {
    fn boot(replicas: u32, seed: u64) -> MiniCluster {
        let topology = Topology::new((0..replicas).map(NodeId).collect(), 1, replicas as usize);
        let nodes = (0..replicas)
            .map(|i| {
                let fs = SimFs::new(
                    seed.wrapping_mul(0x9e37_79b9)
                        .wrapping_add(u64::from(i) + 1),
                    SimFsOptions::default(),
                );
                let backend = Arc::new(fs) as Arc<dyn StorageBackend>;
                let node = ClusterNode::new(
                    NodeId(i),
                    topology.clone(),
                    backend,
                    format!("/bench/n{i}"),
                    NodeOptions::default(),
                    0,
                )
                .expect("pristine simulated disk boots");
                Some(node)
            })
            .collect();
        MiniCluster { nodes, now: 0 }
    }

    /// Advances one tick and drains the protocol to quiescence.
    fn tick(&mut self) {
        self.now += TICK_MS;
        let mut queue: VecDeque<Envelope> = VecDeque::new();
        for node in self.nodes.iter_mut().flatten() {
            queue.extend(node.tick(self.now));
        }
        let mut hops = 0u32;
        while let Some(envelope) = queue.pop_front() {
            hops += 1;
            assert!(hops < 100_000, "protocol did not quiesce within a tick");
            let idx = envelope.to.0 as usize;
            if let Some(node) = self.nodes.get_mut(idx).and_then(|n| n.as_mut()) {
                queue.extend(node.handle(self.now, &envelope));
            }
        }
    }

    fn primary(&self) -> Option<(usize, u64)> {
        self.nodes.iter().enumerate().find_map(|(idx, node)| {
            let node = node.as_ref()?;
            (node.role(0) == Some(Role::Primary)).then(|| (idx, node.status()[0].epoch))
        })
    }

    /// Ticks until a primary is seated; returns `(index, sim-ms waited)`.
    fn wait_for_primary(&mut self) -> (usize, u64) {
        let from = self.now;
        loop {
            if let Some((idx, _)) = self.primary() {
                return (idx, self.now - from);
            }
            self.tick();
            assert!(
                self.now - from < 60_000,
                "no primary seated within 60 sim-seconds"
            );
        }
    }

    /// Ingests one report through the current primary's engine.
    fn ingest(&mut self, primary: usize, report: &PerfReport) {
        let node = self.nodes[primary].as_ref().expect("primary is alive");
        let oak = node.primary_engine(0).expect("caller routed to primary");
        oak.ingest_report_from(Instant(self.now), report, &NoFetch, None);
    }

    /// Ticks until the primary's replication watermark covers its head
    /// (every acked event is on a follower quorum).
    fn settle(&mut self, primary: usize) -> u64 {
        loop {
            let status = &self.nodes[primary]
                .as_ref()
                .expect("primary is alive")
                .status()[0];
            if status.commit >= status.head {
                return status.head;
            }
            self.tick();
        }
    }
}

fn bench_report(user: u64, object: u64) -> PerfReport {
    let mut report = PerfReport::new(format!("bench-user-{user}"), "/index.html");
    report.push(ObjectTiming {
        url: format!("https://static.example.com/o{}.js", object % 7),
        ip: format!("10.1.{}.{}", object % 5, user % 200),
        bytes: 12_000 + object % 4_000,
        time_ms: 40.0 + (object % 90) as f64,
    });
    report
}

/// One failover trial: seat a primary, replicate a working set, kill the
/// primary at a trial-specific heartbeat phase, and time the succession.
struct FailoverTrial {
    failover_ms: u64,
    acked_lost: u64,
}

fn failover_trial(trial: u64, reports: u64) -> FailoverTrial {
    let mut cluster = MiniCluster::boot(3, trial);
    let (primary, _) = cluster.wait_for_primary();
    for i in 0..reports {
        cluster.ingest(primary, &bench_report(i % 11, i));
        if i % 8 == 0 {
            cluster.tick();
        }
    }
    let acked = cluster.settle(primary);
    let epoch_before = cluster.nodes[primary].as_ref().expect("alive").status()[0].epoch;
    // Kill at a different phase of the heartbeat window each trial.
    for _ in 0..trial % 7 {
        cluster.tick();
    }
    cluster.nodes[primary] = None;
    let killed_at = cluster.now;
    let successor = loop {
        cluster.tick();
        if let Some((idx, epoch)) = cluster.primary() {
            if idx != primary && epoch > epoch_before {
                break idx;
            }
        }
        assert!(
            cluster.now - killed_at < 60_000,
            "no successor within 60 sim-seconds"
        );
    };
    let head = cluster.nodes[successor].as_ref().expect("alive").status()[0].head;
    FailoverTrial {
        failover_ms: cluster.now - killed_at,
        acked_lost: acked.saturating_sub(head),
    }
}

/// Wall-nanoseconds to ingest `reports` on a single durable node.
fn single_node_ns(reports: u64) -> u64 {
    let backend = Arc::new(SimFs::new(0xbe9c, SimFsOptions::default())) as Arc<dyn StorageBackend>;
    let boot = OakStore::boot_with(
        backend,
        "/bench/single",
        NodeOptions::default().oak,
        NodeOptions::default().store,
    )
    .expect("pristine simulated disk boots");
    let started = std::time::Instant::now();
    for i in 0..reports {
        boot.oak
            .ingest_report_from(Instant(i), &bench_report(i % 11, i), &NoFetch, None);
    }
    started.elapsed().as_nanos() as u64
}

/// Wall-nanoseconds to ingest `reports` through a 3-replica group and
/// settle the replication watermark over them.
fn cluster_ns(reports: u64) -> u64 {
    let mut cluster = MiniCluster::boot(3, 0xc105);
    let (primary, _) = cluster.wait_for_primary();
    let started = std::time::Instant::now();
    for i in 0..reports {
        cluster.ingest(primary, &bench_report(i % 11, i));
        if i % 8 == 0 {
            cluster.tick();
        }
    }
    cluster.settle(primary);
    started.elapsed().as_nanos() as u64
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trials: u64 = if smoke { 10 } else { 40 };
    let reports: u64 = if smoke { 2_000 } else { 20_000 };

    // Failover study.
    let mut windows: Vec<u64> = Vec::new();
    let mut acked_lost = 0u64;
    for trial in 0..trials {
        let result = failover_trial(trial, 64);
        windows.push(result.failover_ms);
        acked_lost += result.acked_lost;
    }
    let min = *windows.iter().min().expect("at least one trial");
    let max = *windows.iter().max().expect("at least one trial");
    let mean = windows.iter().sum::<u64>() as f64 / windows.len() as f64;

    println!("Failover window, 3 replicas, primary killed ({trials} trials)\n");
    println!("{:<28} {:>14}", "metric", "value");
    println!("{:<28} {:>11} ms", "min (sim)", min);
    println!("{:<28} {:>11.1} ms", "mean (sim)", mean);
    println!("{:<28} {:>11} ms", "max (sim)", max);
    println!("{:<28} {:>14}", "acked events lost", acked_lost);

    // Replication tax study.
    let single = single_node_ns(reports);
    let replicated = cluster_ns(reports);
    let single_per = single as f64 / reports as f64;
    let replicated_per = replicated as f64 / reports as f64;
    let tax = replicated_per / single_per - 1.0;

    println!("\nReplication tax, {reports} reports ingested\n");
    println!("{:<28} {:>14}", "path", "ns/report");
    println!("{:<28} {:>14.0}", "single durable node", single_per);
    println!("{:<28} {:>14.0}", "3-replica group", replicated_per);
    println!("{:<28} {:>13.1}%", "replication tax", tax * 100.0);

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "cluster_replication");
    doc.set("smoke", smoke);
    let mut failover = oak_json::Value::object();
    failover.set("trials", trials);
    failover.set("replicas", 3u64);
    failover.set("min_sim_ms", min);
    failover.set("mean_sim_ms", (mean * 10.0).round() / 10.0);
    failover.set("max_sim_ms", max);
    failover.set("acked_events_lost", acked_lost);
    doc.set("failover", failover);
    let mut taxes = oak_json::Value::object();
    taxes.set("reports", reports);
    taxes.set("single_ns_per_report", single_per.round());
    taxes.set("replicated_ns_per_report", replicated_per.round());
    taxes.set("tax_fraction", (tax * 1000.0).round() / 1000.0);
    doc.set("replication_tax", taxes);
    std::fs::write("BENCH_cluster.json", doc.to_string()).expect("write BENCH_cluster.json");
    println!("\nwrote BENCH_cluster.json");

    if acked_lost > 0 {
        eprintln!("FAIL: {acked_lost} acked event(s) missing after failover");
        return ExitCode::FAILURE;
    }
    if mean > FAILOVER_SLO_MS {
        eprintln!("FAIL: mean failover {mean:.1} sim-ms exceeds the {FAILOVER_SLO_MS} ms SLO");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
