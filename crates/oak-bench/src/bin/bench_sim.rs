//! Simulation throughput, measured: how many whole-system fault
//! scenarios per second the deterministic harness executes, what mix of
//! faults a seed range injects, and what fraction of the time goes to
//! invariant checking (the oracle overhead).
//!
//! Prints the tables and records them in `BENCH_sim.json`. Run with
//! `cargo run --release -p oak-bench --bin bench_sim`; pass `--smoke`
//! for the fast CI variant (same shape, fewer seeds).

use oak_sim::{run_scenario, RunStats, Scenario, SimFsOptions};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: u64 = if smoke { 40 } else { 250 };

    // Warm run to fault in code paths, then the measured sweep.
    for seed in 0..seeds / 8 {
        run_scenario(&Scenario::generate(seed), SimFsOptions::default())
            .expect("warmup scenario is clean");
    }

    let mut totals = RunStats::default();
    let mut scheduled_crashes = 0usize;
    let started = std::time::Instant::now();
    for seed in 0..seeds {
        let scenario = Scenario::generate(seed);
        scheduled_crashes += scenario.crash_count();
        let stats = run_scenario(&scenario, SimFsOptions::default())
            .unwrap_or_else(|failure| panic!("bench sweep must be clean: {failure}"));
        totals.steps += stats.steps;
        totals.requests += stats.requests;
        totals.events += stats.events;
        totals.recoveries += stats.recoveries;
        totals.invariant_checks += stats.invariant_checks;
        totals.invariant_ns += stats.invariant_ns;
        totals.fs.crashes += stats.fs.crashes;
        totals.fs.torn_files += stats.fs.torn_files;
        totals.fs.lost_dir_entries += stats.fs.lost_dir_entries;
        totals.fs.garbled_bytes += stats.fs.garbled_bytes;
        totals.fs.failed_ops += stats.fs.failed_ops;
        totals.fetch.served += stats.fetch.served;
        totals.fetch.failed += stats.fetch.failed;
        totals.fetch.hung += stats.fetch.hung;
    }
    let elapsed = started.elapsed();

    let scenarios_per_sec = seeds as f64 / elapsed.as_secs_f64();
    let steps_per_sec = totals.steps as f64 / elapsed.as_secs_f64();
    let oracle_fraction = totals.invariant_ns as f64 / elapsed.as_nanos() as f64;

    println!("Deterministic simulation throughput ({seeds} seeds)\n");
    println!("{:<28} {:>14}", "metric", "value");
    println!("{:<28} {:>14.1}", "scenarios/s", scenarios_per_sec);
    println!("{:<28} {:>14.0}", "steps/s", steps_per_sec);
    println!("{:<28} {:>14}", "recoveries", totals.recoveries);
    println!("{:<28} {:>14}", "invariant checks", totals.invariant_checks);
    println!(
        "{:<28} {:>13.1}%",
        "oracle overhead",
        oracle_fraction * 100.0
    );

    println!("\nInjected faults across the sweep\n");
    println!("{:<28} {:>14}", "fault", "count");
    println!("{:<28} {:>14}", "crashes", totals.fs.crashes);
    println!("{:<28} {:>14}", "torn files", totals.fs.torn_files);
    println!(
        "{:<28} {:>14}",
        "dir entries lost", totals.fs.lost_dir_entries
    );
    println!("{:<28} {:>14}", "bytes garbled", totals.fs.garbled_bytes);
    println!("{:<28} {:>14}", "storage ops failed", totals.fs.failed_ops);
    println!("{:<28} {:>14}", "fetches failed", totals.fetch.failed);
    println!("{:<28} {:>14}", "fetches hung", totals.fetch.hung);

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "deterministic_simulation");
    doc.set("smoke", smoke);
    doc.set("seeds", seeds);
    doc.set(
        "elapsed_ms",
        (elapsed.as_secs_f64() * 1_000.0 * 10.0).round() / 10.0,
    );
    doc.set(
        "scenarios_per_sec",
        (scenarios_per_sec * 10.0).round() / 10.0,
    );
    doc.set("steps_per_sec", (steps_per_sec * 10.0).round() / 10.0);
    doc.set("steps", totals.steps);
    doc.set("requests", totals.requests);
    doc.set("events", totals.events);
    doc.set("scheduled_crashes", scheduled_crashes as u64);
    doc.set("recoveries", totals.recoveries);
    doc.set("invariant_checks", totals.invariant_checks);
    doc.set(
        "oracle_overhead_fraction",
        (oracle_fraction * 1000.0).round() / 1000.0,
    );
    let mut faults = oak_json::Value::object();
    faults.set("crashes", totals.fs.crashes);
    faults.set("torn_files", totals.fs.torn_files);
    faults.set("lost_dir_entries", totals.fs.lost_dir_entries);
    faults.set("garbled_bytes", totals.fs.garbled_bytes);
    faults.set("failed_storage_ops", totals.fs.failed_ops);
    faults.set("fetches_served", totals.fetch.served);
    faults.set("fetches_failed", totals.fetch.failed);
    faults.set("fetches_hung", totals.fetch.hung);
    doc.set("faults", faults);
    std::fs::write("BENCH_sim.json", doc.to_string()).expect("write BENCH_sim.json");
    println!("\nwrote BENCH_sim.json");
}
