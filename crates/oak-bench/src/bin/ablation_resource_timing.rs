//! Ablation — the Resource Timing API client against the paper's
//! modified-browser client.
//!
//! §6, Alternative Mechanisms: "for the resource timing API to function
//! with external objects, which is the purpose of Oak, the external
//! provider must explicitly include an authorizing header. This opt-in
//! behavior means many providers are not visible with the API, rendering
//! Oak less effective. We therefore believe that client modification is
//! the best solution at present." This experiment measures how much of
//! Oak's violator visibility survives when reports only contain
//! `Timing-Allow-Origin` opted-in providers.
//!
//! Run: `cargo run --release -p oak-bench --bin ablation_resource_timing`

use std::collections::BTreeSet;

use oak_client::{Browser, BrowserConfig, ReportingMode, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig};
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let universe = Universe::new(&corpus);
    let t = SimTime::from_hours(13);
    let config = DetectorConfig::default();

    let mut full_violators = 0usize;
    let mut rt_violators = 0usize;
    let mut missed = 0usize;
    let mut entries_full = 0usize;
    let mut entries_rt = 0usize;
    for site in &corpus.sites {
        for &client in corpus.clients.iter().take(5) {
            let mut full = Browser::new(client, "full", BrowserConfig::default());
            let mut rt = Browser::new(
                client,
                "rt",
                BrowserConfig {
                    reporting: ReportingMode::ResourceTimingApi,
                    ..BrowserConfig::default()
                },
            );
            let full_load = full.load_page(&universe, site, &site.html, &[], t);
            let rt_load = rt.load_page(&universe, site, &site.html, &[], t);
            entries_full += full_load.report.entries.len();
            entries_rt += rt_load.report.entries.len();

            let full_set: BTreeSet<String> =
                detect_violators(&PageAnalysis::from_report(&full_load.report), &config)
                    .into_iter()
                    .map(|v| v.ip)
                    .collect();
            let rt_set: BTreeSet<String> =
                detect_violators(&PageAnalysis::from_report(&rt_load.report), &config)
                    .into_iter()
                    .map(|v| v.ip)
                    .collect();
            full_violators += full_set.len();
            rt_violators += rt_set.len();
            missed += full_set.difference(&rt_set).count();
        }
    }

    println!("Ablation — Resource Timing API vs modified-browser client\n");
    println!(
        "report coverage: {:.0}% of fetched objects visible to the API client",
        entries_rt as f64 / entries_full as f64 * 100.0
    );
    println!(
        "violators seen:  modified browser {full_violators}, Resource Timing API {rt_violators}"
    );
    println!(
        "violators MISSED by the API client: {missed} of {full_violators} ({:.0}%)",
        missed as f64 / full_violators.max(1) as f64 * 100.0
    );
    println!(
        "\npaper §6: the opt-in header leaves many providers invisible, \"rendering Oak\n\
         less effective. We therefore believe that client modification is the best\n\
         solution at present.\""
    );
}
