//! Ablation — sensitivity of the `k·MAD` threshold.
//!
//! The paper fixes `k = 2` (§4.2.1). This sweep shows what the choice
//! buys: lower k floods the engine with marginal violators (rule churn),
//! higher k goes blind to genuine regional problems. Detection counts are
//! split by cause using the model's ground truth, something the paper's
//! live testbed could not do.
//!
//! Run: `cargo run --release -p oak-bench --bin ablation_threshold`

use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig};
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 150,
        ..CorpusConfig::default()
    });
    let universe = Universe::new(&corpus);
    let t = SimTime::from_hours(13);

    // Ground truth: a server is "really" troubled when it is impaired at
    // t, single-homed far from the client, or Poor quality.
    let really_bad = |ip: &str, client: oak_net::ClientId| -> bool {
        let Some(addr) = oak_net::IpAddr::parse(ip) else {
            return false;
        };
        let Some(server) = corpus.world.server_at(addr) else {
            return false;
        };
        let creg = corpus.world.client(client).region;
        let impaired = corpus
            .world
            .impairments()
            .iter()
            .any(|i| i.server == server.id && i.latency_factor(t, creg) > 1.0);
        impaired
            || (!server.distributed && server.region != creg)
            || server.quality == oak_net::Quality::Poor
    };

    println!("Ablation — k·MAD threshold sweep (150 sites × 8 clients)\n");
    println!(
        "{:>5}  {:>10} {:>12} {:>12} {:>10}",
        "k", "flags/load", "true-pos", "false-pos", "precision"
    );
    for k in [1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let config = DetectorConfig {
            threshold: k,
            ..DetectorConfig::default()
        };
        let mut flags = 0usize;
        let mut true_pos = 0usize;
        let mut loads = 0usize;
        for site in &corpus.sites {
            let origin_ip = corpus.world.ip_of(site.origin).to_string();
            for &client in corpus.clients.iter().take(8) {
                let mut browser = Browser::new(client, "abl", BrowserConfig::default());
                let load = browser.load_page(&universe, site, &site.html, &[], t);
                let analysis = PageAnalysis::from_report(&load.report);
                loads += 1;
                for v in detect_violators(&analysis, &config) {
                    if v.ip == origin_ip {
                        continue;
                    }
                    flags += 1;
                    true_pos += usize::from(really_bad(&v.ip, client));
                }
            }
        }
        let false_pos = flags - true_pos;
        println!(
            "{:>5.1}  {:>10.2} {:>12} {:>12} {:>9.0}%",
            k,
            flags as f64 / loads as f64,
            true_pos,
            false_pos,
            true_pos as f64 / flags.max(1) as f64 * 100.0
        );
    }
    println!(
        "\nprecision climbs steeply up to the paper's k = 2 while recall barely\n\
         moves — the marginal flags shed below k = 2 are almost all noise. Larger\n\
         k keeps shedding false positives but delays detection of mild injected\n\
         delays (Fig. 9's onsets shift right with k)."
    );
}
