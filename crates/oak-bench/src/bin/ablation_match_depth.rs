//! Ablation — how much of Oak's *acting* ability each matching level buys.
//!
//! Fig. 8 measures the static match-rate of the three connection-
//! dependency levels; this experiment measures the dynamic consequence:
//! run the same client traffic with `OakConfig::max_match_level` capped
//! at each level and count how many rule activations actually happen.
//! A violator Oak cannot tie to a rule is a violator Oak cannot route
//! around.
//!
//! Run: `cargo run --release -p oak-bench --bin ablation_match_depth`

use oak_client::SimSession;
use oak_core::engine::{Oak, OakConfig};
use oak_core::matching::MatchLevel;
use oak_core::rule::Rule;
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig, Inclusion, Site};

/// Builds §4.1-style *snippet* rules for a site: the default text is the
/// exact HTML block that references the provider (so each rule is
/// matchable at precisely the level its inclusion mechanism allows —
/// unlike the URL-prefix rules of the §5.3 experiments, which always
/// carry the domain as text).
fn snippet_rules(site: &Site) -> Vec<Rule> {
    let mut rules = Vec::new();
    let mut covered = std::collections::BTreeSet::new();
    for object in site.objects.iter().filter(|o| o.external) {
        if !covered.insert(object.domain.clone()) {
            continue;
        }
        let default_text = match (&object.snippet, &object.inclusion) {
            (Some(snippet), _) => snippet.clone(),
            // Hidden providers: the only page text that *causes* the
            // connection is the loader tag.
            (None, Inclusion::ExternalJs { loader_url }) => {
                format!(r#"<script src="{loader_url}"></script>"#)
            }
            // Dynamic providers: nothing on the page causes them; no
            // rule can be written (the Fig. 8 residue).
            (None, _) => continue,
        };
        // Nested-mirror form: `http://<host>/<path>` becomes
        // `http://replica-na.example/<host>/<path>`; inline scripts that
        // build URLs as `"http://" + h + p` get the same prefix and
        // produce the same nested shape at runtime.
        let alternative = default_text.replace("http://", "http://replica-na.example/");
        if alternative == default_text || alternative.contains(&default_text) {
            continue;
        }
        rules.push(Rule::replace_identical(default_text, [alternative]));
    }
    rules
}

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 40,
        seed: 4242,
        providers: 60,
        persistent_impairment_rate: 0.3,
        ..CorpusConfig::default()
    });

    println!("Ablation — activations under capped matching depth\n");
    println!(
        "{:<24} {:>12} {:>14}",
        "max level", "activations", "users affected"
    );
    for level in MatchLevel::ALL {
        let oak = Oak::new(OakConfig {
            max_match_level: level,
            ..OakConfig::default()
        });
        for site in &corpus.sites {
            for rule in snippet_rules(site) {
                let _ = oak.add_rule(rule);
            }
        }
        let mut session = SimSession::new(&corpus, oak);
        for round in 0..3u64 {
            for site_index in 0..corpus.sites.len() {
                for &client in corpus.clients.iter().take(10) {
                    session.visit(site_index, client, SimTime::from_minutes(round * 30));
                }
            }
        }
        let log = session.oak.log();
        let activations = log
            .iter()
            .filter(|e| matches!(e.action, oak_core::engine::LogAction::Activated { .. }))
            .count();
        let users: std::collections::BTreeSet<&str> = log.iter().map(|e| e.user.as_str()).collect();
        println!(
            "{:<24} {:>12} {:>14}",
            format!("{level:?}"),
            activations,
            users.len()
        );
    }
    println!(
        "\neach added level converts more detected violators into actionable rule\n\
         activations — the dynamic counterpart of Fig. 8's 42/60/81% match rates"
    );
}
