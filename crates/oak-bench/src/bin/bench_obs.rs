//! Observability tax, measured: what the always-on instrumentation
//! (stage histograms + counters, spans inert) costs on the report-ingest
//! hot path, what full span tracing adds on top, and how long one
//! `/oak/metrics` registry scrape takes.
//!
//! Prints the table and records it in `BENCH_obs.json`; the always-on
//! tax must stay under 5% or the run fails. Run with
//! `cargo run --release -p oak-bench --bin bench_obs`; pass `--smoke`
//! for the fast CI variant (same shape, fewer reports).

use std::sync::Arc;

use oak_core::engine::{Oak, OakConfig};
use oak_core::matching::NoFetch;
use oak_core::obs::CoreMetrics;
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::Instant;
use oak_obs::{wall_clock, Registry, Tracer};

/// Users in the closed pool; reports round-robin over them.
const USERS: usize = 64;

fn report(user: usize, violating: bool) -> PerfReport {
    let mut r = PerfReport::new(format!("u-{user}"), "/p");
    if violating {
        r.push(ObjectTiming::new(
            "http://cdn0.example/lib.js",
            "10.0.0.1",
            30_000,
            900.0,
        ));
    }
    for good in 0..4u64 {
        r.push(ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 5.0,
        ));
    }
    r
}

fn engine() -> Oak {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::remove(r#"<script src="http://cdn0.example/lib.js">"#))
        .expect("valid rule");
    oak
}

/// Nanoseconds per ingest for one full pass over `reports`.
fn measure(oak: &Oak, reports: &[PerfReport], tracer: Option<&Arc<Tracer>>) -> f64 {
    let started = std::time::Instant::now();
    for (i, report) in reports.iter().enumerate() {
        let _trace = tracer.map(|t| t.begin("bench ingest"));
        oak.ingest_report_from(Instant(i as u64), report, &NoFetch, None);
    }
    started.elapsed().as_nanos() as f64 / reports.len() as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reports_per_trial: usize = if smoke { 20_000 } else { 100_000 };
    let trials = 5usize;

    let reports: Vec<PerfReport> = (0..reports_per_trial)
        .map(|i| report(i % USERS, i % 7 == 0))
        .collect();

    // Fresh engines per configuration; interleaved trials so drift hits
    // every configuration equally; min-of-trials defeats noise spikes.
    let registry = Arc::new(Registry::new());
    let metrics = CoreMetrics::new(&registry, wall_clock());
    let tracer = Tracer::new(wall_clock(), 256, 0);

    let plain_oak = engine();
    let mut obs_oak = engine();
    obs_oak.set_obs(Arc::clone(&metrics));
    let mut traced_oak = engine();
    traced_oak.set_obs(Arc::clone(&metrics));

    // Warm every path once before measuring.
    measure(&plain_oak, &reports[..reports.len() / 10], None);
    measure(&obs_oak, &reports[..reports.len() / 10], None);
    measure(&traced_oak, &reports[..reports.len() / 10], Some(&tracer));

    let mut plain = f64::INFINITY;
    let mut with_obs = f64::INFINITY;
    let mut traced = f64::INFINITY;
    for _ in 0..trials {
        plain = plain.min(measure(&plain_oak, &reports, None));
        with_obs = with_obs.min(measure(&obs_oak, &reports, None));
        traced = traced.min(measure(&traced_oak, &reports, Some(&tracer)));
    }

    let tax = (with_obs - plain) / plain;
    let traced_tax = (traced - plain) / plain;

    // One registry scrape (families snapshot + exposition encode).
    let scrape_started = std::time::Instant::now();
    let exposition = oak_obs::encode(registry.families());
    let scrape_us = scrape_started.elapsed().as_nanos() as f64 / 1_000.0;
    let families = exposition
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .count();

    println!("Observability tax on report ingest ({reports_per_trial} reports × {trials} trials, best)\n");
    println!("{:<34} {:>12}", "configuration", "ns/ingest");
    println!("{:<34} {:>12.0}", "bare engine", plain);
    println!(
        "{:<34} {:>12.0}",
        "histograms+counters (spans inert)", with_obs
    );
    println!("{:<34} {:>12.0}", "full span tracing", traced);
    println!();
    println!("{:<34} {:>11.2}%", "always-on tax", tax * 100.0);
    println!("{:<34} {:>11.2}%", "tracing tax", traced_tax * 100.0);
    println!("{:<34} {:>10.1}us", "registry scrape", scrape_us);
    println!("{:<34} {:>12}", "families scraped", families);

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "observability_tax");
    doc.set("smoke", smoke);
    doc.set("reports_per_trial", reports_per_trial as u64);
    doc.set("trials", trials as u64);
    doc.set("plain_ns_per_ingest", (plain * 10.0).round() / 10.0);
    doc.set("obs_ns_per_ingest", (with_obs * 10.0).round() / 10.0);
    doc.set("traced_ns_per_ingest", (traced * 10.0).round() / 10.0);
    doc.set("tax_fraction", (tax * 10_000.0).round() / 10_000.0);
    doc.set(
        "traced_tax_fraction",
        (traced_tax * 10_000.0).round() / 10_000.0,
    );
    doc.set("scrape_us", (scrape_us * 10.0).round() / 10.0);
    doc.set("families", families as u64);
    std::fs::write("BENCH_obs.json", doc.to_string()).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");

    assert!(
        tax < 0.05,
        "always-on instrumentation tax {:.2}% breaches the 5% budget",
        tax * 100.0
    );
}
