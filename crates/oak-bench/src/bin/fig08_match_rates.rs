//! Fig. 8 — CDF of the fraction of contacted external servers that can be
//! matched to a whole-index rule, at the three matching levels.
//!
//! Paper shape (§4.2.2): medians ≈ 42 % (strict includes), 60 % (+ text
//! matches), 81 % (+ first layer of external JavaScript); the remainder
//! are dynamically-chosen servers no static analysis can tie to the page.
//!
//! Run: `cargo run --release -p oak-bench --bin fig08_match_rates`

use oak_bench::matchrate::site_match_rates;
use oak_bench::support::{ascii_cdf_plot, median, print_cdf_grid};
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());

    let mut direct = Vec::new();
    let mut text = Vec::new();
    let mut external_js = Vec::new();
    for site in &corpus.sites {
        let rates = site_match_rates(&corpus, site);
        if rates.external_servers == 0 {
            continue;
        }
        direct.push(rates.direct);
        text.push(rates.text);
        external_js.push(rates.external_js);
    }

    println!("Fig. 8 — fraction of external servers matched, whole index as one rule\n");
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    print_cdf_grid("level 1: strict includes", &direct, &grid);
    println!();
    print_cdf_grid("level 2: + text matches", &text, &grid);
    println!();
    print_cdf_grid("level 3: + external JavaScript", &external_js, &grid);
    println!();
    print!(
        "{}",
        ascii_cdf_plot(
            "CDF of fraction of servers matched (compare to paper Fig. 8)",
            &[
                ("strict includes", &direct),
                ("+ text match", &text),
                ("+ external JS", &external_js),
            ],
            &grid,
        )
    );
    println!(
        "\npaper medians: 0.42 / 0.60 / 0.81\nmeasured medians: {:.2} / {:.2} / {:.2}",
        median(&direct),
        median(&text),
        median(&external_js),
    );
}
