//! Fig. 1 — CDF of the fraction of objects with non-origin hostnames,
//! Alexa Top 500 analog.
//!
//! Paper shape: "in the median case, 75% of the objects loaded from a
//! page come from external hosts" (§2).
//!
//! Run: `cargo run --release -p oak-bench --bin fig01_external_fraction`

use oak_bench::support::{median, print_cdf, print_cdf_grid};
use oak_client::{Browser, BrowserConfig, Universe};
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let universe = Universe::new(&corpus);
    let client = corpus.clients[0];

    // Measure through the pipeline: load each page, classify each fetch
    // by the site's own object table (sub-domains of the origin are not
    // external, §2).
    let mut fractions = Vec::with_capacity(corpus.sites.len());
    for site in &corpus.sites {
        let mut browser = Browser::new(client, "fig1", BrowserConfig::default());
        let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(13));
        let mut external = 0usize;
        let mut total = 0usize;
        for fetch in &load.fetches {
            let Some(object) = site.objects.iter().find(|o| o.url == fetch.url) else {
                continue;
            };
            total += 1;
            external += usize::from(object.external);
        }
        if total > 0 {
            fractions.push(external as f64 / total as f64);
        }
    }

    println!("Fig. 1 — fraction of page objects loaded from external hosts\n");
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    print_cdf_grid("external-object fraction", &fractions, &grid);
    println!();
    print_cdf("external fraction", &fractions);
    println!(
        "\npaper: median ≈ 0.75   measured: median = {:.2}",
        median(&fractions)
    );
}
