//! Contended engine throughput: lock striping vs a single mutex.
//!
//! Drives K threads (K ∈ {1, 2, 4}) of disjoint-user ingest+serve pairs
//! against (a) the striped engine and (b) the same engine behind one big
//! mutex — the pre-striping design. Prints the scaling table and records
//! it in `BENCH_throughput.json` (with the detected core count) for the
//! acceptance gate: the striped engine should clear 2× the baseline's
//! throughput at 4 threads while staying within a few percent at 1
//! thread. The gate only arms on hosts with >= 2 cores — a 1-core
//! container time-slices the "parallel" runs, making the ratio noise.
//!
//! Each configuration is warmed with a full-length run (the original
//! quarter-length warmup left the 2-thread row half-cold, producing
//! sub-1.0 "speedups" that were really first-touch page faults), then
//! measured as the best of three trials — the standard defense against
//! scheduler noise when the quantity of interest is the machine's
//! capability, not its average contention with unrelated processes.
//! Allocation pressure per op (via [`oak_bench::alloc`]) is sampled on a
//! single-threaded run where attribution is exact.
//!
//! Run with `cargo run --release -p oak-bench --bin bench_throughput`.

use oak_bench::{alloc, contention};

#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Ops per thread per timed run; large enough that thread start/stop is
/// noise, small enough to finish in seconds. Pinned per thread so every
/// trial of a configuration does identical work.
const OPS_PER_THREAD: u64 = 300;

/// Timed trials per configuration; the fastest is recorded.
const TRIALS: usize = 3;

fn throughput(threads: usize, duration: std::time::Duration) -> f64 {
    (threads as u64 * OPS_PER_THREAD) as f64 / duration.as_secs_f64()
}

/// Full-length warmup, then the best (shortest) of [`TRIALS`] runs.
fn best_of(run: impl Fn(usize, u64) -> std::time::Duration, threads: usize) -> std::time::Duration {
    run(threads, OPS_PER_THREAD);
    (0..TRIALS)
        .map(|_| run(threads, OPS_PER_THREAD))
        .min()
        .expect("at least one trial")
}

fn main() {
    // The contention story only exists with real parallelism: on a
    // 1-core box the "speedup" column measures scheduler round-robin,
    // not striping, so the regression gate below only arms when the
    // host can actually run two threads at once.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Single-threaded allocation pressure per ingest+serve pair, before
    // any timed runs so the counters see a steady-state engine only.
    let (allocs_per_op, bytes_per_op) = {
        contention::sharded_duration(1, OPS_PER_THREAD); // steady state
        let start = alloc::snapshot();
        contention::sharded_duration(1, OPS_PER_THREAD);
        alloc::per_op(start, alloc::snapshot(), OPS_PER_THREAD)
    };

    println!("Contended ingest+serve throughput (ops/s, disjoint users)\n");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "threads", "sharded", "single-mutex", "speedup"
    );

    let mut rows = oak_json::Value::array();
    let mut speedup_at_4 = 0.0;
    for &threads in &[1usize, 2, 4] {
        let sharded = throughput(threads, best_of(contention::sharded_duration, threads));
        let single = throughput(threads, best_of(contention::single_mutex_duration, threads));
        let speedup = sharded / single;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        println!("{threads:<10} {sharded:>14.0} {single:>14.0} {speedup:>9.2}x");
        let mut row = oak_json::Value::object();
        row.set("threads", threads);
        row.set("sharded_ops_per_sec", (sharded * 10.0).round() / 10.0);
        row.set("single_mutex_ops_per_sec", (single * 10.0).round() / 10.0);
        row.set("speedup", (speedup * 100.0).round() / 100.0);
        rows.push(row);
    }
    println!("\nallocations/op (1 thread): {allocs_per_op:.1} ({bytes_per_op:.0} bytes)");

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "engine_contended_ingest_serve");
    doc.set("cores", cores);
    doc.set("ops_per_thread", OPS_PER_THREAD);
    doc.set("trials", TRIALS);
    doc.set("rule_count", contention::RULE_COUNT);
    doc.set("server_count", contention::SERVER_COUNT);
    doc.set(
        "allocs_per_op_1_thread",
        (allocs_per_op * 10.0).round() / 10.0,
    );
    doc.set("bytes_per_op_1_thread", bytes_per_op.round());
    doc.set("rows", rows);
    doc.set(
        "speedup_at_4_threads",
        (speedup_at_4 * 100.0).round() / 100.0,
    );
    std::fs::write("BENCH_throughput.json", doc.to_string()).expect("write BENCH_throughput.json");
    println!("\nwrote BENCH_throughput.json");

    // Contention regression gate: with >= 2 real cores, striping must
    // not be slower than the single mutex at 4 threads (10% tolerance
    // for shared-runner noise). On 1 core the number is meaningless —
    // record it, say so, and pass.
    if cores >= 2 {
        if speedup_at_4 < 0.9 {
            eprintln!(
                "contention gate failed: sharded/single-mutex speedup {speedup_at_4:.2}x \
at 4 threads on {cores} cores (must be >= 0.9x)"
            );
            std::process::exit(1);
        }
        println!("contention gate: {speedup_at_4:.2}x at 4 threads on {cores} cores -> pass");
    } else {
        println!("contention gate skipped: only {cores} core available");
    }
}
