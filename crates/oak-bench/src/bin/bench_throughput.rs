//! Contended engine throughput: lock striping vs a single mutex.
//!
//! Drives K threads (K ∈ {1, 2, 4}) of disjoint-user ingest+serve pairs
//! against (a) the striped engine and (b) the same engine behind one big
//! mutex — the pre-striping design. Prints the scaling table and records
//! it in `BENCH_throughput.json` for the acceptance gate: the striped
//! engine should clear 2× the baseline's throughput at 4 threads while
//! staying within a few percent at 1 thread.
//!
//! Run with `cargo run --release -p oak-bench --bin bench_throughput`.

use oak_bench::contention;

/// Ops per thread per timed run; large enough that thread start/stop is
/// noise, small enough to finish in seconds.
const OPS_PER_THREAD: u64 = 300;

fn throughput(threads: usize, duration: std::time::Duration) -> f64 {
    (threads as u64 * OPS_PER_THREAD) as f64 / duration.as_secs_f64()
}

fn main() {
    println!("Contended ingest+serve throughput (ops/s, disjoint users)\n");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "threads", "sharded", "single-mutex", "speedup"
    );

    let mut rows = oak_json::Value::array();
    let mut speedup_at_4 = 0.0;
    for &threads in &[1usize, 2, 4] {
        // Warm run to fault in code paths, then the measured run.
        contention::sharded_duration(threads, OPS_PER_THREAD / 4);
        contention::single_mutex_duration(threads, OPS_PER_THREAD / 4);
        let sharded = throughput(
            threads,
            contention::sharded_duration(threads, OPS_PER_THREAD),
        );
        let single = throughput(
            threads,
            contention::single_mutex_duration(threads, OPS_PER_THREAD),
        );
        let speedup = sharded / single;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        println!("{threads:<10} {sharded:>14.0} {single:>14.0} {speedup:>9.2}x");
        let mut row = oak_json::Value::object();
        row.set("threads", threads);
        row.set("sharded_ops_per_sec", (sharded * 10.0).round() / 10.0);
        row.set("single_mutex_ops_per_sec", (single * 10.0).round() / 10.0);
        row.set("speedup", (speedup * 100.0).round() / 100.0);
        rows.push(row);
    }

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "engine_contended_ingest_serve");
    doc.set("ops_per_thread", OPS_PER_THREAD);
    doc.set("rule_count", contention::RULE_COUNT);
    doc.set("server_count", contention::SERVER_COUNT);
    doc.set("rows", rows);
    doc.set(
        "speedup_at_4_threads",
        (speedup_at_4 * 100.0).round() / 100.0,
    );
    std::fs::write("BENCH_throughput.json", doc.to_string()).expect("write BENCH_throughput.json");
    println!("\nwrote BENCH_throughput.json");
}
