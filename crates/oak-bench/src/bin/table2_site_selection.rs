//! Table 2 — the H1/H2 sites selected for the replicated-sites
//! experiment.
//!
//! §5.3: H1 ("low-expectation") sites have more than 5 but fewer than 15
//! external hosts; H2 ("high-expectation") sites have more than 15; both
//! sets take the 5 sites with the highest rule-activation match rate.
//!
//! Run: `cargo run --release -p oak-bench --bin table2_site_selection`

use oak_bench::matchrate::site_match_rates;
use oak_bench::replicated::select_sites;
use oak_bench::support::print_table;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let (h1, h2) = select_sites(&corpus);

    let describe = |indices: &[usize]| -> Vec<(String, String)> {
        indices
            .iter()
            .map(|&i| {
                let site = &corpus.sites[i];
                let rates = site_match_rates(&corpus, site);
                (
                    site.host.clone(),
                    format!(
                        "{} external hosts, match rate {:.0}%",
                        rates.external_servers,
                        rates.external_js * 100.0
                    ),
                )
            })
            .collect()
    };

    print_table(
        "Table 2 — H1 sites (5 < external hosts < 15)",
        ("Site", "Profile"),
        &describe(&h1),
    );
    print_table(
        "Table 2 — H2 sites (external hosts > 15)",
        ("Site", "Profile"),
        &describe(&h2),
    );
    println!(
        "\npaper's analogs: H1 = youtube/msn/wordpress/naver/adcash,\n\
         H2 = ok.ru/flipkart/qunar/hulu/xhamster — selection criteria reproduced"
    );
}
