//! Table 1 — the most frequently seen outlier domains and their
//! categories.
//!
//! Paper shape: "Advertisements, social networking, and analytics
//! dominate" (§2.1).
//!
//! Run: `cargo run --release -p oak-bench --bin table1_outlier_categories`

use std::collections::BTreeMap;

use oak_bench::support::print_table;
use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig};
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let universe = Universe::new(&corpus);
    let config = DetectorConfig::default();
    let t = SimTime::from_hours(13);

    // Count violation events per domain across all (site, client) loads.
    let mut hits: BTreeMap<String, usize> = BTreeMap::new();
    for site in &corpus.sites {
        let origin_ip = corpus.world.ip_of(site.origin).to_string();
        for &client in &corpus.clients {
            let mut browser = Browser::new(client, "t1", BrowserConfig::default());
            let load = browser.load_page(&universe, site, &site.html, &[], t);
            let analysis = PageAnalysis::from_report(&load.report);
            for v in detect_violators(&analysis, &config) {
                if v.ip == origin_ip {
                    continue; // external servers only, as in the paper
                }
                for domain in v.domains {
                    *hits.entry(domain).or_insert(0) += 1;
                }
            }
        }
    }

    let mut ranked: Vec<(String, usize)> = hits.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let rows: Vec<(String, String)> = ranked
        .iter()
        .take(10)
        .map(|(domain, count)| {
            let category = corpus
                .provider_by_domain(domain)
                .map(|p| p.category.label())
                .unwrap_or("Origin");
            (format!("{domain} ({count} hits)"), category.to_owned())
        })
        .collect();
    print_table(
        "Table 1 — most frequently seen outliers",
        ("Site", "Category"),
        &rows,
    );

    // Category share over all violation events.
    let mut by_category: BTreeMap<&str, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (domain, count) in &ranked {
        let category = corpus
            .provider_by_domain(domain)
            .map(|p| p.category.label())
            .unwrap_or("Origin");
        *by_category.entry(category).or_insert(0) += count;
        total += count;
    }
    println!("\ncategory share of all outlier observations:");
    let mut shares: Vec<(&str, usize)> = by_category.into_iter().collect();
    shares.sort_by_key(|s| std::cmp::Reverse(s.1));
    for (category, count) in shares {
        println!(
            "  {:<20} {:>5.1}%",
            category,
            count as f64 / total as f64 * 100.0
        );
    }
    println!("\npaper: ads/analytics and social networking dominate the outlier census");
}
