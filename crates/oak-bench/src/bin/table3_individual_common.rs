//! Table 3 — example provider domains from individually-activated rules
//! (< 18 % of a site's activations) and commonly-activated rules (> 18 %).
//!
//! Paper shape (§5.3): individual rules point at externally hosted site
//! assets with regional footprints; common rules are dominated by ad and
//! font providers many clients see as slow.
//!
//! Run: `cargo run --release -p oak-bench --bin table3_individual_common`

use oak_bench::replicated::run;
use oak_bench::support::print_table;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let results = run(&corpus);

    let mut individual: Vec<(String, f64)> = Vec::new();
    let mut common: Vec<(String, f64)> = Vec::new();
    for ((site, domain), &count) in &results.rule_activations {
        let share = count as f64 / results.site_activations[site] as f64;
        let entry = (domain.clone(), share);
        if share > 0.18 {
            common.push(entry);
        } else {
            individual.push(entry);
        }
    }
    individual.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    common.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let fmt = |list: &[(String, f64)]| -> Vec<(String, String)> {
        list.iter()
            .take(5)
            .map(|(domain, share)| {
                let category = corpus
                    .provider_by_domain(domain)
                    .map(|p| p.category.label())
                    .unwrap_or("?");
                (
                    domain.clone(),
                    format!("{category}, {:.0}% of activations", share * 100.0),
                )
            })
            .collect()
    };

    print_table(
        "Table 3 — individually-activated rules (< 18%)",
        ("Domain", "Category / share"),
        &fmt(&individual),
    );
    print_table(
        "Table 3 — commonly-activated rules (> 18%)",
        ("Domain", "Category / share"),
        &fmt(&common),
    );
    println!(
        "\npaper: individual = regional asset hosts (vdp.mycdn.me, img1.qunarzz.com, …);\n\
         common = fonts.googleapis.com (88%), insights.hotjar.com (63%), ad networks"
    );
}
