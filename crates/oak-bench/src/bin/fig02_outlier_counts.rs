//! Fig. 2 — CDF of the number of performance outliers per site, observed
//! from 25 vantage points.
//!
//! Paper shape: "over 60% of sites in this set feature at least a single
//! performance outlier, and 20% of sites feature at least 4" (§2).
//!
//! Run: `cargo run --release -p oak-bench --bin fig02_outlier_counts`

use std::collections::BTreeMap;

use oak_bench::support::{fraction_at_least, print_cdf_grid};
use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig};
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let universe = Universe::new(&corpus);
    let config = DetectorConfig::default();
    // Mid-day UTC on day zero: providers across the globe sit at various
    // points of their diurnal curves, as in a live crawl.
    let t = SimTime::from_hours(13);

    // A server counts as a site outlier when flagged from at least
    // QUORUM of the 25 vantage points: single-client blips are that
    // client's problem (Oak handles them per user); the site-level census
    // wants repeatable offenders.
    const QUORUM: usize = 5;
    let mut counts = Vec::with_capacity(corpus.sites.len());
    for site in &corpus.sites {
        // The census is about *external* servers (every Table 1 outlier
        // is third-party); the origin participates in the statistics but
        // is not counted — a far-away origin is the site's own business.
        let origin_ip = corpus.world.ip_of(site.origin).to_string();
        let mut flagged: BTreeMap<String, usize> = BTreeMap::new();
        for &client in &corpus.clients {
            let mut browser = Browser::new(client, "fig2", BrowserConfig::default());
            let load = browser.load_page(&universe, site, &site.html, &[], t);
            let analysis = PageAnalysis::from_report(&load.report);
            for v in detect_violators(&analysis, &config) {
                if v.ip != origin_ip {
                    *flagged.entry(v.ip).or_insert(0) += 1;
                }
            }
        }
        let outliers = flagged.values().filter(|&&n| n >= QUORUM).count();
        counts.push(outliers as f64);
    }

    println!("Fig. 2 — outliers per site across 25 vantage points\n");
    let grid: Vec<f64> = (0..=14).map(|i| i as f64).collect();
    print_cdf_grid("outliers per site", &counts, &grid);
    println!(
        "\npaper: ≥1 outlier on >60% of sites, ≥4 on ~20%\nmeasured: ≥1 on {:.0}% of sites, ≥4 on {:.0}%",
        fraction_at_least(&counts, 1.0) * 100.0,
        fraction_at_least(&counts, 4.0) * 100.0,
    );
}
