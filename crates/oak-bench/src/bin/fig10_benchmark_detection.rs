//! Fig. 10 — CDF of the Min/Median PLT ratio for Oak and default loads.
//!
//! The §5.2 benchmark: 6 object sets (30/50/100/500 KB), five external
//! default servers (two of them bad, as the paper found on PlanetLab),
//! five alternates, 25 clients reloading every 30 minutes for 72 hours.
//!
//! Paper shape: Oak lifts the median Min/Median ratio from ≈ 0.3 to
//! ≈ 0.7 and pushes 90 % of loads above 0.5 — i.e. with Oak, typical
//! loads sit near the best observed load instead of far above it.
//!
//! Run: `cargo run --release -p oak-bench --bin fig10_benchmark_detection`

use oak_bench::benchworld::{benchmark_rules, benchmark_world};
use oak_bench::support::{ascii_cdf_plot, fraction_at_least, median, print_cdf_grid};
use oak_core::engine::{Oak, OakConfig};
use oak_core::stats;
use oak_net::SimTime;

const HOURS: u64 = 72;
const INTERVAL_MIN: u64 = 30;

fn main() {
    let (corpus, clients) = benchmark_world(0x10b);
    let oak = Oak::new(OakConfig::default());
    for rule in benchmark_rules() {
        oak.add_rule(rule).expect("bench rules validate");
    }
    let mut session = oak_client::SimSession::new(&corpus, oak);

    // PLT series per client per arm.
    let loads_per_day = 24 * 60 / INTERVAL_MIN;
    let mut oak_ratios = Vec::new();
    let mut default_ratios = Vec::new();
    for &client in &clients {
        let mut oak_plts = Vec::new();
        let mut default_plts = Vec::new();
        let mut slot = 0u64;
        while slot * INTERVAL_MIN < HOURS * 60 {
            let t = SimTime::from_minutes(slot * INTERVAL_MIN);
            let (load, _) = session.visit(0, client, t);
            oak_plts.push(load.plt_ms);
            default_plts.push(session.visit_default(0, client, t).plt_ms);
            slot += 1;
        }
        // One Min/Median sample per (client, day) per arm.
        for day in 0..(HOURS / 24) {
            let lo = (day * loads_per_day) as usize;
            let hi = ((day + 1) * loads_per_day) as usize;
            for (series, out) in [
                (&oak_plts, &mut oak_ratios),
                (&default_plts, &mut default_ratios),
            ] {
                let window = &series[lo..hi.min(series.len())];
                let min = window.iter().cloned().fold(f64::INFINITY, f64::min);
                if let Some(med) = stats::median(window) {
                    out.push(min / med);
                }
            }
        }
    }

    println!("Fig. 10 — Min/Median PLT ratio, per (client, day)\n");
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    print_cdf_grid("default", &default_ratios, &grid);
    println!();
    print_cdf_grid("oak", &oak_ratios, &grid);
    println!();
    print!(
        "{}",
        ascii_cdf_plot(
            "CDF of Min/Median PLT ratio (compare to paper Fig. 10)",
            &[("default", &default_ratios), ("oak", &oak_ratios)],
            &grid,
        )
    );
    println!(
        "\npaper: medians ≈ 0.3 (default) → ≈ 0.7 (Oak); 90% of Oak loads above 0.5\n\
         measured: medians {:.2} → {:.2}; Oak loads above 0.5: {:.0}%",
        median(&default_ratios),
        median(&oak_ratios),
        fraction_at_least(&oak_ratios, 0.5) * 100.0,
    );
}
