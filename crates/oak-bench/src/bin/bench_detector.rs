//! Detector-policy head-to-head: the paper's global MAD test vs the
//! per-device-cohort detector, on device-mixed, ad-chain-heavy workloads.
//!
//! The paper's testbed measured from PlanetLab nodes — uniform hardware —
//! so its within-report MAD test never met the confound real client
//! populations carry: a low-end phone pays per-script CPU and per-fetch
//! radio costs that inflate every ad-chain object, and the global test
//! then blames healthy ad servers for the client's own silicon. This
//! study drives identical page loads through two real engines (one per
//! `DetectorPolicy`) and scores both against the simulator's ground
//! truth, which a live testbed cannot know.
//!
//! Two mixes:
//!
//! - `desktop` — the plain corpus on uniform desktop hardware; the
//!   policies should essentially agree (cohort may abstain while cold).
//! - `mobile_heavy` — an ad-chain-heavy corpus (60 % of sites route ads
//!   through 4-hop loader chains) on a 20/45/35 desktop/mid/low-end
//!   device split; the adversarial case the cohort policy exists for.
//!
//! Scoring is per (report, server) observation: a *flag* on a server the
//! model says is healthy is a false positive; a truly-bad server in the
//! report that goes unflagged is a false negative. Ground truth follows
//! `ablation_threshold`: impaired at t for the client's region,
//! single-homed far from the client, or Poor quality.
//!
//! Prints both tables, writes `BENCH_detector.json`, and exits nonzero
//! unless every gate holds:
//!
//! 1. cohort flags ⊆ global flags on every report (the construction);
//! 2. on `mobile_heavy`, the global policy produces false positives
//!    (the confound is real) and the cohort FP rate is strictly below
//!    the global FP rate (the policy earns its keep).
//!
//! Run: `cargo run --release -p oak-bench --bin bench_detector`
//! (`-- --smoke` for the quick CI mode).

use std::process::ExitCode;

use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::DetectorPolicy;
use oak_core::engine::{Oak, OakConfig};
use oak_core::Instant;
use oak_net::{ClientId, DeviceProfile, SimTime};
use oak_webgen::{Corpus, CorpusConfig};

/// Confusion counts over (report, server) observations.
#[derive(Clone, Copy, Default)]
struct Score {
    tp: u64,
    fp: u64,
    fn_: u64,
    tn: u64,
}

impl Score {
    fn flags(&self) -> u64 {
        self.tp + self.fp
    }

    /// False-positive rate over healthy observations.
    fn fp_rate(&self) -> f64 {
        self.fp as f64 / (self.fp + self.tn).max(1) as f64
    }

    /// Miss rate over truly-bad observations.
    fn fn_rate(&self) -> f64 {
        self.fn_ as f64 / (self.fn_ + self.tp).max(1) as f64
    }
}

struct MixResult {
    name: &'static str,
    loads: u64,
    global: Score,
    cohort: Score,
    /// Reports where the cohort policy flagged a server the global
    /// policy did not — must be zero by construction.
    subset_violations: u64,
}

/// The device split for the mobile-heavy mix: 20 % desktop, 45 %
/// mid-mobile, 35 % low-end, by client index.
fn mobile_mix_device(index: usize) -> DeviceProfile {
    match index % 20 {
        0..=3 => DeviceProfile::DESKTOP,
        4..=12 => DeviceProfile::MID_MOBILE,
        _ => DeviceProfile::LOW_END_MOBILE,
    }
}

fn run_mix(
    name: &'static str,
    corpus: &Corpus,
    device_for: impl Fn(usize) -> DeviceProfile,
    rounds: u64,
) -> MixResult {
    let universe = Universe::new(corpus);
    let global = Oak::new(OakConfig::default());
    let cohort = Oak::new(OakConfig {
        detector_policy: DetectorPolicy::Cohort,
        ..OakConfig::default()
    });

    let mut browsers: Vec<Browser> = corpus
        .clients
        .iter()
        .enumerate()
        .map(|(i, &client)| {
            Browser::new(
                client,
                format!("u-{i}"),
                BrowserConfig {
                    device: Some(device_for(i)),
                    ..BrowserConfig::default()
                },
            )
        })
        .collect();

    let truly_bad = |ip: &str, client: ClientId, t: SimTime| -> bool {
        let Some(addr) = oak_net::IpAddr::parse(ip) else {
            return false;
        };
        let Some(server) = corpus.world.server_at(addr) else {
            return false;
        };
        let creg = corpus.world.client(client).region;
        corpus
            .world
            .impairments()
            .iter()
            .any(|i| i.server == server.id && i.latency_factor(t, creg) > 1.0)
            || (!server.distributed && server.region != creg)
            || server.quality == oak_net::Quality::Poor
    };

    let mut result = MixResult {
        name,
        loads: 0,
        global: Score::default(),
        cohort: Score::default(),
        subset_violations: 0,
    };
    // The corpus draws its transient congestion windows over a two-week
    // horizon (mean ~4 h each); spacing the rounds across that horizon
    // is what lets a warm baseline watch a server *become* slow.
    let round_spacing_min = 14 * 24 * 60 / rounds;
    for round in 0..rounds {
        for (ci, browser) in browsers.iter_mut().enumerate() {
            let site = &corpus.sites[(round as usize * 7 + ci * 5) % corpus.sites.len()];
            let t = SimTime::from_minutes(round * round_spacing_min + ci as u64 * 11);
            let load = browser.load_page(&universe, site, &site.html, &[], t);
            if load.report.entries.is_empty() {
                continue;
            }
            result.loads += 1;
            let now = Instant(t.as_millis());
            // The SAME report feeds both engines — the policies, not the
            // workloads, are what differ.
            let global_flags: Vec<String> = global
                .ingest_report(now, &load.report, &universe)
                .violations
                .into_iter()
                .map(|v| v.ip)
                .collect();
            let cohort_flags: Vec<String> = cohort
                .ingest_report(now, &load.report, &universe)
                .violations
                .into_iter()
                .map(|v| v.ip)
                .collect();
            if cohort_flags.iter().any(|ip| !global_flags.contains(ip)) {
                result.subset_violations += 1;
            }
            let analysis = PageAnalysis::from_report(&load.report);
            for server in analysis.iter() {
                let bad = truly_bad(&server.ip, browser.client, t);
                for (score, flags) in [
                    (&mut result.global, &global_flags),
                    (&mut result.cohort, &cohort_flags),
                ] {
                    match (flags.contains(&server.ip), bad) {
                        (true, true) => score.tp += 1,
                        (true, false) => score.fp += 1,
                        (false, true) => score.fn_ += 1,
                        (false, false) => score.tn += 1,
                    }
                }
            }
        }
    }
    result
}

fn print_mix(mix: &MixResult) {
    println!(
        "\nmix {:>13} ({} loads; cohort⊆global violations: {}):",
        mix.name, mix.loads, mix.subset_violations
    );
    println!(
        "  {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "policy", "flags", "tp", "fp", "fn", "fp-rate", "fn-rate"
    );
    for (label, s) in [("global", &mix.global), ("cohort", &mix.cohort)] {
        println!(
            "  {:>8} {:>8} {:>8} {:>8} {:>8} {:>8.3}% {:>8.1}%",
            label,
            s.flags(),
            s.tp,
            s.fp,
            s.fn_,
            s.fp_rate() * 100.0,
            s.fn_rate() * 100.0
        );
    }
}

fn score_json(s: &Score) -> oak_json::Value {
    let mut doc = oak_json::Value::object();
    doc.set("flags", s.flags());
    doc.set("true_positives", s.tp);
    doc.set("false_positives", s.fp);
    doc.set("false_negatives", s.fn_);
    doc.set("true_negatives", s.tn);
    doc.set("fp_rate", s.fp_rate());
    doc.set("fn_rate", s.fn_rate());
    doc
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sites, providers, rounds) = if smoke { (60, 60, 8) } else { (150, 120, 24) };
    let seed = 0xD37EC7;

    println!(
        "Detector policy head-to-head ({} sites, {} providers, {} rounds × 25 clients{})",
        sites,
        providers,
        rounds,
        if smoke { ", smoke" } else { "" }
    );

    let desktop_corpus = Corpus::generate(&CorpusConfig {
        sites,
        providers,
        seed,
        ..CorpusConfig::default()
    });
    let mobile_corpus = Corpus::generate(&CorpusConfig {
        sites,
        providers,
        seed,
        ad_heavy_fraction: 0.6,
        ad_chain_depth: 4,
        ..CorpusConfig::default()
    });

    let desktop = run_mix(
        "desktop",
        &desktop_corpus,
        |_| DeviceProfile::DESKTOP,
        rounds,
    );
    let mobile = run_mix("mobile_heavy", &mobile_corpus, mobile_mix_device, rounds);
    print_mix(&desktop);
    print_mix(&mobile);

    // --- Gates ---------------------------------------------------------
    let mut failures = Vec::new();
    for mix in [&desktop, &mobile] {
        if mix.subset_violations > 0 {
            failures.push(format!(
                "{}: cohort flagged outside the global candidate set in {} report(s)",
                mix.name, mix.subset_violations
            ));
        }
    }
    if mobile.global.fp == 0 {
        failures.push("mobile_heavy: global policy produced no false positives — the device confound is not being exercised".to_owned());
    }
    if mobile.cohort.fp_rate() >= mobile.global.fp_rate() {
        failures.push(format!(
            "mobile_heavy: cohort fp rate {:.4}% is not strictly below global {:.4}%",
            mobile.cohort.fp_rate() * 100.0,
            mobile.global.fp_rate() * 100.0
        ));
    }

    let mut doc = oak_json::Value::object();
    doc.set("smoke", smoke);
    doc.set("sites", sites as u64);
    doc.set("providers", providers as u64);
    doc.set("rounds", rounds);
    for mix in [&desktop, &mobile] {
        let mut m = oak_json::Value::object();
        m.set("loads", mix.loads);
        m.set("subset_violations", mix.subset_violations);
        m.set("global", score_json(&mix.global));
        m.set("cohort", score_json(&mix.cohort));
        doc.set(mix.name, m);
    }
    let mut gates = oak_json::Value::object();
    gates.set("passed", failures.is_empty());
    let mut failed = oak_json::Value::array();
    for f in &failures {
        failed.push(f.as_str());
    }
    gates.set("failures", failed);
    doc.set("gates", gates);
    std::fs::write("BENCH_detector.json", doc.to_string()).expect("write BENCH_detector.json");
    println!("\nwrote BENCH_detector.json");

    if failures.is_empty() {
        println!("all detector gates passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
