//! `oak-load` — the million-user soak harness behind the overload
//! controller's acceptance numbers.
//!
//! Drives the full Oak service (engine + rewriter + ingest + overload
//! controller, fronted by the epoll edge) over real TCP with an
//! **open-loop** arrival process: each client thread fires requests on
//! an absolute schedule derived from the target rate, never waiting for
//! the previous response before the next arrival is due — so offered
//! load keeps arriving when the server falls behind, exactly the
//! regime closed-loop benchmarks can't produce. The workload is the
//! paper's shape at hostile scale:
//!
//! - a pool of four million distinct synthetic users (cookie
//!   identities drawn per arrival from a seeded stateless RNG), with
//!   server-side pruning keeping per-user state bounded;
//! - zipf-distributed page popularity over the site (a few hot pages,
//!   a long cold tail), mixed with report POSTs and operator scrapes;
//! - arrival rate modulated by an `oak-net` diurnal demand curve, one
//!   simulated day compressed into each phase;
//! - (soak mode) ChaosClient fault injection woven through the load:
//!   slowloris dribbles, mid-body disconnects, oversized heads.
//!
//! The run calibrates the node's capacity closed-loop, then holds
//! open-loop phases at 1×, (full mode) 1.5×, and 2× that capacity,
//! recording per-class goodput, client-observed latency percentiles,
//! `/oak/health` probe latency, peak RSS, and the server's own
//! shed/brownout counters into `BENCH_soak.json`.
//!
//! Gates (exit nonzero on violation) — graceful degradation, not
//! collapse:
//! - report goodput at 2× capacity ≥ 70% of the 1× capacity point;
//! - `/oak/health` p99 < 100 ms in every phase, zero failed probes;
//! - bounded memory: peak RSS at 2× ≤ 2× the 1× peak + 128 MiB;
//! - zero client-thread panics;
//! - no connection-reset storm: unexplained transport errors < 5% of
//!   attempts in every phase.
//!
//! Two bolt-on stress sections ride along:
//!
//! - `--store` boots the service durable (WAL + snapshots in a scratch
//!   directory) so every ingested report is journaled *while* the node
//!   is overloaded, then gates that the WAL backlog stayed bounded
//!   (snapshot compaction kept up: events since the last snapshot ≤ 2×
//!   the snapshot cadence) and that no write errors occurred;
//! - a registry-cardinality stress drives 10⁶ distinct user label
//!   values at one metric family and gates that the series table stays
//!   at `MAX_SERIES_PER_FAMILY + 1` (the overflow series absorbs the
//!   tail), that a full exposition scrape stays fast, and that RSS
//!   growth is bounded — the regression test for unbounded label
//!   cardinality in `oak-obs`.
//!
//! Run with `cargo run --release -p oak-bench --bin oak-load` (full
//! ≥10-minute soak with faults, nightly CI) or `-- --smoke` (≥30 s,
//! 1× + 2× phases, per-push CI). `--seconds <n>` scales phase length.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use oak_core::engine::{Oak, OakConfig};
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_edge::{AnyServer, Backend, EdgeConfig};
use oak_http::fault::ChaosClient;
use oak_http::{Method, Request, ServerLimits, TransportStats};
use oak_net::{Quality, Region, Server as NetServer, ServerId, SimTime, StatelessRng};
use oak_server::{
    OakService, OverloadController, OverloadPolicy, PrunePolicy, ServiceObs, SiteStore,
    HEALTH_PATH, REPORT_PATH, STATS_PATH,
};
use oak_store::{FsyncPolicy, OakStore, StoreOptions};

/// Distinct synthetic user identities the arrival process draws from.
const USER_POOL: u64 = 4_000_000;

/// Pages on the simulated site; popularity is zipf over this set.
const PAGES: usize = 32;

/// Zipf exponent for page popularity (1.1 ≈ web page popularity).
const ZIPF_S: f64 = 1.1;

/// Client threads per phase. More than the edge worker pool on
/// purpose: offered concurrency must be able to exceed service
/// concurrency or no queue ever builds.
const PHASE_THREADS: usize = 24;

/// Client threads during closed-loop capacity calibration — enough to
/// saturate the single edge worker without measuring client contention.
const CAL_THREADS: usize = 8;

/// Edge handler workers. One, deliberately: the capacity ceiling must
/// be low enough for a laptop-sized host to push the node past it.
const EDGE_WORKERS: usize = 1;

/// Queue deadline for the epoll worker queue (CoDel-at-dequeue).
const QUEUE_DEADLINE: Duration = Duration::from_millis(100);

/// Health probe cadence and SLO.
const HEALTH_PROBE_EVERY: Duration = Duration::from_millis(20);
const HEALTH_P99_TARGET_US: u64 = 100_000;

/// Reset-storm gate: unexplained transport errors per attempt.
const RESET_STORM_FRACTION: f64 = 0.05;

/// Report-goodput retention gate at 2× capacity.
const GOODPUT_RETENTION: f64 = 0.70;

/// Memory gate: 2× phase peak RSS budget over the 1× peak.
const RSS_SLACK_KB: u64 = 128 * 1024;

/// Fault-injection probability per arrival (soak mode).
const FAULT_CHANCE: f64 = 0.003;

/// The one script tag every page carries and the one rule rewrites, so
/// Brownout's rewrite bypass is load-bearing, not cosmetic.
const HOT_TAG: &str = r#"<script src="http://cdn-a.example/lib.js">"#;

fn site() -> SiteStore {
    let mut store = SiteStore::new();
    let filler = "<p>lorem oakum dolor sit amet</p>".repeat(96);
    for page in 0..PAGES {
        let mut html = String::with_capacity(8 * 1024);
        html.push_str("<html><head>");
        html.push_str(&format!("{HOT_TAG}</script>"));
        for host in 0..8 {
            html.push_str(&format!(
                r#"<script src="http://cdn-{host}.example/p{page}.js"></script>"#
            ));
        }
        html.push_str("</head><body>");
        html.push_str(&filler);
        html.push_str("</body></html>");
        store.add_page(format!("/p/{page}"), html);
    }
    store
}

/// The harness's overload thresholds, scaled to its own concurrency:
/// with `PHASE_THREADS` blocking clients and one edge worker, the
/// worker queue tops out around `PHASE_THREADS - 1`, so Brownout and
/// Shedding both sit well inside the reachable range.
fn overload_policy() -> OverloadPolicy {
    OverloadPolicy {
        sample_every_ms: 50,
        queue_brownout: 6,
        queue_shed: 18,
        cooldown_samples: 3,
        max_connections: 512,
        ..OverloadPolicy::default()
    }
}

/// Snapshot cadence for `--store` runs: small enough that even the
/// smoke run compacts a few times (so the backlog and cadence gates
/// bite), large enough that the engine-quiescing snapshot pause — a
/// few hundred ms on the single edge worker — stays rare relative to
/// the 50 Hz health probe stream it would otherwise dominate.
const STORE_SNAPSHOT_EVERY: u64 = 20_000;

#[allow(clippy::type_complexity)]
fn start_server(
    store_dir: Option<&std::path::Path>,
) -> (
    AnyServer,
    Arc<OakService>,
    std::net::SocketAddr,
    Option<Arc<OakStore>>,
) {
    // With --store, recover-then-serve exactly like oak-serve does: the
    // booted engine has the store attached as its event sink, so every
    // ingest under load is journaled.
    let (oak, durable) = match store_dir {
        Some(dir) => {
            let options = StoreOptions {
                snapshot_every_events: STORE_SNAPSHOT_EVERY,
                // This harness gates WAL backlog and snapshot cadence
                // under overload, not power-loss durability; explicit
                // fsyncs on the single edge worker would stall every
                // in-flight request (health probes included) and turn
                // the health gate into an fsync benchmark.
                fsync: FsyncPolicy::Never,
                ..StoreOptions::default()
            };
            let boot = OakStore::boot(dir, OakConfig::default(), options)
                .expect("scratch store boots clean");
            (boot.oak, Some(boot.store))
        }
        None => (Oak::new(OakConfig::default()), None),
    };
    oak.add_rule(Rule::replace_identical(
        HOT_TAG,
        [
            r#"<script src="http://m1.example/lib.js">"#.to_owned(),
            r#"<script src="http://m2.example/lib.js">"#.to_owned(),
        ],
    ))
    .expect("harness rule is valid");
    let t0 = Instant::now();
    let obs = ServiceObs::wall(64, 0);
    let transport = Arc::new(TransportStats::default());
    let mut service = OakService::new(oak, site())
        .with_clock(move || oak_core::Instant(t0.elapsed().as_millis() as u64))
        .with_transport_stats(Arc::clone(&transport))
        .with_obs(Arc::clone(&obs))
        // Pruning keeps four million potential identities from
        // accreting unbounded per-user state — the memory gate proves
        // it works.
        .with_pruning(PrunePolicy {
            idle_ms: 5_000,
            every_requests: 2_048,
        })
        .with_overload(OverloadController::new(overload_policy()));
    if let Some(store) = &durable {
        service = service.with_durability(Arc::clone(store));
    }
    let service = service.into_shared();
    let limits = ServerLimits {
        max_connections: 512,
        queue_deadline: QUEUE_DEADLINE,
        ..ServerLimits::default()
    };
    let server = AnyServer::start_with_config(
        Backend::Epoll,
        0,
        service.clone(),
        limits,
        transport,
        Some(Arc::clone(&obs.http)),
        EdgeConfig {
            workers: EDGE_WORKERS,
            tick_ms: 5,
        },
    )
    .expect("epoll edge failed to start");
    if let Some(edge_stats) = server.edge_stats() {
        service.set_edge_stats(edge_stats);
    }
    let addr = server.addr();
    (server, service, addr, durable)
}

/// Registry-cardinality stress: a million distinct user label values at
/// one family. Before the per-family cap this grew the registry — and
/// every scrape — without bound; with it, the series table plateaus at
/// the cap plus the shared overflow series and the aggregate count
/// still adds up.
fn registry_cardinality_stress() -> (oak_json::Value, bool) {
    const USERS: u64 = 1_000_000;
    let registry = oak_obs::Registry::new();
    let rss_before_kb = rss_kb();
    let started = Instant::now();
    for i in 0..USERS {
        let user = format!("u-{i}");
        registry
            .counter(
                "oak_load_user_requests_total",
                "per-user request counter (cardinality stress)",
                &[("user", &user)],
            )
            .inc();
    }
    let register_secs = started.elapsed().as_secs_f64();

    let scrape_started = Instant::now();
    let families = registry.families();
    let exposition = oak_obs::encode(families.clone());
    let scrape_us = scrape_started.elapsed().as_micros() as u64;
    let rss_after_kb = rss_kb();

    let family = families
        .iter()
        .find(|f| f.name == "oak_load_user_requests_total")
        .expect("stress family registered");
    let total: f64 = family
        .series
        .iter()
        .map(|s| match s.value {
            oak_obs::SeriesValue::Scalar(v) => v,
            _ => 0.0,
        })
        .sum();

    let series_cap = oak_obs::MAX_SERIES_PER_FAMILY + 1;
    let series_pass = family.series.len() <= series_cap;
    // Every increment must land somewhere: cap ≠ data loss.
    let count_pass = total as u64 == USERS;
    // A scrape of a capped family is an operator-path operation; it must
    // stay interactive even after a cardinality attack.
    let scrape_pass = scrape_us < 250_000;
    // RSS is process-global and the soak runs in the same process, so
    // this is a coarse bound — the real ceiling is the series cap above.
    let rss_delta_kb = rss_after_kb.saturating_sub(rss_before_kb);
    let rss_pass = rss_delta_kb < 64 * 1024;
    let pass = series_pass && count_pass && scrape_pass && rss_pass;

    println!(
        "registry stress: {USERS} users -> {} series (cap {series_cap}) in {register_secs:.2}s, \
scrape {scrape_us} us / {} bytes, rss +{} MiB -> {}",
        family.series.len(),
        exposition.len(),
        rss_delta_kb / 1024,
        if pass { "pass" } else { "FAIL" }
    );

    let mut doc = oak_json::Value::object();
    doc.set("users", USERS);
    doc.set("series", family.series.len() as u64);
    doc.set("series_cap", series_cap as u64);
    doc.set("register_secs", register_secs);
    doc.set("scrape_us", scrape_us);
    doc.set("exposition_bytes", exposition.len() as u64);
    doc.set("rss_delta_kb", rss_delta_kb);
    doc.set("total_count", total);
    doc.set("series_pass", series_pass);
    doc.set("count_pass", count_pass);
    doc.set("scrape_pass", scrape_pass);
    doc.set("rss_pass", rss_pass);
    doc.set("pass", pass);
    (doc, pass)
}

/// Inverse-CDF zipf over `PAGES` ranks.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new() -> Zipf {
        let weights: Vec<f64> = (1..=PAGES).map(|r| 1.0 / (r as f64).powf(ZIPF_S)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(PAGES);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    fn draw(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(PAGES - 1)
    }
}

fn report_body(user: &str, page: usize, rng: &mut StatelessRng) -> Vec<u8> {
    let mut report = PerfReport::new(user, format!("/p/{page}"));
    for host in 0..8u64 {
        report.push(ObjectTiming::new(
            format!("http://cdn-{host}.example/p{page}.js"),
            format!("10.0.{host}.1"),
            30_000,
            rng.uniform(40.0, 400.0),
        ));
    }
    report.to_json().into_bytes()
}

/// Exact percentile over a sorted sample set (nearest-rank).
fn pct(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Current VmRSS in KiB, from /proc/self/status (0 where unavailable).
fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[derive(Default)]
struct PhaseTally {
    attempted: u64,
    pages_ok: u64,
    reports_ok: u64,
    scrapes_ok: u64,
    shed_503: u64,
    other_status: u64,
    resets: u64,
    faults: u64,
    page_us: Vec<u64>,
    report_us: Vec<u64>,
    shed_us: Vec<u64>,
}

impl PhaseTally {
    fn absorb(&mut self, other: PhaseTally) {
        self.attempted += other.attempted;
        self.pages_ok += other.pages_ok;
        self.reports_ok += other.reports_ok;
        self.scrapes_ok += other.scrapes_ok;
        self.shed_503 += other.shed_503;
        self.other_status += other.other_status;
        self.resets += other.resets;
        self.faults += other.faults;
        self.page_us.extend(other.page_us);
        self.report_us.extend(other.report_us);
        self.shed_us.extend(other.shed_us);
    }
}

struct PhaseResult {
    mult: f64,
    secs: f64,
    tally: PhaseTally,
    health_us: Vec<u64>,
    health_failures: u64,
    rss_peak_kb: u64,
    panics: u64,
}

/// One client thread's open-loop arrival loop.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: std::net::SocketAddr,
    seed: u64,
    phase: usize,
    thread: usize,
    thread_rate: f64,
    duration: Duration,
    diurnal: NetServer,
    faults: bool,
) -> PhaseTally {
    let mut tally = PhaseTally::default();
    let zipf = Zipf::new();
    let client = ChaosClient::new(addr).with_read_timeout(Duration::from_secs(5));
    let mut pool = client.concurrent(1).ok();
    // Mean of the demand curve is 0.5, so normalizing by
    // 1 + amplitude/2 keeps the phase's average rate on target while
    // the instantaneous rate walks the day.
    let diurnal_norm = 1.0 + diurnal.diurnal_amplitude * 0.5;
    let t0 = Instant::now();
    let mut due = Duration::ZERO;
    let mut n = 0u64;
    while t0.elapsed() < duration {
        // Open loop: sleep only when ahead of schedule; behind schedule
        // means the backlog fires back-to-back.
        let now = t0.elapsed();
        if now < due {
            std::thread::sleep(due - now);
        }
        let progress = due.as_secs_f64() / duration.as_secs_f64();
        let day = SimTime::from_millis((progress * 86_400_000.0) as u64);
        let load = diurnal.diurnal_load(day) / diurnal_norm;
        due += Duration::from_secs_f64(1.0 / (thread_rate * load).max(0.001));

        let mut rng = StatelessRng::keyed(seed, &[phase as u64, thread as u64, n]);
        n += 1;
        tally.attempted += 1;

        if faults && rng.chance(FAULT_CHANCE) {
            tally.faults += 1;
            match rng.below(3) {
                0 => {
                    let _ = client.dribble(
                        b"POST /oak/report HTTP/1.1\r\nContent-Length: 64\r\n\r\n",
                        8,
                        Duration::from_millis(20),
                    );
                }
                1 => {
                    let _ = client.disconnect_mid_body(REPORT_PATH, 4_096, 512);
                }
                _ => {
                    let _ = client.oversized_head(80 * 1024);
                }
            }
            continue;
        }

        let user = format!("u-{}", rng.below(USER_POOL));
        let cookie = format!("oak_uid={user}");
        let kind = rng.next_f64();
        let page = zipf.draw(rng.next_f64());
        let request = if kind < 0.55 {
            Request::new(Method::Get, format!("/p/{page}")).with_header("Cookie", &cookie)
        } else if kind < 0.95 {
            let mut body_rng = StatelessRng::keyed(seed ^ 0xb0d7, &[thread as u64, n]);
            Request::new(Method::Post, REPORT_PATH)
                .with_body(report_body(&user, page, &mut body_rng), "application/json")
                .with_header("Cookie", &cookie)
        } else {
            Request::new(Method::Get, STATS_PATH).with_header("Cookie", &cookie)
        };

        let Some(conns) = pool.as_mut() else {
            pool = client.concurrent(1).ok();
            tally.resets += 1;
            continue;
        };
        let started = Instant::now();
        match conns.exchange(0, &request) {
            Ok(response) => {
                let us = started.elapsed().as_micros() as u64;
                match (response.status.0, request.method) {
                    (200, Method::Get) if request.path().starts_with("/p/") => {
                        tally.pages_ok += 1;
                        tally.page_us.push(us);
                    }
                    (200, Method::Get) => tally.scrapes_ok += 1,
                    (204, Method::Post) => {
                        tally.reports_ok += 1;
                        tally.report_us.push(us);
                    }
                    (503, _) => {
                        tally.shed_503 += 1;
                        tally.shed_us.push(us);
                    }
                    _ => tally.other_status += 1,
                }
                // An announced close (admit-shed POSTs, over-capacity
                // 503s) is protocol, not damage: reconnect quietly.
                if response
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    pool = client.concurrent(1).ok();
                }
            }
            Err(_) => {
                tally.resets += 1;
                pool = client.concurrent(1).ok();
            }
        }
    }
    tally
}

/// Closed-loop capacity calibration: hammer the node with a small
/// thread pool for `secs`, report completed requests per second.
fn calibrate(addr: std::net::SocketAddr, seed: u64, secs: u64) -> f64 {
    let duration = Duration::from_secs(secs);
    let done = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..CAL_THREADS)
        .map(|t| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let zipf = Zipf::new();
                let client = ChaosClient::new(addr).with_read_timeout(Duration::from_secs(5));
                let mut pool = client.concurrent(1).ok();
                let t0 = Instant::now();
                let mut n = 0u64;
                while t0.elapsed() < duration {
                    let mut rng = StatelessRng::keyed(seed ^ 0xca1b, &[t as u64, n]);
                    n += 1;
                    let user = format!("u-{}", rng.below(USER_POOL));
                    let cookie = format!("oak_uid={user}");
                    let page = zipf.draw(rng.next_f64());
                    let request = if rng.chance(0.45) {
                        let mut body_rng = StatelessRng::keyed(seed ^ 0xca1c, &[t as u64, n]);
                        Request::new(Method::Post, REPORT_PATH)
                            .with_body(report_body(&user, page, &mut body_rng), "application/json")
                            .with_header("Cookie", &cookie)
                    } else {
                        Request::new(Method::Get, format!("/p/{page}"))
                            .with_header("Cookie", &cookie)
                    };
                    let Some(conns) = pool.as_mut() else {
                        pool = client.concurrent(1).ok();
                        continue;
                    };
                    match conns.exchange(0, &request) {
                        Ok(response) => {
                            if response.status.is_success() {
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            if response
                                .header("connection")
                                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                            {
                                pool = client.concurrent(1).ok();
                            }
                        }
                        Err(_) => pool = client.concurrent(1).ok(),
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }
    done.load(Ordering::Relaxed) as f64 / secs as f64
}

/// Runs one open-loop phase at `mult` × `capacity_rps` for `secs`.
fn run_phase(
    addr: std::net::SocketAddr,
    seed: u64,
    phase: usize,
    mult: f64,
    capacity_rps: f64,
    secs: u64,
    faults: bool,
) -> PhaseResult {
    let duration = Duration::from_secs(secs);
    let thread_rate = mult * capacity_rps / PHASE_THREADS as f64;
    // The demand curve of an under-provisioned third-party box — the
    // population whose diurnal swing drives the paper's Fig. 11.
    let diurnal = NetServer {
        id: ServerId(0),
        hostname: "load.example".into(),
        ip: oak_net::IpAddr(0x0a09_0909),
        region: Region::NorthAmerica,
        quality: Quality::Mediocre,
        processing_ms: 24.0,
        bandwidth_kbps: 40_000.0,
        diurnal_amplitude: 0.30,
        distributed: false,
        affinity_neutral: false,
    };

    let stop = Arc::new(AtomicBool::new(false));

    // Health prober: fixed cadence on its own connection; the gate is
    // that a load balancer can always tell this node is alive, fast.
    let prober = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let client = ChaosClient::new(addr).with_read_timeout(Duration::from_secs(2));
            let mut pool = client.concurrent(1).ok();
            let probe = Request::new(Method::Get, HEALTH_PATH);
            let mut latencies = Vec::new();
            let mut failures = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let Some(conns) = pool.as_mut() else {
                    pool = client.concurrent(1).ok();
                    failures += 1;
                    std::thread::sleep(HEALTH_PROBE_EVERY);
                    continue;
                };
                let started = Instant::now();
                match conns.exchange(0, &probe) {
                    Ok(response) if response.status.0 == 200 => {
                        latencies.push(started.elapsed().as_micros() as u64);
                    }
                    Ok(_) => failures += 1,
                    Err(_) => {
                        failures += 1;
                        pool = client.concurrent(1).ok();
                    }
                }
                std::thread::sleep(HEALTH_PROBE_EVERY);
            }
            (latencies, failures)
        })
    };

    // RSS monitor: the memory-ceiling gate's witness.
    let rss_monitor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = 0u64;
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(rss_kb());
                std::thread::sleep(Duration::from_millis(250));
            }
            peak
        })
    };

    let workers: Vec<_> = (0..PHASE_THREADS)
        .map(|t| {
            let diurnal = diurnal.clone();
            std::thread::spawn(move || {
                client_loop(addr, seed, phase, t, thread_rate, duration, diurnal, faults)
            })
        })
        .collect();

    let mut tally = PhaseTally::default();
    let mut panics = 0u64;
    for worker in workers {
        match worker.join() {
            Ok(t) => tally.absorb(t),
            Err(_) => panics += 1,
        }
    }
    stop.store(true, Ordering::Relaxed);
    let (mut health_us, health_failures) = prober.join().unwrap_or((Vec::new(), u64::MAX));
    let rss_peak_kb = rss_monitor.join().unwrap_or(0);

    tally.page_us.sort_unstable();
    tally.report_us.sort_unstable();
    tally.shed_us.sort_unstable();
    health_us.sort_unstable();
    PhaseResult {
        mult,
        secs: secs as f64,
        tally,
        health_us,
        health_failures,
        rss_peak_kb,
        panics,
    }
}

/// Scrapes `/oak/stats` (fresh connection) and returns the JSON doc.
fn scrape_stats(addr: std::net::SocketAddr) -> Option<oak_json::Value> {
    let client = ChaosClient::new(addr).with_read_timeout(Duration::from_secs(2));
    let mut pool = client.concurrent(1).ok()?;
    let response = pool
        .exchange(0, &Request::new(Method::Get, STATS_PATH))
        .ok()?;
    if response.status.0 != 200 {
        return None;
    }
    oak_json::parse(&response.body_text()).ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let faults = !smoke || args.iter().any(|a| a == "--faults");
    let with_store = args.iter().any(|a| a == "--store");
    let seconds = args
        .iter()
        .position(|a| a == "--seconds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    let seed = 0x0a_0a_50_4bu64;
    oak_edge::raise_fd_limit();

    // Phase plan: smoke is the ≥30 s per-push gate (1× + 2×); full is
    // the ≥10-minute nightly soak with the 1.5× shoulder and faults.
    let (cal_secs, plan): (u64, Vec<(f64, u64)>) = if smoke {
        let unit = seconds.unwrap_or(12);
        (3, vec![(1.0, unit), (2.0, unit + unit / 4 + 2)])
    } else {
        let unit = seconds.unwrap_or(150);
        (8, vec![(1.0, unit), (1.5, unit), (2.0, unit * 2)])
    };

    let store_dir = with_store.then(|| {
        let dir = std::env::temp_dir().join(format!("oak-load-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let (mut server, _service, addr, durable) = start_server(store_dir.as_deref());
    println!(
        "oak-load: {} mode on {addr} ({} client threads over {} edge worker(s), \
user pool {USER_POOL}, {PAGES} zipf pages, faults {}, store {})",
        if smoke { "smoke" } else { "soak" },
        PHASE_THREADS,
        EDGE_WORKERS,
        if faults { "on" } else { "off" },
        if with_store { "on" } else { "off" },
    );

    let capacity_rps = calibrate(addr, seed, cal_secs);
    println!("calibrated capacity: {capacity_rps:.0} req/s (closed loop, {CAL_THREADS} threads)\n");
    println!(
        "{:>5} {:>5} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "mult",
        "secs",
        "attempts",
        "pages",
        "reports",
        "shed",
        "resets",
        "faults",
        "rep p99us",
        "hlth p99us",
        "shed p50us",
        "rss MiB",
        "panics"
    );

    let mut results = Vec::new();
    let mut stats_after = Vec::new();
    for (index, &(mult, secs)) in plan.iter().enumerate() {
        let result = run_phase(addr, seed, index, mult, capacity_rps, secs, faults);
        // Let the controller cool down and the queue drain, then read
        // the server's own story of the phase.
        std::thread::sleep(Duration::from_secs(2));
        stats_after.push(scrape_stats(addr));
        println!(
            "{:>5.1} {:>5.0} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9} {:>8}",
            result.mult,
            result.secs,
            result.tally.attempted,
            result.tally.pages_ok,
            result.tally.reports_ok,
            result.tally.shed_503,
            result.tally.resets,
            result.tally.faults,
            pct(&result.tally.report_us, 0.99),
            pct(&result.health_us, 0.99),
            // How long a to-be-shed request waited: rejections must be
            // cheap, or shedding doesn't relieve anything.
            pct(&result.tally.shed_us, 0.50),
            result.rss_peak_kb / 1024,
            result.panics,
        );
        results.push(result);
    }

    // Read the store's counters before shutdown, while the journal is
    // still the engine's live sink.
    let store_section = durable.as_ref().map(|store| {
        let recorded = store.events_recorded();
        let since_snapshot = store.events_since_snapshot();
        let write_errors = store.write_errors();
        // Compaction kept up: the un-snapshotted tail never grew past
        // twice the cadence (one interval in flight, one accruing).
        let backlog_pass = since_snapshot <= 2 * STORE_SNAPSHOT_EVERY;
        // Cadence proof: enough events flowed to require at least one
        // post-boot snapshot, and the tail shows one happened.
        let cadence_pass = recorded < STORE_SNAPSHOT_EVERY || since_snapshot < recorded;
        let pass = backlog_pass && cadence_pass && write_errors == 0;
        println!(
            "store: {recorded} events journaled, {since_snapshot} since last snapshot \
(cadence {STORE_SNAPSHOT_EVERY}), {write_errors} write errors -> {}",
            if pass { "pass" } else { "FAIL" }
        );
        let mut doc = oak_json::Value::object();
        doc.set("events_recorded", recorded);
        doc.set("events_since_snapshot", since_snapshot);
        doc.set("snapshot_every_events", STORE_SNAPSHOT_EVERY);
        doc.set("write_errors", write_errors);
        doc.set("backlog_pass", backlog_pass);
        doc.set("cadence_pass", cadence_pass);
        doc.set("pass", pass);
        (doc, pass)
    });

    server.shutdown();
    if let Some(dir) = &store_dir {
        let _ = std::fs::remove_dir_all(dir);
    }

    let (registry_doc, registry_pass) = registry_cardinality_stress();

    // --- Gates ---
    let goodput = |r: &PhaseResult| r.tally.reports_ok as f64 / r.secs;
    let at = |m: f64| results.iter().find(|r| (r.mult - m).abs() < 1e-9);
    let base = at(1.0).expect("1x phase always runs");
    let peak2 = at(2.0).expect("2x phase always runs");
    let base_goodput = goodput(base);
    let peak_goodput = goodput(peak2);
    let goodput_pass = peak_goodput >= GOODPUT_RETENTION * base_goodput;

    let health_p99: Vec<u64> = results.iter().map(|r| pct(&r.health_us, 0.99)).collect();
    let health_pass = results
        .iter()
        .zip(&health_p99)
        .all(|(r, &p99)| p99 < HEALTH_P99_TARGET_US && r.health_failures == 0);

    let rss_pass = peak2.rss_peak_kb <= base.rss_peak_kb.saturating_mul(2) + RSS_SLACK_KB;
    let panic_total: u64 = results.iter().map(|r| r.panics).sum();
    let reset_pass = results.iter().all(|r| {
        r.tally.attempted == 0
            || (r.tally.resets as f64 / r.tally.attempted as f64) < RESET_STORM_FRACTION
    });

    println!(
        "\nreport goodput: {base_goodput:.0}/s at 1x -> {peak_goodput:.0}/s at 2x \
(floor {:.0}%) -> {}",
        GOODPUT_RETENTION * 100.0,
        if goodput_pass { "pass" } else { "FAIL" }
    );
    println!(
        "health p99 by phase: {health_p99:?} us (target < {HEALTH_P99_TARGET_US}) -> {}",
        if health_pass { "pass" } else { "FAIL" }
    );
    println!(
        "rss peak: {} MiB at 1x -> {} MiB at 2x (budget 2x + 128 MiB) -> {}",
        base.rss_peak_kb / 1024,
        peak2.rss_peak_kb / 1024,
        if rss_pass { "pass" } else { "FAIL" }
    );
    println!(
        "panics: {panic_total} -> {}",
        if panic_total == 0 { "pass" } else { "FAIL" }
    );
    println!(
        "reset storm: worst {:.2}% (budget {:.0}%) -> {}",
        results
            .iter()
            .map(|r| {
                if r.tally.attempted == 0 {
                    0.0
                } else {
                    100.0 * r.tally.resets as f64 / r.tally.attempted as f64
                }
            })
            .fold(0.0f64, f64::max),
        RESET_STORM_FRACTION * 100.0,
        if reset_pass { "pass" } else { "FAIL" }
    );

    // --- BENCH_soak.json ---
    let mut phases = oak_json::Value::array();
    for (result, stats) in results.iter().zip(&stats_after) {
        let mut doc = oak_json::Value::object();
        doc.set("mult", result.mult);
        doc.set("secs", result.secs);
        doc.set("attempted", result.tally.attempted);
        doc.set("pages_ok", result.tally.pages_ok);
        doc.set("reports_ok", result.tally.reports_ok);
        doc.set("scrapes_ok", result.tally.scrapes_ok);
        doc.set("shed_503", result.tally.shed_503);
        doc.set("other_status", result.tally.other_status);
        doc.set("resets", result.tally.resets);
        doc.set("faults_injected", result.tally.faults);
        doc.set("report_goodput_rps", goodput(result));
        doc.set("page_p50_us", pct(&result.tally.page_us, 0.50));
        doc.set("page_p99_us", pct(&result.tally.page_us, 0.99));
        doc.set("report_p50_us", pct(&result.tally.report_us, 0.50));
        doc.set("report_p99_us", pct(&result.tally.report_us, 0.99));
        doc.set("shed_p50_us", pct(&result.tally.shed_us, 0.50));
        doc.set("health_p99_us", pct(&result.health_us, 0.99));
        doc.set("health_failures", result.health_failures);
        doc.set("rss_peak_kb", result.rss_peak_kb);
        doc.set("panics", result.panics);
        if let Some(overload) = stats.as_ref().and_then(|s| s.get("overload")) {
            doc.set("server_overload", overload.clone());
        }
        phases.push(doc);
    }
    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "soak");
    doc.set("mode", if smoke { "smoke" } else { "soak" });
    doc.set("seed", seed);
    doc.set("faults", faults);
    doc.set("user_pool", USER_POOL);
    doc.set("pages", PAGES);
    doc.set("zipf_s", ZIPF_S);
    doc.set("client_threads", PHASE_THREADS);
    doc.set("edge_workers", EDGE_WORKERS);
    doc.set("capacity_rps", capacity_rps);
    doc.set("phases", phases);
    let mut gates = oak_json::Value::object();
    gates.set("goodput_retention_floor", GOODPUT_RETENTION);
    gates.set("report_goodput_1x_rps", base_goodput);
    gates.set("report_goodput_2x_rps", peak_goodput);
    gates.set("goodput_pass", goodput_pass);
    gates.set("health_p99_target_us", HEALTH_P99_TARGET_US);
    gates.set("health_pass", health_pass);
    gates.set("rss_pass", rss_pass);
    gates.set("panics", panic_total);
    gates.set("reset_pass", reset_pass);
    let store_pass = match &store_section {
        Some((store_doc, pass)) => {
            doc.set("store", store_doc.clone());
            gates.set("store_pass", *pass);
            *pass
        }
        None => true,
    };
    doc.set("registry_stress", registry_doc);
    gates.set("registry_stress_pass", registry_pass);
    doc.set("gates", gates);
    std::fs::write("BENCH_soak.json", doc.to_string()).expect("write BENCH_soak.json");
    println!("\nwrote BENCH_soak.json");

    if !(goodput_pass
        && health_pass
        && rss_pass
        && panic_total == 0
        && reset_pass
        && store_pass
        && registry_pass)
    {
        eprintln!("soak gate failed");
        std::process::exit(1);
    }
}
