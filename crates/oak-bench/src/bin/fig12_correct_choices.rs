//! Fig. 12 — the fraction of correct rule choices Oak made, in four
//! panels: H1-Close, H1-Far, H2-Close, H2-Far.
//!
//! Paper shape (§5.3): "In the H1 cases, nearly 80% of choices are
//! entirely correct … In the H2 case, approximately 74% of choices are
//! always correct", with the residue explained by Oak's experiential
//! approach — "Oak must use a server before it has information about
//! that server."
//!
//! Run: `cargo run --release -p oak-bench --bin fig12_correct_choices`

use oak_bench::replicated::run;
use oak_bench::support::{fraction_at_least, print_cdf_grid};
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let results = run(&corpus);

    println!("Fig. 12 — fraction of correct rule choices (per activated rule)\n");
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    for (key, data) in &results.conditions {
        print_cdf_grid(key, &data.correct_fractions, &grid);
        println!(
            "    entirely correct (fraction = 1.0): {:.0}%  (n = {})\n",
            fraction_at_least(&data.correct_fractions, 1.0) * 100.0,
            data.correct_fractions.len()
        );
    }
    println!(
        "paper: ~80% entirely correct for H1, ~74% for H2; more rules on H2 sites\n\
         create the more varied results"
    );
}
