//! Ablation — relative detection on a mobile client.
//!
//! §5.1: "While here we use geographic distance to vary performance this
//! principle applies in other scenarios of reduced functionality, for
//! example when using a mobile device." A cellular client sees *every*
//! server slowly; Oak's relative criterion must not flood it with
//! violators — yet a server that is bad *relative to the rest* must still
//! surface, because switching providers can still help that user.
//!
//! Run: `cargo run --release -p oak-bench --bin ablation_mobile`

use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig};
use oak_core::report::{ObjectTiming, PerfReport};
use oak_net::{Quality, Region, SimTime, WorldBuilder};

fn main() {
    let mut b = WorldBuilder::new(0x40b);
    let hosts: Vec<_> = (0..6)
        .map(|i| {
            b.server(
                &format!("s{i}.example"),
                Region::NorthAmerica,
                Quality::Good,
            )
        })
        .collect();
    // One server is genuinely broken for everyone.
    let bad = hosts[3];
    b.tune_server(bad, |s| s.processing_ms = 600.0);

    let broadband = b.client(Region::NorthAmerica);
    let mobile = b.mobile_client(Region::NorthAmerica);
    let world = b.build();
    let t = SimTime::from_hours(10);

    println!("Ablation — mobile vs broadband client, same servers\n");
    for (label, client) in [("broadband", broadband), ("mobile", mobile)] {
        let mut report = PerfReport::new(label, "/");
        let mut total = 0.0;
        for (i, &server) in hosts.iter().enumerate() {
            let fetch = world.fetch(t, client, world.ip_of(server), 45_000, i as u64);
            total += fetch.time_ms;
            report.push(ObjectTiming::new(
                format!("http://s{i}.example/obj"),
                world.ip_of(server).to_string(),
                45_000,
                fetch.time_ms,
            ));
        }
        let analysis = PageAnalysis::from_report(&report);
        let violations = detect_violators(&analysis, &DetectorConfig::default());
        println!(
            "{label:>10}: mean object time {:>6.0} ms; violators: {:?}",
            total / hosts.len() as f64,
            violations
                .iter()
                .map(|v| v.domains.join(","))
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\nthe mobile client's absolute times are markedly worse, yet the\n\
         relative test flags exactly the same (genuinely broken) server — and\n\
         nothing else. Absolute thresholds would have flagged the whole page\n\
         (see ablation_detectors)."
    );
}
