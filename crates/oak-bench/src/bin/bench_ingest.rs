//! Report-ingest throughput: JSON vs the binary wire format.
//!
//! Measures three things over a corpus of large (~120-entry) reports,
//! where decode cost dominates admission:
//!
//! 1. **Decode throughput** — `PerfReport::from_json_bytes` vs
//!    `PerfReport::from_binary` in isolation (reports/s and MB/s),
//! 2. **End-to-end ingest** — `POST /oak/report` through a full
//!    [`OakService`] with both `Content-Type`s (ops/s),
//! 3. **Allocation pressure** — allocations and bytes per op for each
//!    path, via [`oak_bench::alloc`].
//!
//! Writes `BENCH_ingest.json` and exits nonzero if binary decode
//! throughput is below 3× JSON — the floor CI enforces so the zero-copy
//! decoder can't silently regress into an allocation-parity one.
//!
//! Run with `cargo run --release -p oak-bench --bin bench_ingest`
//! (`-- --smoke` for the quick CI mode).

use std::time::Instant as WallInstant;

use oak_core::engine::{Oak, OakConfig};
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::wire::OAK_REPORT_CONTENT_TYPE;
use oak_http::cookie::OAK_USER_COOKIE;
use oak_http::{Handler, Method, Request};
use oak_server::{OakService, SiteStore, REPORT_PATH};

use oak_bench::alloc;

#[global_allocator]
static ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Distinct reports in the corpus (cycled through during timed loops so
/// one report's cache residency doesn't flatter the numbers).
const CORPUS: usize = 64;

/// Objects per report — big enough that decode dominates dispatch.
const ENTRIES_PER_REPORT: usize = 120;

/// The CI floor: binary decode must clear this multiple of JSON decode.
const DECODE_FLOOR: f64 = 3.0;

struct Measured {
    ops_per_sec: f64,
    allocs_per_op: f64,
    bytes_per_op: f64,
}

/// Times `ops` calls of `op(i)` (cycling the corpus), with a full warmup
/// pass first; returns throughput and per-op allocation pressure.
fn measure(ops: u64, mut op: impl FnMut(usize)) -> Measured {
    for i in 0..ops {
        op(i as usize % CORPUS);
    }
    let alloc_start = alloc::snapshot();
    let start = WallInstant::now();
    for i in 0..ops {
        op(i as usize % CORPUS);
    }
    let elapsed = start.elapsed();
    let (allocs_per_op, bytes_per_op) = alloc::per_op(alloc_start, alloc::snapshot(), ops);
    Measured {
        ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
        allocs_per_op,
        bytes_per_op,
    }
}

/// A large report for `user`: [`ENTRIES_PER_REPORT`] objects spread over
/// 40 servers with realistic URL lengths, one violator-grade outlier.
fn corpus_report(user: usize) -> PerfReport {
    let mut report = PerfReport::new(format!("ingest-u{user}"), "/index.html");
    for i in 0..ENTRIES_PER_REPORT {
        let server = i % 40;
        report.push(ObjectTiming::new(
            format!("http://host{server}.example/assets/v{user}/component-{i}/bundle.min.js"),
            format!("10.{}.{}.{}", user % 200, server, i % 250 + 1),
            6_000 + ((i * 131 + user * 17) as u64 % 42_000),
            if i == ENTRIES_PER_REPORT - 1 {
                900.0
            } else {
                40.0 + ((i * 37 + user * 101) % 160) as f64
            },
        ));
    }
    report
}

/// A service with a handful of Type 2 rules, mirroring the contention
/// harness so ingest numbers compare across benchmarks.
fn build_service() -> OakService {
    let oak = Oak::new(OakConfig::default());
    for i in 0..8 {
        oak.add_rule(Rule::replace_identical(
            format!("http://host{i}.example/"),
            [format!("http://alt.example/host{i}.example/")],
        ))
        .unwrap();
    }
    let mut store = SiteStore::new();
    store.add_page("/index.html", "<html><body>bench</body></html>");
    OakService::new(oak, store)
}

fn post(service: &OakService, body: &[u8], content_type: &str, user: &str) {
    let mut req = Request::new(Method::Post, REPORT_PATH).with_body(body.to_vec(), content_type);
    req.headers
        .set("Cookie", format!("{OAK_USER_COOKIE}={user}"));
    let response = service.handle(&req);
    assert_eq!(response.status.0, 204, "ingest must succeed");
}

fn row(label: &str, m: &Measured, mb_per_sec: Option<f64>) -> oak_json::Value {
    let mut r = oak_json::Value::object();
    r.set("path", label);
    r.set("ops_per_sec", (m.ops_per_sec * 10.0).round() / 10.0);
    r.set("allocs_per_op", (m.allocs_per_op * 10.0).round() / 10.0);
    r.set("bytes_per_op", m.bytes_per_op.round());
    if let Some(mb) = mb_per_sec {
        r.set("mb_per_sec", (mb * 10.0).round() / 10.0);
    }
    println!(
        "{label:<24} {:>12.0} ops/s {:>10.1} allocs/op {:>12.0} bytes/op",
        m.ops_per_sec, m.allocs_per_op, m.bytes_per_op
    );
    r
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (decode_ops, e2e_ops) = if smoke { (512, 256) } else { (4096, 2048) };

    let reports: Vec<PerfReport> = (0..CORPUS).map(corpus_report).collect();
    let json_bodies: Vec<Vec<u8>> = reports.iter().map(|r| r.to_json().into_bytes()).collect();
    let bin_bodies: Vec<Vec<u8>> = reports.iter().map(PerfReport::to_binary).collect();
    let json_bytes: usize = json_bodies.iter().map(Vec::len).sum();
    let bin_bytes: usize = bin_bodies.iter().map(Vec::len).sum();

    println!(
        "Report ingest: {CORPUS} reports x {ENTRIES_PER_REPORT} entries \
         (json {:.1} KB/report, binary {:.1} KB/report)\n",
        json_bytes as f64 / CORPUS as f64 / 1024.0,
        bin_bytes as f64 / CORPUS as f64 / 1024.0,
    );

    let decode_json = measure(decode_ops, |i| {
        PerfReport::from_json_bytes(&json_bodies[i]).expect("corpus json decodes");
    });
    let decode_bin = measure(decode_ops, |i| {
        PerfReport::from_binary(&bin_bodies[i]).expect("corpus binary decodes");
    });

    let json_service = build_service();
    let e2e_json = measure(e2e_ops, |i| {
        post(
            &json_service,
            &json_bodies[i],
            "application/json",
            &reports[i].user,
        );
    });
    let bin_service = build_service();
    let e2e_bin = measure(e2e_ops, |i| {
        post(
            &bin_service,
            &bin_bodies[i],
            OAK_REPORT_CONTENT_TYPE,
            &reports[i].user,
        );
    });

    let mut rows = oak_json::Value::array();
    let avg_json_mb = json_bytes as f64 / CORPUS as f64 / 1e6;
    let avg_bin_mb = bin_bytes as f64 / CORPUS as f64 / 1e6;
    rows.push(row(
        "decode/json",
        &decode_json,
        Some(decode_json.ops_per_sec * avg_json_mb),
    ));
    rows.push(row(
        "decode/binary",
        &decode_bin,
        Some(decode_bin.ops_per_sec * avg_bin_mb),
    ));
    rows.push(row("ingest_e2e/json", &e2e_json, None));
    rows.push(row("ingest_e2e/binary", &e2e_bin, None));

    let decode_speedup = decode_bin.ops_per_sec / decode_json.ops_per_sec;
    let e2e_speedup = e2e_bin.ops_per_sec / e2e_json.ops_per_sec;
    println!("\nbinary/json decode speedup: {decode_speedup:.2}x (floor {DECODE_FLOOR:.1}x)");
    println!("binary/json e2e ingest speedup: {e2e_speedup:.2}x");

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "report_ingest_json_vs_binary");
    doc.set("smoke", if smoke { 1u64 } else { 0u64 });
    doc.set("corpus_reports", CORPUS);
    doc.set("entries_per_report", ENTRIES_PER_REPORT);
    doc.set("decode_ops", decode_ops);
    doc.set("e2e_ops", e2e_ops);
    doc.set("rows", rows);
    doc.set("decode_speedup", (decode_speedup * 100.0).round() / 100.0);
    doc.set("e2e_speedup", (e2e_speedup * 100.0).round() / 100.0);
    std::fs::write("BENCH_ingest.json", doc.to_string()).expect("write BENCH_ingest.json");
    println!("wrote BENCH_ingest.json");

    if decode_speedup < DECODE_FLOOR {
        eprintln!(
            "FAIL: binary decode is {decode_speedup:.2}x JSON, below the {DECODE_FLOOR:.1}x floor"
        );
        std::process::exit(1);
    }
}
