//! Fig. 9 — PLT ratio between default and Oak pages for increasing
//! injected delays, from clients in NA, EU, and AS.
//!
//! Paper shape (§5.1): the NA client's tight baseline lets Oak react to
//! delays as small as 0.75 s; the EU client needs > 2 s; the cross-global
//! AS client only reacts at 5 s. "By only reacting to poorly performing
//! servers relative to other servers at the same time, Oak avoids
//! activating rules inappropriately."
//!
//! Run: `cargo run --release -p oak-bench --bin fig09_sensitivity`

use oak_bench::benchworld::{sensitivity_rules, sensitivity_world};
use oak_client::SimSession;
use oak_core::engine::{Oak, OakConfig};
use oak_net::SimTime;

/// The paper's delay sweep: 11 points from 250 ms to 5 s.
const DELAYS_MS: [f64; 11] = [
    250.0, 500.0, 750.0, 1_000.0, 1_500.0, 2_000.0, 2_500.0, 3_000.0, 3_500.0, 4_000.0, 5_000.0,
];
const ITERATIONS: u64 = 20;
/// The external host that degrades.
const DELAYED_HOST: &str = "s3.bench.example";

fn main() {
    println!("Fig. 9 — average PLT ratio (default / Oak) vs injected delay\n");
    println!("{:>9}  {:>8}  {:>8}  {:>8}", "delay_ms", "NA", "EU", "AS");

    let mut detection_point = [None::<f64>; 3];
    for delay in DELAYS_MS {
        let mut ratios = [0.0f64; 3];
        for (ci, _) in ["NA", "EU", "AS"].iter().enumerate() {
            let mut sum = 0.0;
            for iter in 0..ITERATIONS {
                // Fresh world per iteration: path affinities and noise
                // redraw, as a new measurement day would.
                let (mut corpus, clients) = sensitivity_world(0x519 + iter);
                let delayed = corpus
                    .world
                    .servers()
                    .iter()
                    .find(|s| s.hostname == DELAYED_HOST)
                    .expect("delayed host exists")
                    .id;
                corpus.world.inject_delay(delayed, delay);

                let oak = Oak::new(OakConfig::default());
                for rule in sensitivity_rules() {
                    oak.add_rule(rule).expect("bench rules validate");
                }
                let mut session = SimSession::new(&corpus, oak);
                let client = clients[ci];
                let t = SimTime::from_hours(2 + iter * 3);

                // First load reports the delay; second load is measured.
                session.visit(0, client, t);
                let (oak_load, _) = session.visit(0, client, t + 300_000);
                let default_load = session.visit_default(0, client, t + 300_000);
                sum += default_load.plt_ms / oak_load.plt_ms;
            }
            ratios[ci] = sum / ITERATIONS as f64;
            if ratios[ci] > 1.10 && detection_point[ci].is_none() {
                detection_point[ci] = Some(delay);
            }
        }
        println!(
            "{:>9.0}  {:>8.3}  {:>8.3}  {:>8.3}",
            delay, ratios[0], ratios[1], ratios[2]
        );
    }

    println!(
        "\ndetection onset (ratio > 1.1): NA at {:?} ms, EU at {:?} ms, AS at {:?} ms",
        detection_point[0], detection_point[1], detection_point[2]
    );
    println!(
        "paper: NA reacts by 750 ms, EU above 2 s, AS only at 5 s — the onset ordering\n\
         NA < EU < AS is the reproduced shape (absolute thresholds scale with the\n\
         testbed's noise floor; see EXPERIMENTS.md)"
    );
}
