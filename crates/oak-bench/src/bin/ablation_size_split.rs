//! Ablation — the 50 KB small/large object split.
//!
//! §4.2 measures small objects by time and large objects by throughput,
//! cut at 50 KB. The split matters: time is overhead-dominated for small
//! objects (throughput would punish them for fixed costs), and
//! throughput is the meaningful axis once transfer dominates. This sweep
//! moves the boundary and watches detection change.
//!
//! Run: `cargo run --release -p oak-bench --bin ablation_size_split`

use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig};
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 150,
        ..CorpusConfig::default()
    });
    let universe = Universe::new(&corpus);
    let t = SimTime::from_hours(13);
    let config = DetectorConfig::default();

    println!("Ablation — small/large split sweep (150 sites × 8 clients)\n");
    println!(
        "{:>10}  {:>10} {:>12} {:>12}",
        "split", "flags/load", "time-axis", "tput-axis"
    );
    for split in [5_000u64, 20_000, 50_000, 120_000, 400_000] {
        let mut flags = 0usize;
        let mut by_time = 0usize;
        let mut by_tput = 0usize;
        let mut loads = 0usize;
        for site in &corpus.sites {
            let origin_ip = corpus.world.ip_of(site.origin).to_string();
            for &client in corpus.clients.iter().take(8) {
                let mut browser = Browser::new(client, "abl", BrowserConfig::default());
                let load = browser.load_page(&universe, site, &site.html, &[], t);
                let analysis = PageAnalysis::from_report_with_split(&load.report, split);
                loads += 1;
                for v in detect_violators(&analysis, &config) {
                    if v.ip == origin_ip {
                        continue;
                    }
                    flags += 1;
                    match v.kind {
                        oak_core::detect::ViolationKind::SlowSmallObjects { .. } => by_time += 1,
                        oak_core::detect::ViolationKind::LowThroughput { .. } => by_tput += 1,
                    }
                }
            }
        }
        println!(
            "{:>8}KB  {:>10.2} {:>12} {:>12}",
            split / 1_000,
            flags as f64 / loads as f64,
            by_time,
            by_tput
        );
    }
    println!(
        "\nbelow ~20 KB the throughput axis judges overhead-dominated objects (its\n\
         few flags are noise); above ~120 KB bulk objects fall onto the *time* axis,\n\
         whose per-server averages then mix transfer size into latency and over-fire.\n\
         The paper's 50 KB keeps each axis on the regime it measures well."
    );
}
