//! Fig. 13 — ratio of default object load time to the time under Oak's
//! choice, for protected objects with active rules, in four panels.
//!
//! Paper shape (§5.3): Oak's choice was an improvement (ratio > 1) for
//! 57% of H1-Close cases, 66% of H1-Far, 80% of H2-Close, and 77% of
//! H2-Far; "in nearly all cases where the default performs better, the
//! difference is within normal variations".
//!
//! Run: `cargo run --release -p oak-bench --bin fig13_object_ratios`

use oak_bench::replicated::run;
use oak_bench::support::{fraction_at_least, median, print_cdf_grid};
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let results = run(&corpus);

    println!("Fig. 13 — default-time / Oak-choice-time per protected domain\n");
    let grid = [
        0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0,
    ];
    for (key, data) in &results.conditions {
        print_cdf_grid(key, &data.object_ratios, &grid);
        println!(
            "    Oak's choice faster (ratio > 1): {:.0}%   median ratio {:.2}  (n = {})\n",
            fraction_at_least(&data.object_ratios, 1.0 + 1e-9) * 100.0,
            median(&data.object_ratios),
            data.object_ratios.len()
        );
    }
    println!("paper: improvements in 57% (H1-Close), 66% (H1-Far), 80% (H2-Close), 77% (H2-Far)");
}
