//! Fig. 15 — distribution of performance-report sizes over the corpus.
//!
//! Paper shape: "In the median case reports are below 10KB, and in the
//! worst-case only 345KB" (§6, Overhead).
//!
//! Run: `cargo run --release -p oak-bench --bin fig15_report_sizes`

use oak_bench::support::{median, print_cdf, print_cdf_grid};
use oak_client::{Browser, BrowserConfig, Universe};
use oak_net::SimTime;
use oak_webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let universe = Universe::new(&corpus);
    let client = corpus.clients[0];

    let mut sizes_kb = Vec::with_capacity(corpus.sites.len());
    for site in &corpus.sites {
        let mut browser = Browser::new(client, "fig15", BrowserConfig::default());
        let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(13));
        sizes_kb.push(load.report.wire_size() as f64 / 1_000.0);
    }

    println!("Fig. 15 — report sizes (KB) for one load of each corpus site\n");
    let grid: Vec<f64> = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0].to_vec();
    print_cdf_grid("report size (KB)", &sizes_kb, &grid);
    println!();
    print_cdf("report size (KB)", &sizes_kb);
    let max = sizes_kb.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\npaper: median < 10 KB, max ≈ 345 KB\nmeasured: median = {:.1} KB, max = {:.1} KB",
        median(&sizes_kb),
        max
    );
    println!(
        "(reports upload after the page completes, so none of this sits on the \
         user-perceived critical path — §6)"
    );
}
