//! Fig. 3 — fraction of outliers which vanished after 1, 2, and 5 days.
//!
//! Paper shape: "52% of outliers changing after a single day in the
//! median case. However, on subsequent days the set of re-occurring
//! outliers remains consistent, remaining nearly unaltered after 5 days"
//! (§2.1).
//!
//! Run: `cargo run --release -p oak-bench --bin fig03_outlier_persistence`

use std::collections::BTreeSet;

use oak_bench::support::{median, print_cdf_grid};
use oak_client::{Browser, BrowserConfig, Universe};
use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig};
use oak_net::{ClientId, SimTime};
use oak_webgen::{Corpus, CorpusConfig, Site};

/// The outlier IP set for one (site, client) at time `t`.
fn outliers(
    universe: &Universe<'_>,
    site: &Site,
    client: ClientId,
    t: SimTime,
) -> BTreeSet<String> {
    let origin_ip = universe.corpus().world.ip_of(site.origin).to_string();
    let mut browser = Browser::new(client, "fig3", BrowserConfig::default());
    let load = browser.load_page(universe, site, &site.html, &[], t);
    let analysis = PageAnalysis::from_report(&load.report);
    detect_violators(&analysis, &DetectorConfig::default())
        .into_iter()
        .map(|v| v.ip)
        .filter(|ip| *ip != origin_ip)
        .collect()
}

fn main() {
    let corpus = Corpus::generate(&CorpusConfig::default());
    let universe = Universe::new(&corpus);
    // Sample a subset of vantage points to keep the run brisk; each
    // (site, client) contributes one persistence sample per horizon.
    let clients: Vec<ClientId> = corpus.clients.iter().copied().take(5).collect();
    let t0 = SimTime::from_hours(13);

    let mut missing: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for site in &corpus.sites {
        for &client in &clients {
            let day0 = outliers(&universe, site, client, t0);
            if day0.is_empty() {
                continue;
            }
            for (slot, days) in [1u64, 2, 5].into_iter().enumerate() {
                let later = outliers(&universe, site, client, t0 + days * 86_400_000);
                let vanished = day0.iter().filter(|ip| !later.contains(*ip)).count();
                missing[slot].push(vanished as f64 / day0.len() as f64);
            }
        }
    }

    println!("Fig. 3 — fraction of day-0 outliers missing after N days\n");
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    for (slot, days) in [1, 2, 5].into_iter().enumerate() {
        print_cdf_grid(&format!("{days} day(s)"), &missing[slot], &grid);
        println!();
    }
    println!(
        "paper: ~52% of outliers vanish after 1 day (median), then the set stays stable\n\
         measured medians: 1d={:.2}  2d={:.2}  5d={:.2}",
        median(&missing[0]),
        median(&missing[1]),
        median(&missing[2]),
    );
}
