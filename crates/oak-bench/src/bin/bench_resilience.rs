//! The guard tax and the breaker dividend, measured: edge throughput
//! with production limits vs. none, report ingest against a hanging
//! script host with the circuit breaker on vs. off, and the
//! deterministic breaker-recovery trace.
//!
//! Prints all three tables and records them in `BENCH_resilience.json`.
//! Run with `cargo run --release -p oak-bench --bin bench_resilience`;
//! pass `--smoke` for the fast CI variant (same shape, smaller sizes).

use std::time::Duration;

use oak_bench::resilience::{
    breaker_recovery_trace, edge_duration, flaky_ingest_duration, permissive_limits,
};
use oak_core::fetch::FetchPolicy;
use oak_http::ServerLimits;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let edge_requests: u64 = if smoke { 200 } else { 2_000 };
    let flaky_reports: u64 = if smoke { 20 } else { 100 };

    // --- Part 1: the guard tax ---------------------------------------
    println!("Edge throughput, production limits vs. none ({edge_requests} requests)\n");
    println!("{:<18} {:>14} {:>10}", "limits", "requests/s", "tax");
    let mut edge_rows = oak_json::Value::array();
    let mut baseline = 0.0f64;
    for (name, limits) in [
        ("permissive", permissive_limits()),
        ("production", ServerLimits::default()),
    ] {
        edge_duration(limits, edge_requests / 4); // warm
        let elapsed = edge_duration(limits, edge_requests);
        let rps = edge_requests as f64 / elapsed.as_secs_f64();
        if baseline == 0.0 {
            baseline = rps;
        }
        let tax = 1.0 - rps / baseline;
        println!(
            "{name:<18} {rps:>14.0} {:>9.1}%",
            (tax * 1000.0).round() / 10.0
        );
        let mut row = oak_json::Value::object();
        row.set("limits", name);
        row.set("requests", edge_requests);
        row.set("requests_per_sec", (rps * 10.0).round() / 10.0);
        row.set("overhead_fraction", (tax * 1000.0).round() / 1000.0);
        edge_rows.push(row);
    }

    // --- Part 2: the breaker dividend --------------------------------
    // Every level-3 fetch hangs 20 ms past a 10 ms deadline; the naive
    // policy pays the deadline per report, the guarded one only until
    // the circuit opens (then the negative cache and breaker absorb it).
    let hang = Duration::from_millis(20);
    let naive = FetchPolicy {
        deadline: Some(Duration::from_millis(10)),
        retries: 0,
        backoff_base: Duration::ZERO,
        negative_ttl_ms: 0,
        breaker_threshold: u32::MAX,
        breaker_cooldown_ms: 0,
    };
    let guarded = FetchPolicy {
        breaker_threshold: 3,
        breaker_cooldown_ms: 60_000,
        ..naive
    };
    println!("\nIngest vs. a hanging script host ({flaky_reports} reports, 20 ms hang)\n");
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>12}",
        "breaker", "total ms", "attempts", "skips", "reports/s"
    );
    let mut ingest_rows = oak_json::Value::array();
    for (name, policy) in [("off", naive), ("on", guarded)] {
        let (elapsed, fetches) = flaky_ingest_duration(flaky_reports, hang, policy);
        let ms = elapsed.as_secs_f64() * 1_000.0;
        let rps = flaky_reports as f64 / elapsed.as_secs_f64();
        println!(
            "{name:<12} {ms:>12.1} {:>10} {:>10} {rps:>12.0}",
            fetches.attempts, fetches.breaker_open_skips
        );
        let mut row = oak_json::Value::object();
        row.set("breaker", name);
        row.set("reports", flaky_reports);
        row.set("total_ms", (ms * 10.0).round() / 10.0);
        row.set("fetch_attempts", fetches.attempts);
        row.set("breaker_open_skips", fetches.breaker_open_skips);
        row.set("timeouts", fetches.timeouts);
        row.set("reports_per_sec", (rps * 10.0).round() / 10.0);
        ingest_rows.push(row);
    }

    // --- Part 3: deterministic breaker recovery ----------------------
    // Threshold 3, 1 s cooldown; the host stays dead through two probes
    // and heals on the third. Engine-clock recovery is exact: 3 000 ms.
    let policy = FetchPolicy {
        deadline: None,
        retries: 0,
        backoff_base: Duration::ZERO,
        negative_ttl_ms: 0,
        breaker_threshold: 3,
        breaker_cooldown_ms: 1_000,
    };
    let (recovery_ms, attempts, skips) = breaker_recovery_trace(policy, 5);
    println!("\nBreaker recovery (fake clock; threshold 3, 1 s cooldown, heal on 3rd probe)\n");
    println!("recovery: {recovery_ms} engine-ms, {attempts} attempts, {skips} skips");
    assert_eq!(recovery_ms, 3_000, "recovery trace must be deterministic");
    let mut recovery = oak_json::Value::object();
    recovery.set("recovery_engine_ms", recovery_ms);
    recovery.set("attempts", attempts);
    recovery.set("breaker_open_skips", skips);

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "edge_resilience");
    doc.set("smoke", smoke);
    doc.set("edge", edge_rows);
    doc.set("flaky_ingest", ingest_rows);
    doc.set("breaker_recovery", recovery);
    std::fs::write("BENCH_resilience.json", doc.to_string()).expect("write BENCH_resilience.json");
    println!("\nwrote BENCH_resilience.json");
}
