//! Edge latency under concurrent keep-alive load: threads vs epoll.
//!
//! Drives N concurrent keep-alive connections of mixed traffic — report
//! POSTs to `/oak/report` and page GETs through the rewriter — against
//! the full Oak service fronted by each transport backend, and records
//! client-observed per-exchange latency percentiles (p50/p95/p99) into
//! `BENCH_edge_latency.json`.
//!
//! The connections are *mostly idle* by construction: each client
//! thread round-robins its share of the pool, so at most a handful of
//! requests are in flight at once while every connection stays open —
//! exactly the workload the epoll reactor exists for (thousands of
//! keep-alive clients posting occasional Oak reports), and the workload
//! a thread-per-connection edge pays one parked OS thread per socket to
//! carry.
//!
//! Gates (exit nonzero on violation):
//! - epoll report-POST p95 must stay under 10 ms at the largest
//!   connection count measured (1024 full, 256 `--smoke`);
//! - at 64 connections the epoll backend must not be meaningfully
//!   slower than threads (p95 within `max(2x, +2 ms)` — generous
//!   because shared CI runners are noisy, but a real regression of the
//!   reactor's hot path blows straight through it).
//!
//! Run with `cargo run --release -p oak-bench --bin bench_edge_latency`
//! (full sweep, nightly CI) or `-- --smoke` (per-push CI).

use std::sync::Arc;
use std::time::Instant;

use oak_core::engine::{Oak, OakConfig};
use oak_core::report::{ObjectTiming, PerfReport};
use oak_edge::{AnyServer, Backend};
use oak_http::fault::ChaosClient;
use oak_http::{Method, Request, ServerLimits, TransportStats};
use oak_server::{OakService, ServiceObs, SiteStore, REPORT_PATH};

const PAGE: &str = r#"<html><head><script src="http://cdn-a.example/jquery.js"></script></head><body>bench</body></html>"#;

/// Client threads sharing the connection pool. Few on purpose: the
/// benchmark models many mostly-idle connections, not many concurrent
/// requests, so in-flight depth stays at the thread count.
const CLIENT_THREADS: usize = 4;

/// The report-POST p95 target, from the PR's SLO.
const POST_P95_TARGET_US: u64 = 10_000;

struct LatencyRow {
    backend: Backend,
    connections: usize,
    post_us: Vec<u64>,
    get_us: Vec<u64>,
}

fn service() -> Arc<OakService> {
    let oak = Oak::new(OakConfig::default());
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    OakService::new(oak, store).into_shared()
}

/// A small, realistic report (Fig. 15 sizes the median real report in
/// the single-digit-KB range) for user `user`.
fn report_body(user: &str) -> Vec<u8> {
    let mut report = PerfReport::new(user, "/index.html");
    for (host, ip, ms) in [
        ("cdn-a.example", "10.0.0.1", 120.0),
        ("img.example", "10.0.0.2", 85.0),
        ("fonts.example", "10.0.0.3", 70.0),
    ] {
        report.push(ObjectTiming::new(
            format!("http://{host}/asset"),
            ip,
            30_000,
            ms,
        ));
    }
    report.to_json().into_bytes()
}

/// Exact percentile over a sorted sample set (nearest-rank).
fn pct(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

/// Measures one (backend, connections) configuration: `rounds` visits
/// of every connection, alternating POST and GET per visit, after one
/// unmeasured warmup round.
fn run_config(backend: Backend, connections: usize, rounds: usize) -> LatencyRow {
    let service = service();
    let obs = ServiceObs::wall(64, 500);
    let stats = Arc::new(TransportStats::default());
    let limits = ServerLimits {
        max_connections: connections + 64,
        ..ServerLimits::default()
    };
    let mut server = AnyServer::start_with_obs(
        backend,
        0,
        service,
        limits,
        Arc::clone(&stats),
        Some(Arc::clone(&obs.http)),
    )
    .unwrap_or_else(|e| panic!("{backend} backend failed to start: {e}"));
    let addr = server.addr();

    let threads = CLIENT_THREADS.min(connections);
    let per_thread = connections / threads;
    let remainder = connections % threads;
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let share = per_thread + usize::from(t < remainder);
            std::thread::spawn(move || {
                let user = format!("u-bench-{t}");
                let cookie = format!("oak_uid={user}");
                let post = Request::new(Method::Post, REPORT_PATH)
                    .with_body(report_body(&user), "application/json")
                    .with_header("Cookie", &cookie);
                let get = Request::new(Method::Get, "/index.html").with_header("Cookie", &cookie);
                let mut pool = ChaosClient::new(addr)
                    .concurrent(share)
                    .unwrap_or_else(|e| panic!("opening {share} connections: {e}"));
                let mut post_us = Vec::with_capacity(share * rounds / 2 + 1);
                let mut get_us = Vec::with_capacity(share * rounds / 2 + 1);
                for round in 0..=rounds {
                    for conn in 0..share {
                        let is_post = (round + conn) % 2 == 0;
                        let request = if is_post { &post } else { &get };
                        let started = Instant::now();
                        let resp = pool
                            .exchange(conn, request)
                            .unwrap_or_else(|e| panic!("exchange on conn {conn}: {e}"));
                        let us = started.elapsed().as_micros() as u64;
                        assert!(resp.status.is_success(), "exchange got {}", resp.status.0);
                        if round == 0 {
                            continue; // warmup: pools, caches, first-touch
                        }
                        if is_post {
                            post_us.push(us);
                        } else {
                            get_us.push(us);
                        }
                    }
                }
                (post_us, get_us)
            })
        })
        .collect();

    let mut post_us = Vec::new();
    let mut get_us = Vec::new();
    for worker in workers {
        let (p, g) = worker.join().expect("client thread");
        post_us.extend(p);
        get_us.extend(g);
    }
    post_us.sort_unstable();
    get_us.sort_unstable();
    server.shutdown();
    LatencyRow {
        backend,
        connections,
        post_us,
        get_us,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let fd_limit = oak_edge::raise_fd_limit();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Smoke keeps per-push CI fast; the full sweep is the nightly 1k
    // proof. Both always include the 64-connection pair for the
    // epoll-vs-threads comparison gate.
    let configs: &[(Backend, usize)] = if smoke {
        &[
            (Backend::Threads, 64),
            (Backend::Epoll, 64),
            (Backend::Epoll, 256),
        ]
    } else {
        &[
            (Backend::Threads, 64),
            (Backend::Epoll, 64),
            (Backend::Threads, 1024),
            (Backend::Epoll, 1024),
        ]
    };
    let rounds = if smoke { 20 } else { 12 };
    let top_connections = configs.iter().map(|&(_, n)| n).max().unwrap_or(0);

    println!(
        "Edge latency, mixed report-POST / page-GET keep-alive traffic \
({} mode, {cores} core(s), fd limit {fd_limit})\n",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:<9} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "backend",
        "conns",
        "samples",
        "POST p50",
        "POST p95",
        "POST p99",
        "GET p50",
        "GET p95",
        "GET p99"
    );

    let mut rows = oak_json::Value::array();
    let mut post_p95 = std::collections::HashMap::new();
    for &(backend, connections) in configs {
        let row = run_config(backend, connections, rounds);
        let p = (
            pct(&row.post_us, 0.50),
            pct(&row.post_us, 0.95),
            pct(&row.post_us, 0.99),
        );
        let g = (
            pct(&row.get_us, 0.50),
            pct(&row.get_us, 0.95),
            pct(&row.get_us, 0.99),
        );
        println!(
            "{:<9} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            row.backend.as_str(),
            row.connections,
            row.post_us.len() + row.get_us.len(),
            p.0,
            p.1,
            p.2,
            g.0,
            g.1,
            g.2,
        );
        post_p95.insert((backend, connections), p.1);
        let mut doc = oak_json::Value::object();
        doc.set("backend", row.backend.as_str());
        doc.set("connections", row.connections);
        doc.set("samples_post", row.post_us.len());
        doc.set("samples_get", row.get_us.len());
        doc.set("post_p50_us", p.0);
        doc.set("post_p95_us", p.1);
        doc.set("post_p99_us", p.2);
        doc.set("get_p50_us", g.0);
        doc.set("get_p95_us", g.1);
        doc.set("get_p99_us", g.2);
        rows.push(doc);
    }

    // Gate 1: epoll POST p95 under target at the top connection count.
    let epoll_top = post_p95
        .get(&(Backend::Epoll, top_connections))
        .copied()
        .expect("epoll top row measured");
    let slo_pass = epoll_top < POST_P95_TARGET_US;
    // Gate 2: epoll not meaningfully slower than threads at 64.
    let threads_64 = post_p95
        .get(&(Backend::Threads, 64))
        .copied()
        .expect("threads 64 row measured");
    let epoll_64 = post_p95
        .get(&(Backend::Epoll, 64))
        .copied()
        .expect("epoll 64 row measured");
    let parity_budget = (2 * threads_64).max(threads_64 + 2_000);
    let parity_pass = epoll_64 <= parity_budget;

    println!(
        "\nepoll POST p95 @ {top_connections} conns: {epoll_top} us \
(target < {POST_P95_TARGET_US} us) -> {}",
        if slo_pass { "pass" } else { "FAIL" }
    );
    println!(
        "epoll vs threads POST p95 @ 64 conns: {epoll_64} vs {threads_64} us \
(budget {parity_budget} us) -> {}",
        if parity_pass { "pass" } else { "FAIL" }
    );

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "edge_latency");
    doc.set("mode", if smoke { "smoke" } else { "full" });
    doc.set("cores", cores);
    doc.set("fd_limit", fd_limit);
    doc.set("client_threads", CLIENT_THREADS);
    doc.set("rounds", rounds);
    doc.set("rows", rows);
    let mut gates = oak_json::Value::object();
    gates.set("post_p95_target_us", POST_P95_TARGET_US);
    gates.set("top_connections", top_connections);
    gates.set("epoll_post_p95_at_top_us", epoll_top);
    gates.set("slo_pass", slo_pass);
    gates.set("threads_post_p95_at_64_us", threads_64);
    gates.set("epoll_post_p95_at_64_us", epoll_64);
    gates.set("parity_budget_us", parity_budget);
    gates.set("parity_pass", parity_pass);
    doc.set("gates", gates);
    std::fs::write("BENCH_edge_latency.json", doc.to_string())
        .expect("write BENCH_edge_latency.json");
    println!("\nwrote BENCH_edge_latency.json");

    if !slo_pass || !parity_pass {
        eprintln!("edge latency gate failed");
        std::process::exit(1);
    }
}
