//! The persistence tax, measured: ingest throughput with the WAL on vs.
//! off across fsync policies, and recovery time vs. log length.
//!
//! Prints both tables and records them in `BENCH_durability.json`. Run
//! with `cargo run --release -p oak-bench --bin bench_durability`; pass
//! `--smoke` for the fast CI variant (same shape, smaller sizes).

use std::sync::Arc;

use oak_bench::durability::{
    build_wal, ingest_duration, recovery_duration, scratch_dir, wal_only_options, BENCH_USERS,
};
use oak_store::{FsyncPolicy, OakStore};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ingest_ops: u64 = if smoke { 300 } else { 3_000 };
    let log_lengths: &[u64] = if smoke {
        &[200, 1_000]
    } else {
        &[1_000, 5_000, 20_000]
    };

    // --- Part 1: ingest events/sec, WAL off vs. on -------------------
    println!("Ingest throughput vs. durability policy ({ingest_ops} ops)\n");
    println!("{:<22} {:>14} {:>10}", "mode", "events/s", "tax");

    let modes: &[(&str, Option<FsyncPolicy>)] = &[
        ("wal_off", None),
        ("wal_fsync_never", Some(FsyncPolicy::Never)),
        ("wal_fsync_every_64", Some(FsyncPolicy::EveryN(64))),
        ("wal_fsync_always", Some(FsyncPolicy::Always)),
    ];
    let mut ingest_rows = oak_json::Value::array();
    let mut baseline = 0.0f64;
    for (name, fsync) in modes {
        // Warm run to fault in code paths, then the measured run.
        let run = |ops: u64| match fsync {
            None => ingest_duration(ops, None),
            Some(policy) => {
                let dir = scratch_dir("ingest");
                let store =
                    Arc::new(OakStore::open(&dir, wal_only_options(*policy)).expect("open store"));
                let elapsed = ingest_duration(ops, Some(store));
                let _ = std::fs::remove_dir_all(&dir);
                elapsed
            }
        };
        run(ingest_ops / 4);
        let elapsed = run(ingest_ops);
        let events_per_sec = ingest_ops as f64 / elapsed.as_secs_f64();
        if fsync.is_none() {
            baseline = events_per_sec;
        }
        let tax = 1.0 - events_per_sec / baseline;
        println!(
            "{name:<22} {events_per_sec:>14.0} {:>9.1}%",
            (tax * 1000.0).round() / 10.0
        );
        let mut row = oak_json::Value::object();
        row.set("mode", *name);
        row.set("ops", ingest_ops);
        row.set("events_per_sec", (events_per_sec * 10.0).round() / 10.0);
        row.set("overhead_fraction", (tax * 1000.0).round() / 1000.0);
        ingest_rows.push(row);
    }

    // --- Part 2: recovery time vs. log length ------------------------
    println!("\nRecovery time vs. WAL length\n");
    println!(
        "{:<12} {:>14} {:>12} {:>14}",
        "events", "recovery ms", "replayed", "events/s"
    );
    let mut recovery_rows = oak_json::Value::array();
    for &ops in log_lengths {
        let dir = scratch_dir("recover");
        build_wal(&dir, ops);
        let (elapsed, recovery) = recovery_duration(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(recovery.torn_segments, 0, "bench WAL must be clean");
        let ms = elapsed.as_secs_f64() * 1_000.0;
        let replay_rate = recovery.events_replayed as f64 / elapsed.as_secs_f64();
        println!(
            "{ops:<12} {ms:>14.1} {:>12} {replay_rate:>14.0}",
            recovery.events_replayed
        );
        let mut row = oak_json::Value::object();
        row.set("wal_events", ops);
        row.set("recovery_ms", (ms * 10.0).round() / 10.0);
        row.set("events_replayed", recovery.events_replayed);
        row.set("replay_events_per_sec", (replay_rate * 10.0).round() / 10.0);
        recovery_rows.push(row);
    }

    let mut doc = oak_json::Value::object();
    doc.set("benchmark", "durability_wal_and_recovery");
    doc.set("smoke", smoke);
    doc.set("ingest_ops", ingest_ops);
    doc.set("bench_users", BENCH_USERS as u64);
    doc.set("ingest", ingest_rows);
    doc.set("recovery", recovery_rows);
    std::fs::write("BENCH_durability.json", doc.to_string()).expect("write BENCH_durability.json");
    println!("\nwrote BENCH_durability.json");
}
