//! Durability-tax harness: ingest throughput with the WAL on vs. off,
//! and recovery time as a function of log length.
//!
//! Reuses the [`crate::contention`] workload (40 rules, 40-server
//! reports) so the WAL numbers compare directly with the contended
//! throughput bench. Used by the `bench_durability` binary, which
//! records `BENCH_durability.json` for CI.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oak_core::engine::OakConfig;
use oak_core::matching::NoFetch;
use oak_core::Instant;
use oak_store::{recover, FsyncPolicy, OakStore, Recovery, StoreOptions};

use crate::contention::{build_engine, contended_report};

/// Users the ingest loop rotates through (spread across engine shards).
pub const BENCH_USERS: usize = 8;

/// A fresh scratch directory under the system temp root.
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("oak-bench-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Store options for a given fsync policy, with automatic snapshotting
/// disabled so the measurement isolates the WAL append path.
pub fn wal_only_options(fsync: FsyncPolicy) -> StoreOptions {
    StoreOptions {
        fsync,
        snapshot_every_events: u64::MAX,
        ..StoreOptions::default()
    }
}

/// Wall time to ingest `ops` contended reports, optionally journaling
/// into `store`. Every ingest emits exactly one WAL event.
pub fn ingest_duration(ops: u64, store: Option<Arc<OakStore>>) -> Duration {
    let mut oak = build_engine();
    if let Some(store) = store {
        oak.set_event_sink(store);
    }
    let reports: Vec<_> = (0..BENCH_USERS)
        .map(|u| contended_report(&format!("u-{u}")))
        .collect();
    let start = std::time::Instant::now();
    for i in 0..ops {
        let report = &reports[(i % BENCH_USERS as u64) as usize];
        oak.ingest_report(Instant(i), report, &NoFetch);
    }
    start.elapsed()
}

/// Journals `ops` ingest events into `dir` (no snapshot, so recovery
/// replays the full log).
pub fn build_wal(dir: &Path, ops: u64) {
    let store = Arc::new(
        OakStore::open(dir, wal_only_options(FsyncPolicy::Never)).expect("open bench store"),
    );
    let mut oak = build_engine();
    oak.set_event_sink(store.clone());
    let reports: Vec<_> = (0..BENCH_USERS)
        .map(|u| contended_report(&format!("u-{u}")))
        .collect();
    for i in 0..ops {
        let report = &reports[(i % BENCH_USERS as u64) as usize];
        oak.ingest_report(Instant(i), report, &NoFetch);
    }
    store.sync_all().expect("sync bench store");
}

/// Times a full recovery of `dir`.
pub fn recovery_duration(dir: &Path) -> (Duration, Recovery) {
    let start = std::time::Instant::now();
    let recovery = recover(dir, OakConfig::default()).expect("recover bench store");
    (start.elapsed(), recovery)
}

/// Sanity helper for tests: a store-backed engine round-trips the bench
/// workload.
pub fn roundtrip_check(ops: u64) -> bool {
    let dir = scratch_dir("roundtrip");
    build_wal(&dir, ops);
    let (_, recovery) = recovery_duration(&dir);
    let ok = recovery.events_replayed >= ops && recovery.torn_segments == 0;
    let _ = std::fs::remove_dir_all(&dir);
    ok
}
