//! Criterion micro-benchmarks for Oak's hot paths.
//!
//! The Oak server sits on the request path of every page view (rewriting)
//! and processes a report per page load (analysis + detection +
//! matching), so these are the latencies that bound a deployment:
//!
//! - `detect/*` — per-report MAD violator detection, with the StdDev
//!   ablation the paper argues against (§4.2.1),
//! - `match/*` — connection-dependency matching at each level (§4.2.2;
//!   the levels are the Fig. 8 ablation),
//! - `rewrite/*` — page modification throughput (§4.3),
//! - `report/*` — wire codec for the HAR-like report (§5),
//! - `engine/*` — the end-to-end ingest and modify paths.
//!
//! Run with `cargo bench -p oak-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use oak_core::analysis::PageAnalysis;
use oak_core::detect::{detect_violators, DetectorConfig, OutlierMethod};
use oak_core::engine::{Oak, OakConfig};
use oak_core::matching::{match_rule, MatchLevel, NoFetch};
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::Instant;

/// A report with `servers` servers and three objects each.
fn synthetic_report(servers: usize) -> PerfReport {
    let mut report = PerfReport::new("bench-user", "/index.html");
    for s in 0..servers {
        for o in 0..3 {
            report.push(ObjectTiming::new(
                format!("http://host{s}.example/obj{o}.js"),
                format!("10.0.{}.{}", s / 250, s % 250 + 1),
                if o == 2 {
                    120_000
                } else {
                    8_000 + (s * 131 + o * 17) as u64 % 30_000
                },
                80.0 + ((s * 37 + o * 101) % 120) as f64,
            ));
        }
    }
    report
}

/// A page with `tags` external references plus inline scripts.
fn synthetic_page(tags: usize) -> String {
    let mut page = String::from("<!DOCTYPE html><html><head><title>bench</title></head><body>\n");
    for i in 0..tags {
        page.push_str(&format!(
            "<script src=\"http://host{i}.example/lib{i}.js\"></script>\n"
        ));
        if i % 5 == 0 {
            page.push_str(&format!(
                "<script>var h = \"pixel{i}.example\"; var p = \"/p.gif\"; beacon(h + p);</script>\n"
            ));
        }
    }
    page.push_str("</body></html>\n");
    page
}

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    for &servers in &[10usize, 40] {
        let report = synthetic_report(servers);
        group.bench_function(format!("analyze+mad/{servers}_servers"), |b| {
            b.iter(|| {
                let analysis = PageAnalysis::from_report(black_box(&report));
                detect_violators(&analysis, &DetectorConfig::default())
            })
        });
        let analysis = PageAnalysis::from_report(&report);
        group.bench_function(format!("mad_only/{servers}_servers"), |b| {
            b.iter(|| detect_violators(black_box(&analysis), &DetectorConfig::default()))
        });
        group.bench_function(format!("stddev_ablation/{servers}_servers"), |b| {
            let config = DetectorConfig {
                method: OutlierMethod::StdDev,
                ..DetectorConfig::default()
            };
            b.iter(|| detect_violators(black_box(&analysis), &config))
        });
    }
    group.finish();
}

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("match");
    let page = synthetic_page(40);
    let hit = vec!["host17.example".to_owned()];
    let miss = vec!["absent.example".to_owned()];
    for level in [
        MatchLevel::DirectInclude,
        MatchLevel::TextMatch,
        MatchLevel::ExternalJs,
    ] {
        group.bench_function(format!("{level:?}/hit"), |b| {
            b.iter(|| match_rule(black_box(&page), black_box(&hit), level, &NoFetch))
        });
        group.bench_function(format!("{level:?}/miss"), |b| {
            b.iter(|| match_rule(black_box(&page), black_box(&miss), level, &NoFetch))
        });
    }
    // The precompiled path the engine actually runs per report.
    let surface = oak_core::matching::RuleSurface::compile(&page);
    group.bench_function("precompiled/hit", |b| {
        b.iter(|| surface.matches(black_box(&hit), MatchLevel::ExternalJs, &NoFetch))
    });
    group.bench_function("precompiled/miss", |b| {
        b.iter(|| surface.matches(black_box(&miss), MatchLevel::ExternalJs, &NoFetch))
    });
    group.bench_function("compile", |b| {
        b.iter(|| oak_core::matching::RuleSurface::compile(black_box(&page)))
    });
    group.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite");
    let page = synthetic_page(200); // ~15 KB, a mid-sized index page
    group.bench_function("replace_all/1_rule", |b| {
        b.iter(|| {
            let mut rw = oak_html::Rewriter::new(black_box(&page));
            rw.replace_all(
                "http://host17.example/",
                "http://alt.example/host17.example/",
            );
            rw.apply().unwrap()
        })
    });
    group.bench_function("replace_all/20_rules", |b| {
        b.iter(|| {
            let mut rw = oak_html::Rewriter::new(black_box(&page));
            for i in 0..20 {
                rw.replace_all(
                    &format!("http://host{i}.example/"),
                    &format!("http://alt.example/host{i}.example/"),
                );
            }
            rw.apply().unwrap()
        })
    });
    group.bench_function("tokenize", |b| {
        b.iter(|| oak_html::tokenize(black_box(&page)))
    });
    group.bench_function("document_parse", |b| {
        b.iter(|| oak_html::Document::parse(black_box(&page)))
    });
    group.finish();
}

fn bench_report_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("report");
    let report = synthetic_report(40);
    let json = report.to_json();
    group.bench_function("serialize/40_servers", |b| {
        b.iter(|| black_box(&report).to_json())
    });
    group.bench_function("parse/40_servers", |b| {
        b.iter(|| PerfReport::from_json(black_box(&json)).unwrap())
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let page = synthetic_page(40);
    let report = synthetic_report(40);

    let build_oak = || {
        let oak = Oak::new(OakConfig::default());
        for i in 0..40 {
            oak.add_rule(Rule::replace_identical(
                format!("http://host{i}.example/"),
                [format!("http://alt.example/host{i}.example/")],
            ))
            .unwrap();
        }
        oak
    };

    group.bench_function("ingest_report/40_rules", |b| {
        b.iter_batched(
            build_oak,
            |oak| oak.ingest_report(Instant::ZERO, black_box(&report), &NoFetch),
            BatchSize::SmallInput,
        )
    });

    let warm = build_oak();
    warm.ingest_report(Instant::ZERO, &report, &NoFetch);
    group.bench_function("modify_page/40_rules", |b| {
        b.iter(|| warm.modify_page(Instant::ZERO, "bench-user", "/index.html", black_box(&page)))
    });
    group.finish();
}

fn bench_engine_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_contended");
    // One "iteration" is a round of K parallel ingest+serve ops on K
    // disjoint users; engine setup and thread spawn are outside the
    // measured window (iter_custom).
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        group.bench_function(format!("sharded/{threads}_threads"), |b| {
            b.iter_custom(|iters| oak_bench::contention::sharded_duration(threads, iters))
        });
        group.bench_function(format!("single_mutex/{threads}_threads"), |b| {
            b.iter_custom(|iters| oak_bench::contention::single_mutex_duration(threads, iters))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_detect,
    bench_match,
    bench_rewrite,
    bench_report_codec,
    bench_engine,
    bench_engine_contended
);
criterion_main!(benches);
