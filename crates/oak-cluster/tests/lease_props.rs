//! Property tests for the heartbeat/lease state machine: under
//! arbitrary interleavings of heartbeat loss, message duplication,
//! delayed delivery, and per-node clock skew, **at most one node ever
//! holds a partition's lease in any given epoch**.
//!
//! The harness drives N pure [`Lease`] machines with independent clocks
//! (skew is just clocks advancing at different generated rates) and a
//! shared bag of undelivered messages that steps may deliver, drop, or
//! duplicate in any order. Every time any machine reports
//! `Role::Primary` the claim is recorded against its epoch; two
//! distinct claimants for one epoch is the failure. This is the
//! election-safety half of the cluster's losslessness argument — the
//! sim sweep covers the other half (acked events survive the winner).

use proptest::prelude::*;

use oak_cluster::{Lease, LeaseConfig, LeaseMsg, NodeId, Role};
use std::collections::BTreeMap;

/// One scripted step: `(kind, selector, amount)`.
/// kind 0 => advance node (selector % n)'s clock by `amount` ms + tick
/// kind 1 => deliver message (selector % bag)
/// kind 2 => drop message (selector % bag)
/// kind 3 => duplicate message (selector % bag)
type Step = (usize, usize, u64);

struct Bag {
    /// `(from, to, msg)` not yet delivered.
    pending: Vec<(NodeId, NodeId, LeaseMsg)>,
}

struct Claims {
    /// epoch → the one node allowed to be primary in it.
    by_epoch: BTreeMap<u64, NodeId>,
}

impl Claims {
    fn record(&mut self, node: NodeId, lease: &Lease) {
        if lease.role() != Role::Primary {
            return;
        }
        let holder = self.by_epoch.entry(lease.epoch()).or_insert(node);
        assert_eq!(
            *holder,
            node,
            "two leaseholders in epoch {}: {} and {}",
            lease.epoch(),
            holder,
            node
        );
    }
}

fn run_interleaving(n: usize, watermarks: &[u64], steps: &[Step], config: LeaseConfig) {
    let replicas: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut clocks = vec![0u64; n];
    let mut leases: Vec<Lease> = replicas
        .iter()
        .map(|&me| Lease::new(me, replicas.clone(), config, 0))
        .collect();
    let mut bag = Bag {
        pending: Vec::new(),
    };
    let mut claims = Claims {
        by_epoch: BTreeMap::new(),
    };

    for &(kind, selector, amount) in steps {
        match kind {
            0 => {
                let i = selector % n;
                // Clock skew: this node's clock advances while the
                // others stand still.
                clocks[i] += amount;
                let out = leases[i].tick(clocks[i], watermarks[i], 0);
                for (to, msg) in out {
                    bag.pending.push((replicas[i], to, msg));
                }
                claims.record(replicas[i], &leases[i]);
            }
            1 if !bag.pending.is_empty() => {
                let (from, to, msg) = bag.pending.remove(selector % bag.pending.len());
                let i = to.0 as usize;
                let out = leases[i].on_msg(clocks[i], from, &msg, watermarks[i]);
                for (peer, reply) in out {
                    bag.pending.push((to, peer, reply));
                }
                claims.record(to, &leases[i]);
            }
            2 if !bag.pending.is_empty() => {
                // Heartbeat / vote / ack loss.
                bag.pending.remove(selector % bag.pending.len());
            }
            3 if !bag.pending.is_empty() => {
                // Network duplication.
                let dup = bag.pending[selector % bag.pending.len()].clone();
                bag.pending.push(dup);
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Three replicas, arbitrary interleavings: one leaseholder per
    /// epoch, always.
    #[test]
    fn at_most_one_leaseholder_per_epoch_3(
        steps in prop::collection::vec((0usize..4, 0usize..64, 0u64..150), 0..400),
        w0 in 0u64..20, w1 in 0u64..20, w2 in 0u64..20,
    ) {
        run_interleaving(3, &[w0, w1, w2], &steps, LeaseConfig::default());
    }

    /// Five replicas (two simultaneous failures tolerated), same law.
    #[test]
    fn at_most_one_leaseholder_per_epoch_5(
        steps in prop::collection::vec((0usize..4, 0usize..64, 0u64..150), 0..400),
        w0 in 0u64..20, w1 in 0u64..20, w2 in 0u64..20,
        w3 in 0u64..20, w4 in 0u64..20,
    ) {
        run_interleaving(5, &[w0, w1, w2, w3, w4], &steps, LeaseConfig::default());
    }

    /// The safety law must hold for any timing configuration, not just
    /// the default: squeeze the timeouts until elections thrash.
    #[test]
    fn safety_survives_aggressive_timeouts(
        steps in prop::collection::vec((0usize..4, 0usize..64, 0u64..80), 0..400),
        heartbeat in 5u64..40,
        timeout in 20u64..120,
        lease in 40u64..200,
    ) {
        let config = LeaseConfig {
            heartbeat_ms: heartbeat,
            election_timeout_ms: timeout,
            jitter_step_ms: 13,
            lease_ms: lease,
            buggy_promotion: false,
        };
        run_interleaving(3, &[4, 9, 2], &steps, config);
    }
}
