//! The heartbeat/lease state machine: who is primary for a partition,
//! and when a follower may take over.
//!
//! One [`Lease`] instance lives on every replica of every partition. It
//! is a *pure* deterministic state machine — no clock, no sockets, no
//! randomness. Time arrives as a millisecond argument to [`Lease::tick`]
//! and [`Lease::on_msg`]; outgoing messages come back as an outbox the
//! caller delivers. That purity is what lets oak-sim replay arbitrary
//! heartbeat-loss/clock-skew interleavings and what the proptest suite
//! leans on.
//!
//! The protocol is a lease-flavored subset of Raft's leader election:
//!
//! - **Epochs.** Every primacy claim is scoped to an epoch. A node votes
//!   at most once per epoch ([`Lease::voted`] is persisted by the caller
//!   before any grant is sent), and winning needs a majority of the
//!   replica set — so two primaries can never share an epoch.
//! - **Election safety = durability.** A voter only grants to a
//!   candidate whose replication watermark is at least the voter's own.
//!   Any client-acked event was durable on a majority (that is what the
//!   replication watermark *means*), any election quorum intersects that
//!   majority, so the winner provably holds every acked event. Skipping
//!   that check is exactly the `buggy_promotion` fault the sim harness
//!   injects to prove the no-acked-loss invariant has teeth.
//! - **Deterministic timeouts.** Election deadlines are jittered by the
//!   node id, never by a random source, so elections converge without
//!   ties and a seed replays bit-identically.
//! - **Leases.** A primary that cannot hear a majority within
//!   `lease_ms` steps down on its own: a partitioned-away primary stops
//!   claiming the partition (and its edge starts answering 503) instead
//!   of serving stale state forever. A healed stale primary steps down
//!   the moment it hears a higher epoch.

use std::collections::BTreeSet;

use crate::NodeId;

/// A replica's role in one partition's replication group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Applying the primary's WAL stream; votes in elections.
    Follower,
    /// Ran an election timeout; soliciting votes for `epoch`.
    Candidate,
    /// Holds the lease for `epoch`: serves traffic, ships WAL.
    Primary,
}

impl Role {
    /// Stable lowercase name (health/stats surfaces).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Follower => "follower",
            Role::Candidate => "candidate",
            Role::Primary => "primary",
        }
    }
}

/// Timing (and fault-injection) knobs for the lease protocol.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Primary heartbeat cadence.
    pub heartbeat_ms: u64,
    /// Base follower election timeout (jitter added per node).
    pub election_timeout_ms: u64,
    /// Per-node deterministic jitter step added to the timeout.
    pub jitter_step_ms: u64,
    /// A primary unable to reach a majority for this long steps down.
    pub lease_ms: u64,
    /// FAULT INJECTION: grant votes without the watermark check. This is
    /// the deliberately broken failover the sim self-check must catch —
    /// never enable it outside the harness.
    pub buggy_promotion: bool,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            heartbeat_ms: 50,
            election_timeout_ms: 200,
            // Must exceed the coarsest tick/delivery cadence a deployment
            // uses (oak-sim advances in up-to-50ms steps): two followers
            // whose deadlines land inside one step both turn candidate,
            // split the epoch's votes, and re-collide every retry.
            jitter_step_ms: 67,
            lease_ms: 400,
            buggy_promotion: false,
        }
    }
}

/// Lease-protocol messages between replicas of one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseMsg {
    /// Primary liveness + the current replication watermark (commit).
    Heartbeat { epoch: u64, commit: u64 },
    /// Follower's response: proof of contact plus its durable watermark.
    HeartbeatAck { epoch: u64, acked: u64 },
    /// Candidate solicits a vote; `watermark` is its durable head.
    VoteRequest { epoch: u64, watermark: u64 },
    /// Voter granted `epoch` to the sender of the matching request.
    VoteRequestGranted { epoch: u64 },
}

/// The durable slice of lease state: epoch and the one-vote-per-epoch
/// record. The caller must persist this *before* delivering any message
/// the transition produced (a grant sent but not remembered is how two
/// primaries happen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Durable {
    /// Highest epoch this node has adopted.
    pub epoch: u64,
    /// The vote cast in `epoch`, if any.
    pub voted_for: Option<NodeId>,
}

/// The per-replica lease state machine. See the module docs.
#[derive(Debug)]
pub struct Lease {
    me: NodeId,
    /// Full replica set, `me` included.
    replicas: Vec<NodeId>,
    config: LeaseConfig,
    role: Role,
    epoch: u64,
    /// `(epoch, candidate)` of the vote cast in the current epoch.
    voted: Option<(u64, NodeId)>,
    /// Votes received while a candidate (self included).
    votes: BTreeSet<NodeId>,
    /// Follower/candidate: election deadline. Primary: next heartbeat.
    deadline_ms: u64,
    /// Primary: step down if no majority contact by this time.
    lease_until_ms: u64,
    /// Distinct peers heard from in the current lease window.
    contacts: BTreeSet<NodeId>,
    /// Last commit heard from a live primary (follower view).
    commit_hint: u64,
}

impl Lease {
    /// A fresh follower for one partition's replica set.
    pub fn new(me: NodeId, replicas: Vec<NodeId>, config: LeaseConfig, now_ms: u64) -> Lease {
        let mut lease = Lease {
            me,
            replicas,
            config,
            role: Role::Follower,
            epoch: 0,
            voted: None,
            votes: BTreeSet::new(),
            deadline_ms: 0,
            lease_until_ms: 0,
            contacts: BTreeSet::new(),
            commit_hint: 0,
        };
        lease.reset_election_deadline(now_ms);
        lease
    }

    /// Restores the durable slice after a restart. Everything else
    /// (role, votes-received, deadlines) is safely volatile.
    pub fn restore(&mut self, durable: Durable, now_ms: u64) {
        self.epoch = durable.epoch;
        self.voted = durable.voted_for.map(|node| (durable.epoch, node));
        self.reset_election_deadline(now_ms);
    }

    /// The durable slice to persist whenever it changes.
    pub fn durable(&self) -> Durable {
        Durable {
            epoch: self.epoch,
            voted_for: match self.voted {
                Some((epoch, node)) if epoch == self.epoch => Some(node),
                _ => None,
            },
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this node currently holds the partition lease.
    pub fn is_primary(&self) -> bool {
        self.role == Role::Primary
    }

    /// Last commit watermark heard from a primary (follower view).
    pub fn commit_hint(&self) -> u64 {
        self.commit_hint
    }

    fn majority(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.replicas.iter().copied().filter(move |&n| n != self.me)
    }

    fn reset_election_deadline(&mut self, now_ms: u64) {
        self.deadline_ms = now_ms
            + self.config.election_timeout_ms
            + u64::from(self.me.0) * self.config.jitter_step_ms;
    }

    /// Adopts a higher epoch seen on the wire: step down, clear votes.
    ///
    /// Deliberately does NOT touch the election deadline: whether the
    /// sender deserves to postpone our own candidacy depends on *why*
    /// the epoch moved. A refused `VoteRequest` from a stale candidate
    /// must not reset our clock, or a node whose WAL is behind ours —
    /// and which therefore can never win — would livelock the
    /// partition by electioneering on a shorter jitter forever while
    /// every electable node keeps deferring to its epoch bumps.
    fn adopt(&mut self, epoch: u64) {
        debug_assert!(epoch > self.epoch);
        self.epoch = epoch;
        self.role = Role::Follower;
        self.votes.clear();
    }

    /// Records proof of contact from a peer while primary; refreshes the
    /// lease once a majority (self included) has been heard this window.
    /// Also the seam the node layer uses to count `AppendAck`s as lease
    /// contact — any authenticated traffic from a follower proves reach.
    pub fn note_contact(&mut self, now_ms: u64, from: NodeId) {
        if self.role != Role::Primary {
            return;
        }
        self.contacts.insert(from);
        if self.contacts.len() + 1 >= self.majority() {
            self.lease_until_ms = now_ms + self.config.lease_ms;
            self.contacts.clear();
        }
    }

    /// Non-lease primary traffic (WAL `Append` / `Snapshot`) carries the
    /// primary's epoch; the node layer funnels it here so a stream of
    /// appends keeps a follower from electioneering even if a heartbeat
    /// is lost, and so a stale receiver adopts a newer epoch no matter
    /// which message type delivered the news first.
    pub fn observe_primary(&mut self, now_ms: u64, epoch: u64) {
        if epoch > self.epoch {
            self.adopt(epoch);
            self.reset_election_deadline(now_ms);
        }
        if epoch == self.epoch && self.role != Role::Primary {
            self.role = Role::Follower;
            self.reset_election_deadline(now_ms);
        }
    }

    /// Advances time: primaries heartbeat (and step down on an expired
    /// lease), followers/candidates start elections past their deadline.
    /// `my_watermark` is this node's durable applied head; `commit` is
    /// the replication watermark to advertise (primaries only).
    pub fn tick(&mut self, now_ms: u64, my_watermark: u64, commit: u64) -> Vec<(NodeId, LeaseMsg)> {
        let mut out = Vec::new();
        match self.role {
            Role::Primary => {
                if self.replicas.len() > 1 && now_ms >= self.lease_until_ms {
                    // Lost the majority for a full lease window: stop
                    // claiming the partition. Keep the epoch — a later
                    // election will move past it.
                    self.role = Role::Follower;
                    self.reset_election_deadline(now_ms);
                    return out;
                }
                if now_ms >= self.deadline_ms {
                    self.deadline_ms = now_ms + self.config.heartbeat_ms;
                    for peer in self.peers().collect::<Vec<_>>() {
                        out.push((
                            peer,
                            LeaseMsg::Heartbeat {
                                epoch: self.epoch,
                                commit,
                            },
                        ));
                    }
                }
            }
            Role::Follower | Role::Candidate => {
                if now_ms >= self.deadline_ms {
                    // Election: next epoch, vote for self, solicit.
                    self.epoch += 1;
                    self.voted = Some((self.epoch, self.me));
                    self.votes = BTreeSet::from([self.me]);
                    self.role = Role::Candidate;
                    self.reset_election_deadline(now_ms);
                    if self.votes.len() >= self.majority() {
                        self.win(now_ms);
                    } else {
                        for peer in self.peers().collect::<Vec<_>>() {
                            out.push((
                                peer,
                                LeaseMsg::VoteRequest {
                                    epoch: self.epoch,
                                    watermark: my_watermark,
                                },
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    fn win(&mut self, now_ms: u64) {
        self.role = Role::Primary;
        self.lease_until_ms = now_ms + self.config.lease_ms;
        self.contacts.clear();
        // Heartbeat immediately: the faster followers hear the new
        // epoch, the shorter the 503 window.
        self.deadline_ms = now_ms;
    }

    /// Handles one lease message. `my_watermark` is this node's durable
    /// applied head (the vote-grant comparison point).
    pub fn on_msg(
        &mut self,
        now_ms: u64,
        from: NodeId,
        msg: &LeaseMsg,
        my_watermark: u64,
    ) -> Vec<(NodeId, LeaseMsg)> {
        let mut out = Vec::new();
        match *msg {
            LeaseMsg::Heartbeat { epoch, commit } => {
                if epoch < self.epoch {
                    // A stale primary is still heartbeating (healed
                    // partition): answer with our epoch so it steps
                    // down on receipt.
                    out.push((
                        from,
                        LeaseMsg::HeartbeatAck {
                            epoch: self.epoch,
                            acked: my_watermark,
                        },
                    ));
                    return out;
                }
                if epoch > self.epoch {
                    self.adopt(epoch);
                }
                if self.role != Role::Primary {
                    self.role = Role::Follower;
                    self.commit_hint = self.commit_hint.max(commit);
                    self.reset_election_deadline(now_ms);
                    out.push((
                        from,
                        LeaseMsg::HeartbeatAck {
                            epoch,
                            acked: my_watermark,
                        },
                    ));
                }
                // A same-epoch heartbeat while *we* are primary is a
                // protocol violation (two winners in one epoch); we do
                // not self-heal it — the sim invariant must catch it.
            }
            LeaseMsg::HeartbeatAck { epoch, acked: _ } => {
                if epoch > self.epoch {
                    // Someone is ahead of us: our claim (if any) is
                    // stale. Step down and wait a full timeout before
                    // running — the real primary's heartbeat should
                    // reach us first.
                    self.adopt(epoch);
                    self.reset_election_deadline(now_ms);
                } else if epoch == self.epoch {
                    self.note_contact(now_ms, from);
                }
            }
            LeaseMsg::VoteRequest { epoch, watermark } => {
                if epoch > self.epoch {
                    // Adopt the epoch but keep our own election clock:
                    // if we refuse the vote below (the candidate's WAL
                    // is behind ours), our deadline must stay live so
                    // candidacy rotates to a node that can actually
                    // win. Granting resets it explicitly.
                    self.adopt(epoch);
                }
                let not_yet_voted = match self.voted {
                    Some((e, granted_to)) if e == self.epoch => granted_to == from,
                    _ => true,
                };
                // Election safety: the candidate must be at least as
                // durable as this voter, or acked events could be
                // elected away. `buggy_promotion` skips exactly this —
                // the fault the sim self-check proves it can catch.
                let durable_enough = self.config.buggy_promotion || watermark >= my_watermark;
                if epoch == self.epoch
                    && self.role != Role::Primary
                    && not_yet_voted
                    && durable_enough
                {
                    self.voted = Some((epoch, from));
                    self.role = Role::Follower;
                    // Granting refreshes the deadline so the grantee
                    // gets a full timeout to win before we run against
                    // it.
                    self.reset_election_deadline(now_ms);
                    out.push((from, LeaseMsg::VoteRequestGranted { epoch }));
                }
            }
            LeaseMsg::VoteRequestGranted { epoch } => {
                if epoch == self.epoch && self.role == Role::Candidate {
                    self.votes.insert(from);
                    if self.votes.len() >= self.majority() {
                        self.win(now_ms);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn pump(
        leases: &mut [Lease],
        now: u64,
        watermarks: &[u64],
        mut inbox: Vec<(NodeId, NodeId, LeaseMsg)>,
    ) {
        // Deliver until quiescent (no partitions in these unit tests).
        while let Some((from, to, msg)) = inbox.pop() {
            let i = to.0 as usize;
            for (peer, reply) in leases[i].on_msg(now, from, &msg, watermarks[i]) {
                inbox.push((to, peer, reply));
            }
        }
    }

    #[test]
    fn single_replica_elects_itself() {
        let mut lease = Lease::new(NodeId(0), ids(1), LeaseConfig::default(), 0);
        assert_eq!(lease.role(), Role::Follower);
        let out = lease.tick(1_000, 0, 0);
        assert!(out.is_empty());
        assert!(lease.is_primary());
        assert_eq!(lease.epoch(), 1);
    }

    #[test]
    fn three_replicas_elect_exactly_one_primary() {
        let config = LeaseConfig::default();
        let mut leases: Vec<Lease> = (0..3)
            .map(|i| Lease::new(NodeId(i), ids(3), config, 0))
            .collect();
        let watermarks = [0, 0, 0];
        for step in 1..=50 {
            let now = step * 20;
            let mut inbox = Vec::new();
            for (i, lease) in leases.iter_mut().enumerate() {
                for (to, msg) in lease.tick(now, watermarks[i], 0) {
                    inbox.push((NodeId(i as u32), to, msg));
                }
            }
            pump(&mut leases, now, &watermarks, inbox);
        }
        let primaries: Vec<u64> = leases
            .iter()
            .filter(|l| l.is_primary())
            .map(|l| l.epoch())
            .collect();
        assert_eq!(primaries.len(), 1, "exactly one primary must emerge");
    }

    #[test]
    fn vote_refused_to_less_durable_candidate() {
        let config = LeaseConfig::default();
        let mut voter = Lease::new(NodeId(1), ids(3), config, 0);
        // Candidate at watermark 3; voter has durable head 10.
        let out = voter.on_msg(
            0,
            NodeId(0),
            &LeaseMsg::VoteRequest {
                epoch: 1,
                watermark: 3,
            },
            10,
        );
        assert!(out.is_empty(), "must not grant to a less-durable candidate");
        // Same request with the buggy flag: the broken failover grants.
        let mut buggy = Lease::new(
            NodeId(1),
            ids(3),
            LeaseConfig {
                buggy_promotion: true,
                ..config
            },
            0,
        );
        let out = buggy.on_msg(
            0,
            NodeId(0),
            &LeaseMsg::VoteRequest {
                epoch: 1,
                watermark: 3,
            },
            10,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn one_vote_per_epoch() {
        let mut voter = Lease::new(NodeId(2), ids(3), LeaseConfig::default(), 0);
        let grant = voter.on_msg(
            0,
            NodeId(0),
            &LeaseMsg::VoteRequest {
                epoch: 1,
                watermark: 0,
            },
            0,
        );
        assert_eq!(grant.len(), 1);
        assert_eq!(voter.durable().voted_for, Some(NodeId(0)));
        // A second candidate in the same epoch gets nothing.
        let refuse = voter.on_msg(
            0,
            NodeId(1),
            &LeaseMsg::VoteRequest {
                epoch: 1,
                watermark: 99,
            },
            0,
        );
        assert!(refuse.is_empty());
        // But re-requests from the *same* candidate are re-granted
        // (grant messages can be lost).
        let regrant = voter.on_msg(
            0,
            NodeId(0),
            &LeaseMsg::VoteRequest {
                epoch: 1,
                watermark: 0,
            },
            0,
        );
        assert_eq!(regrant.len(), 1);
    }

    #[test]
    fn stale_primary_steps_down_on_higher_epoch() {
        let mut stale = Lease::new(NodeId(0), ids(1), LeaseConfig::default(), 0);
        stale.tick(1_000, 0, 0);
        assert!(stale.is_primary());
        // Heal: a higher-epoch ack arrives from the other side.
        stale.on_msg(
            2_000,
            NodeId(1),
            &LeaseMsg::HeartbeatAck { epoch: 9, acked: 0 },
            0,
        );
        assert!(!stale.is_primary());
        assert_eq!(stale.epoch(), 9);
    }

    #[test]
    fn primary_steps_down_without_majority_contact() {
        let config = LeaseConfig::default();
        let mut leases: Vec<Lease> = (0..3)
            .map(|i| Lease::new(NodeId(i), ids(3), config, 0))
            .collect();
        let watermarks = [0, 0, 0];
        for step in 1..=50 {
            let now = step * 20;
            let mut inbox = Vec::new();
            for (i, lease) in leases.iter_mut().enumerate() {
                for (to, msg) in lease.tick(now, watermarks[i], 0) {
                    inbox.push((NodeId(i as u32), to, msg));
                }
            }
            pump(&mut leases, now, &watermarks, inbox);
        }
        let primary = leases.iter().position(|l| l.is_primary()).unwrap();
        // Total silence: every message dropped from now on. The primary
        // must relinquish within a lease window.
        let mut now = 2_000;
        for _ in 0..100 {
            now += 20;
            let _ = leases[primary].tick(now, 0, 0);
        }
        assert!(
            !leases[primary].is_primary(),
            "partitioned primary must step down after its lease expires"
        );
    }

    #[test]
    fn restore_preserves_vote_across_restart() {
        let config = LeaseConfig::default();
        let mut voter = Lease::new(NodeId(1), ids(3), config, 0);
        voter.on_msg(
            0,
            NodeId(0),
            &LeaseMsg::VoteRequest {
                epoch: 4,
                watermark: 0,
            },
            0,
        );
        let durable = voter.durable();
        assert_eq!(durable.epoch, 4);
        assert_eq!(durable.voted_for, Some(NodeId(0)));
        // "Crash", restore, and verify a rival can't double-collect.
        let mut restarted = Lease::new(NodeId(1), ids(3), config, 0);
        restarted.restore(durable, 0);
        let refuse = restarted.on_msg(
            0,
            NodeId(2),
            &LeaseMsg::VoteRequest {
                epoch: 4,
                watermark: 99,
            },
            0,
        );
        assert!(refuse.is_empty(), "restored vote record must hold");
    }
}
