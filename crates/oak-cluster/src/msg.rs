//! Cluster wire messages and their codec.
//!
//! Everything replicas say to each other — lease traffic, WAL shipping,
//! snapshot transfer — is one [`Message`] inside one [`Envelope`].
//! Envelopes encode as JSON framed by the *same* `[len][crc32][payload]`
//! frame the WAL uses ([`oak_store::segment`]): frames are
//! self-delimiting and checksummed, so the TCP transport can stream them
//! back-to-back and a corrupt frame is detected, not applied. The sim
//! transport skips the bytes and passes [`Envelope`] values directly —
//! codec round-trip tests keep the two paths equivalent.
//!
//! Sequence numbers, epochs, and watermarks all fit comfortably below
//! 2^53, so they ride as native JSON numbers (the same choice the WAL
//! codec makes for `seq`).

use oak_core::events::SequencedEvent;
use oak_json::Value;
use oak_store::segment::{decode_frame_step, encode_frame, FrameStep};

use crate::lease::LeaseMsg;
use crate::NodeId;

/// One cluster message, scoped to a partition.
///
/// (No `PartialEq` — [`SequencedEvent`] carries compiled rule patterns
/// that do not compare; tests compare encoded frames instead.)
#[derive(Debug, Clone)]
pub enum Message {
    /// Lease-protocol traffic (heartbeats, votes).
    Lease { partition: u32, msg: LeaseMsg },
    /// Primary → follower: WAL events starting exactly at the
    /// follower's acked head, plus the current replication watermark.
    Append {
        partition: u32,
        epoch: u64,
        commit: u64,
        events: Vec<SequencedEvent>,
    },
    /// Follower → primary: durable applied head after an append.
    AppendAck {
        partition: u32,
        epoch: u64,
        acked: u64,
    },
    /// Primary → follower: full state transfer. `state` is the engine
    /// snapshot document; `watermark` its event-seq head.
    Snapshot {
        partition: u32,
        epoch: u64,
        watermark: u64,
        state: Value,
    },
    /// Follower → primary: snapshot installed up to `watermark`.
    SnapshotAck {
        partition: u32,
        epoch: u64,
        watermark: u64,
    },
}

impl Message {
    /// The partition this message concerns.
    pub fn partition(&self) -> u32 {
        match self {
            Message::Lease { partition, .. }
            | Message::Append { partition, .. }
            | Message::AppendAck { partition, .. }
            | Message::Snapshot { partition, .. }
            | Message::SnapshotAck { partition, .. } => *partition,
        }
    }
}

/// A routed message: sender, recipient, payload.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: Message,
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

impl Message {
    /// Encodes as a self-describing JSON object.
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.set("p", u64::from(self.partition()));
        match self {
            Message::Lease { msg, .. } => match *msg {
                LeaseMsg::Heartbeat { epoch, commit } => {
                    doc.set("t", "hb");
                    doc.set("epoch", epoch);
                    doc.set("commit", commit);
                }
                LeaseMsg::HeartbeatAck { epoch, acked } => {
                    doc.set("t", "hb_ack");
                    doc.set("epoch", epoch);
                    doc.set("acked", acked);
                }
                LeaseMsg::VoteRequest { epoch, watermark } => {
                    doc.set("t", "vote_req");
                    doc.set("epoch", epoch);
                    doc.set("watermark", watermark);
                }
                LeaseMsg::VoteRequestGranted { epoch } => {
                    doc.set("t", "vote_grant");
                    doc.set("epoch", epoch);
                }
            },
            Message::Append {
                epoch,
                commit,
                events,
                ..
            } => {
                doc.set("t", "append");
                doc.set("epoch", *epoch);
                doc.set("commit", *commit);
                let mut list = Value::array();
                for event in events {
                    list.push(event.to_value());
                }
                doc.set("events", list);
            }
            Message::AppendAck { epoch, acked, .. } => {
                doc.set("t", "append_ack");
                doc.set("epoch", *epoch);
                doc.set("acked", *acked);
            }
            Message::Snapshot {
                epoch,
                watermark,
                state,
                ..
            } => {
                doc.set("t", "snapshot");
                doc.set("epoch", *epoch);
                doc.set("watermark", *watermark);
                doc.set("state", state.clone());
            }
            Message::SnapshotAck {
                epoch, watermark, ..
            } => {
                doc.set("t", "snapshot_ack");
                doc.set("epoch", *epoch);
                doc.set("watermark", *watermark);
            }
        }
        doc
    }

    /// Decodes a message object.
    pub fn from_value(v: &Value) -> Result<Message, String> {
        let partition = u64_field(v, "p")? as u32;
        let msg = match str_field(v, "t")? {
            "hb" => Message::Lease {
                partition,
                msg: LeaseMsg::Heartbeat {
                    epoch: u64_field(v, "epoch")?,
                    commit: u64_field(v, "commit")?,
                },
            },
            "hb_ack" => Message::Lease {
                partition,
                msg: LeaseMsg::HeartbeatAck {
                    epoch: u64_field(v, "epoch")?,
                    acked: u64_field(v, "acked")?,
                },
            },
            "vote_req" => Message::Lease {
                partition,
                msg: LeaseMsg::VoteRequest {
                    epoch: u64_field(v, "epoch")?,
                    watermark: u64_field(v, "watermark")?,
                },
            },
            "vote_grant" => Message::Lease {
                partition,
                msg: LeaseMsg::VoteRequestGranted {
                    epoch: u64_field(v, "epoch")?,
                },
            },
            "append" => {
                let mut events = Vec::new();
                let list = v
                    .get("events")
                    .and_then(Value::as_array)
                    .ok_or("append without events array")?;
                for item in list {
                    events.push(SequencedEvent::from_value(item)?);
                }
                Message::Append {
                    partition,
                    epoch: u64_field(v, "epoch")?,
                    commit: u64_field(v, "commit")?,
                    events,
                }
            }
            "append_ack" => Message::AppendAck {
                partition,
                epoch: u64_field(v, "epoch")?,
                acked: u64_field(v, "acked")?,
            },
            "snapshot" => Message::Snapshot {
                partition,
                epoch: u64_field(v, "epoch")?,
                watermark: u64_field(v, "watermark")?,
                state: v.get("state").ok_or("snapshot without state")?.clone(),
            },
            "snapshot_ack" => Message::SnapshotAck {
                partition,
                epoch: u64_field(v, "epoch")?,
                watermark: u64_field(v, "watermark")?,
            },
            other => return Err(format!("unknown cluster message type {other:?}")),
        };
        Ok(msg)
    }
}

impl Envelope {
    /// Encodes the envelope as one CRC frame (the TCP unit of exchange).
    pub fn encode(&self) -> Vec<u8> {
        let mut doc = Value::object();
        doc.set("from", u64::from(self.from.0));
        doc.set("to", u64::from(self.to.0));
        doc.set("msg", self.msg.to_value());
        encode_frame(doc.to_string().as_bytes())
    }

    /// Classifies the bytes at `offset` as an incomplete, whole, or
    /// corrupt envelope frame. A stream reader keeps buffering on
    /// [`DecodeStep::Incomplete`] and drops the connection on
    /// [`DecodeStep::Corrupt`] — the two must not be conflated, or a
    /// single corrupt frame wedges the link forever (the reader waits
    /// for bytes that can never help while the peer's writes keep
    /// succeeding, so it never reconnects).
    pub fn decode_step(buf: &[u8], offset: usize) -> DecodeStep {
        let (payload, next) = match decode_frame_step(buf, offset) {
            FrameStep::Incomplete => return DecodeStep::Incomplete,
            FrameStep::Corrupt => return DecodeStep::Corrupt,
            FrameStep::Frame(payload, next) => (payload, next),
        };
        // The frame is whole and CRC-valid, so undecodable contents are
        // corruption (a buggy or hostile peer), never a short read.
        let parse = || -> Option<Envelope> {
            let text = std::str::from_utf8(payload).ok()?;
            let doc = oak_json::parse(text).ok()?;
            let from = NodeId(doc.get("from").and_then(Value::as_u64)? as u32);
            let to = NodeId(doc.get("to").and_then(Value::as_u64)? as u32);
            let msg = Message::from_value(doc.get("msg")?).ok()?;
            Some(Envelope { from, to, msg })
        };
        match parse() {
            Some(envelope) => DecodeStep::Frame(envelope, next),
            None => DecodeStep::Corrupt,
        }
    }

    /// Decodes one framed envelope starting at `offset`; returns the
    /// envelope and the offset one past the frame. `None` collapses
    /// [`DecodeStep::Incomplete`] and [`DecodeStep::Corrupt`] — callers
    /// that must tell them apart (the TCP read loop) use
    /// [`Envelope::decode_step`].
    pub fn decode(buf: &[u8], offset: usize) -> Option<(Envelope, usize)> {
        match Envelope::decode_step(buf, offset) {
            DecodeStep::Frame(envelope, next) => Some((envelope, next)),
            DecodeStep::Incomplete | DecodeStep::Corrupt => None,
        }
    }
}

/// Outcome of [`Envelope::decode_step`] on an in-progress byte stream.
#[derive(Debug)]
pub enum DecodeStep {
    /// A valid prefix of a frame still in flight: read more bytes.
    Incomplete,
    /// A whole envelope and the offset one past its frame.
    Frame(Envelope, usize),
    /// Bytes that can never decode (bad length, CRC mismatch, or a
    /// valid frame around undecodable JSON): drop the connection.
    Corrupt,
}

#[cfg(test)]
mod tests {
    use oak_core::events::EngineEvent;
    use oak_core::rule::RuleId;

    use super::*;

    fn roundtrip(msg: Message) {
        let envelope = Envelope {
            from: NodeId(3),
            to: NodeId(7),
            msg,
        };
        let bytes = envelope.encode();
        let (decoded, end) = Envelope::decode(&bytes, 0).expect("decodes");
        assert_eq!(end, bytes.len());
        // The codec is canonical (fixed field order), so re-encoding the
        // decoded envelope must reproduce the original frame exactly.
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Lease {
            partition: 2,
            msg: LeaseMsg::Heartbeat {
                epoch: 5,
                commit: 40,
            },
        });
        roundtrip(Message::Lease {
            partition: 2,
            msg: LeaseMsg::HeartbeatAck {
                epoch: 5,
                acked: 39,
            },
        });
        roundtrip(Message::Lease {
            partition: 0,
            msg: LeaseMsg::VoteRequest {
                epoch: 6,
                watermark: 41,
            },
        });
        roundtrip(Message::Lease {
            partition: 0,
            msg: LeaseMsg::VoteRequestGranted { epoch: 6 },
        });
        roundtrip(Message::Append {
            partition: 1,
            epoch: 6,
            commit: 40,
            events: vec![SequencedEvent {
                seq: 41,
                epoch: 6,
                event: EngineEvent::RuleRemoved { id: RuleId(9) },
            }],
        });
        roundtrip(Message::AppendAck {
            partition: 1,
            epoch: 6,
            acked: 42,
        });
        let mut state = Value::object();
        state.set("event_seq", 42u64);
        roundtrip(Message::Snapshot {
            partition: 3,
            epoch: 7,
            watermark: 42,
            state,
        });
        roundtrip(Message::SnapshotAck {
            partition: 3,
            epoch: 7,
            watermark: 42,
        });
    }

    #[test]
    fn truncated_frames_do_not_decode() {
        let envelope = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            msg: Message::AppendAck {
                partition: 0,
                epoch: 1,
                acked: 2,
            },
        };
        let bytes = envelope.encode();
        for cut in 0..bytes.len() {
            assert!(Envelope::decode(&bytes[..cut], 0).is_none());
        }
        // A flipped byte fails the CRC.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(Envelope::decode(&corrupt, 0).is_none());
    }

    #[test]
    fn decode_step_separates_short_reads_from_corruption() {
        let envelope = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            msg: Message::AppendAck {
                partition: 0,
                epoch: 1,
                acked: 2,
            },
        };
        let bytes = envelope.encode();
        // Every truncation could still complete: keep reading.
        for cut in 0..bytes.len() {
            assert!(matches!(
                Envelope::decode_step(&bytes[..cut], 0),
                DecodeStep::Incomplete
            ));
        }
        // A flipped payload byte fails the CRC: the link is poisoned.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            Envelope::decode_step(&corrupt, 0),
            DecodeStep::Corrupt
        ));
        // An impossible length can never complete, even with one byte
        // of header visible past the length field.
        let mut bad_len = bytes.clone();
        bad_len[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Envelope::decode_step(&bad_len, 0),
            DecodeStep::Corrupt
        ));
        // A CRC-valid frame around non-envelope JSON is corruption too,
        // not a short read.
        let junk = encode_frame(b"{\"not\":\"an envelope\"}");
        assert!(matches!(
            Envelope::decode_step(&junk, 0),
            DecodeStep::Corrupt
        ));
    }

    #[test]
    fn frames_stream_back_to_back() {
        let a = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            msg: Message::AppendAck {
                partition: 0,
                epoch: 1,
                acked: 2,
            },
        };
        let b = Envelope {
            from: NodeId(1),
            to: NodeId(0),
            msg: Message::Lease {
                partition: 0,
                msg: LeaseMsg::Heartbeat {
                    epoch: 1,
                    commit: 2,
                },
            },
        };
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let (first, mid) = Envelope::decode(&stream, 0).unwrap();
        let (second, end) = Envelope::decode(&stream, mid).unwrap();
        assert_eq!(first.encode(), a.encode());
        assert_eq!(second.encode(), b.encode());
        assert_eq!(end, stream.len());
    }
}
