//! Consistent-hash placement: users → partitions → replica sets.
//!
//! Placement is two pure functions, both keyed off the engine's own
//! shard hash ([`oak_core::engine::shard_key`]):
//!
//! 1. `partition_of(user)` — FNV-1a of the user id modulo the partition
//!    count. A user's partition is stable for the life of the topology,
//!    and users in the same partition always share a primary, so a
//!    user's rule state lives on exactly one replication group.
//! 2. [`Ring::nodes_for`] — a classic consistent-hash ring with virtual
//!    nodes: each node contributes `vnodes` points, a partition's
//!    replica set is the first `n` *distinct* nodes clockwise from the
//!    partition's hash. Adding or removing one node moves only the
//!    partitions whose arcs it owned (the Routing-Aware Partitioning
//!    motivation from PAPERS.md).
//!
//! [`Topology`] bundles the two with a replication factor and is the one
//! value every cluster participant (nodes, router, simulator) agrees on.

use oak_core::engine::shard_key;

use crate::NodeId;

/// Splitmix64 — mixes ring point indices into well-spread u64s.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over cluster nodes.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, node)` sorted by point; each node owns `vnodes` points.
    points: Vec<(u64, NodeId)>,
}

impl Ring {
    /// Builds a ring where each of `nodes` contributes `vnodes` points.
    pub fn new(nodes: &[NodeId], vnodes: usize) -> Ring {
        let mut points = Vec::with_capacity(nodes.len() * vnodes.max(1));
        for &node in nodes {
            for v in 0..vnodes.max(1) as u64 {
                points.push((mix((u64::from(node.0) << 32) | v), node));
            }
        }
        points.sort();
        Ring { points }
    }

    /// The first `n` distinct nodes clockwise from `key`'s position.
    pub fn nodes_for(&self, key: u64, n: usize) -> Vec<NodeId> {
        let mut picked: Vec<NodeId> = Vec::with_capacity(n);
        if self.points.is_empty() {
            return picked;
        }
        let start = self.points.partition_point(|(p, _)| *p < key);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !picked.contains(&node) {
                picked.push(node);
                if picked.len() == n {
                    break;
                }
            }
        }
        picked
    }
}

/// The cluster-wide placement contract: partition count, replication
/// factor, and the node ring. Every participant derives the same
/// placement from the same `Topology`.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeId>,
    partitions: u32,
    replication: usize,
    ring: Ring,
}

/// Virtual nodes per physical node on the ring.
const VNODES: usize = 16;

impl Topology {
    /// A topology over `nodes` with `partitions` replication groups of
    /// `replication` replicas each (capped at the node count).
    pub fn new(nodes: Vec<NodeId>, partitions: u32, replication: usize) -> Topology {
        let ring = Ring::new(&nodes, VNODES);
        let replication = replication.clamp(1, nodes.len().max(1));
        Topology {
            nodes,
            partitions: partitions.max(1),
            replication,
            ring,
        }
    }

    /// All cluster nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of partitions (replication groups).
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Replicas per partition.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The partition holding `user`'s state — the engine shard hash
    /// modulo the partition count.
    pub fn partition_of(&self, user: &str) -> u32 {
        (shard_key(user) % u64::from(self.partitions)) as u32
    }

    /// The replica set of `partition`, in ring (preference) order. The
    /// first entry is only a *preference*: the lease protocol, not the
    /// ring, decides who is primary.
    pub fn replicas(&self, partition: u32) -> Vec<NodeId> {
        self.ring
            .nodes_for(mix(u64::from(partition) ^ PARTITION_SALT), self.replication)
    }

    /// Whether `node` hosts (is a replica of) `partition`.
    pub fn hosts(&self, node: NodeId, partition: u32) -> bool {
        self.replicas(partition).contains(&node)
    }

    /// The partitions `node` hosts.
    pub fn partitions_of(&self, node: NodeId) -> Vec<u32> {
        (0..self.partitions)
            .filter(|&p| self.hosts(node, p))
            .collect()
    }
}

/// Fixed salt separating partition-placement hashes from node points.
const PARTITION_SALT: u64 = 0x6f61_6b5f_7061_7274; // "oak_part"

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn replica_sets_are_distinct_and_sized() {
        let topo = Topology::new(nodes(5), 8, 3);
        for p in 0..8 {
            let replicas = topo.replicas(p);
            assert_eq!(replicas.len(), 3);
            let mut dedup = replicas.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn replication_caps_at_node_count() {
        let topo = Topology::new(nodes(2), 4, 3);
        assert_eq!(topo.replication(), 2);
        for p in 0..4 {
            assert_eq!(topo.replicas(p).len(), 2);
        }
    }

    #[test]
    fn placement_is_deterministic_and_stable_under_node_add() {
        let before = Topology::new(nodes(4), 32, 2);
        let after = Topology::new(nodes(5), 32, 2);
        let mut moved = 0;
        for p in 0..32 {
            assert_eq!(before.replicas(p), before.replicas(p));
            if before.replicas(p) != after.replicas(p) {
                moved += 1;
            }
        }
        // Consistent hashing: adding one node must not reshuffle
        // everything. (Exact count depends on the ring, but "all of it
        // moved" would mean the ring is broken.)
        assert!(moved < 32, "adding a node moved every partition");
    }

    #[test]
    fn partition_of_matches_shard_key() {
        let topo = Topology::new(nodes(3), 7, 2);
        for user in ["u-1", "u-2", "alice", "bob"] {
            assert_eq!(
                topo.partition_of(user),
                (oak_core::engine::shard_key(user) % 7) as u32
            );
        }
    }
}
