//! One cluster node: engines, stores, leases, and WAL shipping for
//! every partition the node hosts.
//!
//! [`ClusterNode`] is sans-io like everything else in this crate: the
//! caller owns the clock and the wires. Two entry points drive it —
//! [`ClusterNode::tick`] (time passed) and [`ClusterNode::handle`] (a
//! message arrived) — and both return the envelopes to deliver. oak-sim
//! pumps them through its simulated network; `oak-serve --cluster`
//! pumps them through TCP. Identical bytes, identical decisions.
//!
//! # Replication protocol (per partition)
//!
//! - The primary stamps every emitted event with its lease epoch
//!   ([`Oak::set_epoch`]) and ships its WAL tail to each follower from
//!   that follower's acked head ([`OakStore::tail`]) — WAL shipping in
//!   the literal sense: the frames a follower applies are decoded from
//!   the same bytes recovery would replay.
//! - A follower applies strictly in sequence (a gap ends the batch),
//!   journals each event to its *own* WAL before applying it, and acks
//!   its durable head.
//! - The **replication watermark** (`commit`) is the highest sequence
//!   number durable on a majority of replicas. Client acks release at
//!   the watermark and never before — so "acked" *means* "survives any
//!   single failover", which is exactly the invariant oak-sim checks.
//! - On winning an election a primary snapshot-transfers its full
//!   engine state to every follower before shipping appends. This
//!   clears any divergence a deposed primary accumulated (its unacked
//!   tail is simply discarded by the install) without log rollback
//!   machinery; the cost — one state transfer per follower per epoch —
//!   is the deliberate simplicity trade, measured in EXPERIMENTS.md.
//! - The durable lease slice (epoch + vote) is persisted to the
//!   partition directory *before* any produced message is returned, so
//!   a crash-and-restart cannot double-vote inside one epoch.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use oak_core::engine::{Oak, OakConfig};
use oak_core::events::EventSink;
use oak_json::Value;
use oak_store::{OakStore, StorageBackend, StoreOptions, Tail};

use crate::lease::{Durable, Lease, LeaseConfig, Role};
use crate::msg::{Envelope, Message};
use crate::ring::Topology;
use crate::NodeId;

/// Node-level configuration.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// Engine configuration (every replica must agree).
    pub oak: OakConfig,
    /// Store durability policy. Replication acks assert durability, so
    /// cluster deployments should run `FsyncPolicy::Always`; a looser
    /// policy weakens "acked" to "applied, probably durable".
    pub store: StoreOptions,
    /// Lease/heartbeat timing.
    pub lease: LeaseConfig,
    /// Max events per `Append` message.
    pub append_batch: usize,
    /// Resend an unacked snapshot transfer after this long.
    pub snapshot_resend_ms: u64,
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions {
            oak: OakConfig::default(),
            store: StoreOptions {
                fsync: oak_store::FsyncPolicy::Always,
                ..StoreOptions::default()
            },
            lease: LeaseConfig::default(),
            append_batch: 64,
            snapshot_resend_ms: 200,
        }
    }
}

/// Why a request cannot be served here right now. The router maps this
/// to `503 Retry-After`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPrimary {
    /// The partition the request belongs to.
    pub partition: u32,
}

/// A point-in-time view of one hosted partition, for health/stats.
#[derive(Debug, Clone)]
pub struct PartitionStatus {
    pub partition: u32,
    pub role: Role,
    pub epoch: u64,
    /// This replica's applied (and journaled) head.
    pub head: u64,
    /// The replication watermark: primary's computed commit, or the
    /// last commit heard from a primary on a follower.
    pub commit: u64,
    /// Replication lag in events: on a primary, the worst follower's
    /// distance from head; on a follower, its own distance from the
    /// last heard commit.
    pub lag: u64,
}

/// Replication bookkeeping the primary keeps per partition.
#[derive(Debug, Default)]
struct Shipping {
    /// Follower → highest head acked under the current epoch.
    acked: BTreeMap<NodeId, u64>,
    /// Followers still owed the epoch-start snapshot transfer.
    needs_snapshot: BTreeSet<NodeId>,
    /// When each pending snapshot was last sent.
    snapshot_sent_ms: BTreeMap<NodeId, u64>,
}

/// One hosted partition: engine, store, lease, shipping state.
struct Partition {
    id: u32,
    oak: Arc<Oak>,
    store: Arc<OakStore>,
    lease: Lease,
    shipping: Shipping,
    /// Replication watermark (monotone). On a follower this is the
    /// highest commit heard from a live primary.
    commit: u64,
    /// Highest epoch whose snapshot transfer this replica installed —
    /// install at most once per epoch, or a duplicated transfer could
    /// regress an already-advanced follower.
    installed_epoch: u64,
}

impl Partition {
    fn head(&self) -> u64 {
        self.oak.event_seq()
    }
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("id", &self.id)
            .field("role", &self.lease.role())
            .field("epoch", &self.lease.epoch())
            .field("head", &self.head())
            .field("commit", &self.commit)
            .finish_non_exhaustive()
    }
}

/// A cluster node hosting every partition the topology assigns it.
#[derive(Debug)]
pub struct ClusterNode {
    id: NodeId,
    topology: Topology,
    options: NodeOptions,
    backend: Arc<dyn StorageBackend>,
    root: PathBuf,
    partitions: BTreeMap<u32, Partition>,
}

/// Name of the durable lease file inside a partition directory.
const LEASE_FILE: &str = "lease.json";

/// Name of the durable installed-snapshot-epoch file. Without it a
/// restarted follower would forget which epoch's snapshot it already
/// installed, and a duplicated `Snapshot` frame still in flight could
/// regress its engine below events it has journaled and acked.
const INSTALLED_FILE: &str = "installed.json";

impl ClusterNode {
    /// Boots (or re-boots after a crash) node `id`: recovers engine +
    /// store for every hosted partition from `root/part-PP/`, restores
    /// the durable lease slice, and starts everyone as a follower.
    pub fn new(
        id: NodeId,
        topology: Topology,
        backend: Arc<dyn StorageBackend>,
        root: impl Into<PathBuf>,
        options: NodeOptions,
        now_ms: u64,
    ) -> io::Result<ClusterNode> {
        let root = root.into();
        let mut partitions = BTreeMap::new();
        for partition in topology.partitions_of(id) {
            let dir = root.join(format!("part-{partition:02}"));
            let boot = OakStore::boot_with(backend.clone(), &dir, options.oak, options.store)?;
            let replicas = topology.replicas(partition);
            let mut lease = Lease::new(id, replicas, options.lease, now_ms);
            if let Some(durable) = read_lease_file(&*backend, &dir) {
                lease.restore(durable, now_ms);
            }
            partitions.insert(
                partition,
                Partition {
                    id: partition,
                    oak: Arc::new(boot.oak),
                    store: boot.store,
                    lease,
                    shipping: Shipping::default(),
                    commit: 0,
                    installed_epoch: read_installed_epoch(&*backend, &dir),
                },
            );
        }
        Ok(ClusterNode {
            id,
            topology,
            options,
            backend,
            root,
            partitions,
        })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The shared placement contract.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The partition holding `user`'s state.
    pub fn partition_of(&self, user: &str) -> u32 {
        self.topology.partition_of(user)
    }

    /// The partitions this node hosts.
    pub fn hosted_partitions(&self) -> Vec<u32> {
        self.partitions.keys().copied().collect()
    }

    /// The engine for `partition` **iff this node currently holds its
    /// lease** — the only handle through which client traffic (reports,
    /// page serves, rule changes) may reach an engine. Everything
    /// mutated through it is stamped with the lease epoch and ships to
    /// followers on the next tick.
    pub fn primary_engine(&self, partition: u32) -> Result<Arc<Oak>, NotPrimary> {
        match self.partitions.get(&partition) {
            Some(p) if p.lease.is_primary() => Ok(p.oak.clone()),
            _ => Err(NotPrimary { partition }),
        }
    }

    /// The local engine replica regardless of role — for observability
    /// and the sim oracle only, never for serving client traffic.
    pub fn replica_engine(&self, partition: u32) -> Option<Arc<Oak>> {
        self.partitions.get(&partition).map(|p| p.oak.clone())
    }

    /// The durable store behind a hosted partition, so a serving edge
    /// can drive snapshot compaction
    /// ([`oak_store::OakStore::maybe_snapshot`]) from its ingest path.
    pub fn partition_store(&self, partition: u32) -> Option<Arc<OakStore>> {
        self.partitions.get(&partition).map(|p| p.store.clone())
    }

    /// Current role for a hosted partition.
    pub fn role(&self, partition: u32) -> Option<Role> {
        self.partitions.get(&partition).map(|p| p.lease.role())
    }

    /// The replication watermark for a hosted partition: the highest
    /// sequence number durable on a majority. A client ack for an event
    /// batch ending at `seq` may be released once `commit >= seq`.
    pub fn commit(&self, partition: u32) -> Option<u64> {
        self.partitions.get(&partition).map(|p| p.commit)
    }

    /// Point-in-time status of every hosted partition, for
    /// health/stats surfaces.
    pub fn status(&self) -> Vec<PartitionStatus> {
        self.partitions
            .values()
            .map(|p| {
                let head = p.head();
                let lag = if p.lease.is_primary() {
                    self.followers(p.id)
                        .into_iter()
                        .map(|f| {
                            head.saturating_sub(p.shipping.acked.get(&f).copied().unwrap_or(0))
                        })
                        .max()
                        .unwrap_or(0)
                } else {
                    p.commit.saturating_sub(head)
                };
                PartitionStatus {
                    partition: p.id,
                    role: p.lease.role(),
                    epoch: p.lease.epoch(),
                    head,
                    commit: p.commit,
                    lag,
                }
            })
            .collect()
    }

    fn followers(&self, partition: u32) -> Vec<NodeId> {
        self.topology
            .replicas(partition)
            .into_iter()
            .filter(|&n| n != self.id)
            .collect()
    }

    /// Advances time for every hosted partition: lease ticks (
    /// elections, heartbeats, lease expiry) and, on primaries, WAL
    /// shipping and snapshot transfer.
    pub fn tick(&mut self, now_ms: u64) -> Vec<Envelope> {
        let mut out = Vec::new();
        let ids: Vec<u32> = self.partitions.keys().copied().collect();
        for partition in ids {
            self.tick_partition(now_ms, partition, &mut out);
        }
        out
    }

    fn tick_partition(&mut self, now_ms: u64, partition: u32, out: &mut Vec<Envelope>) {
        let followers = self.followers(partition);
        let me = self.id;
        let dir = self.partition_dir(partition);
        let backend = self.backend.clone();
        let append_batch = self.options.append_batch;
        let snapshot_resend_ms = self.options.snapshot_resend_ms;
        let Some(p) = self.partitions.get_mut(&partition) else {
            return;
        };

        let before = (p.lease.role(), p.lease.epoch(), p.lease.durable());
        let head = p.head();
        let lease_out = p.lease.tick(now_ms, head, p.commit);
        Self::apply_transition(p, &followers, before.0, before.1);
        if p.lease.durable() != before.2 {
            write_lease_file(&*backend, &dir, p.lease.durable());
        }
        for (to, msg) in lease_out {
            out.push(Envelope {
                from: me,
                to,
                msg: Message::Lease { partition, msg },
            });
        }

        if !p.lease.is_primary() {
            return;
        }
        let epoch = p.lease.epoch();
        // Snapshot transfers owed (epoch start, or a compacted tail).
        let pending: Vec<NodeId> = p.shipping.needs_snapshot.iter().copied().collect();
        let mut snapshot_doc: Option<(u64, Value)> = None;
        for follower in pending {
            let sent = p.shipping.snapshot_sent_ms.get(&follower).copied();
            if let Some(at) = sent {
                if now_ms.saturating_sub(at) < snapshot_resend_ms {
                    continue;
                }
            }
            let (watermark, state) = match &snapshot_doc {
                Some((w, doc)) => (*w, doc.clone()),
                None => {
                    let doc = p.oak.snapshot_json();
                    let w = p.head();
                    snapshot_doc = Some((w, doc.clone()));
                    (w, doc)
                }
            };
            p.shipping.snapshot_sent_ms.insert(follower, now_ms);
            out.push(Envelope {
                from: me,
                to: follower,
                msg: Message::Snapshot {
                    partition,
                    epoch,
                    watermark,
                    state,
                },
            });
        }
        // WAL shipping to caught-up followers.
        let head = p.head();
        for &follower in &followers {
            if p.shipping.needs_snapshot.contains(&follower) {
                continue;
            }
            let acked = p.shipping.acked.get(&follower).copied().unwrap_or(0);
            if acked >= head {
                continue;
            }
            match p.store.tail(acked) {
                Ok(Tail::Events(mut events)) => {
                    if events.is_empty() {
                        continue;
                    }
                    events.truncate(append_batch);
                    out.push(Envelope {
                        from: me,
                        to: follower,
                        msg: Message::Append {
                            partition,
                            epoch,
                            commit: p.commit,
                            events,
                        },
                    });
                }
                Ok(Tail::Compacted { .. }) => {
                    // The follower fell behind our own compaction
                    // horizon: back to snapshot transfer.
                    p.shipping.needs_snapshot.insert(follower);
                    p.shipping.snapshot_sent_ms.remove(&follower);
                }
                Err(_) => {}
            }
        }
        Self::recompute_commit(p, &followers);
    }

    /// Role/epoch transition bookkeeping around any lease step.
    fn apply_transition(p: &mut Partition, followers: &[NodeId], prev_role: Role, prev_epoch: u64) {
        let took_office =
            p.lease.is_primary() && (prev_role != Role::Primary || prev_epoch != p.lease.epoch());
        if took_office {
            // New epoch, new authority: stamp emitted events, forget
            // stale shipping state, owe every follower a snapshot so
            // any divergence they carry is overwritten.
            p.oak.set_epoch(p.lease.epoch());
            p.shipping.acked.clear();
            p.shipping.snapshot_sent_ms.clear();
            p.shipping.needs_snapshot = followers.iter().copied().collect();
        }
    }

    /// Recomputes the replication watermark: the highest seq durable on
    /// a majority (self head counts as one replica). Monotone.
    fn recompute_commit(p: &mut Partition, followers: &[NodeId]) {
        if !p.lease.is_primary() {
            return;
        }
        let mut heads: Vec<u64> = vec![p.head()];
        for follower in followers {
            heads.push(p.shipping.acked.get(follower).copied().unwrap_or(0));
        }
        heads.sort_unstable_by(|a, b| b.cmp(a));
        let majority = heads.len() / 2 + 1;
        let durable_on_majority = heads[majority - 1];
        p.commit = p.commit.max(durable_on_majority);
    }

    /// Handles one incoming envelope, returning replies to deliver.
    /// Envelopes addressed elsewhere or for unhosted partitions are
    /// dropped (a healing cluster sees plenty of those).
    pub fn handle(&mut self, now_ms: u64, envelope: &Envelope) -> Vec<Envelope> {
        let mut out = Vec::new();
        if envelope.to != self.id {
            return out;
        }
        let partition = envelope.msg.partition();
        if !self.partitions.contains_key(&partition) {
            return out;
        }
        let followers = self.followers(partition);
        let me = self.id;
        let dir = self.partition_dir(partition);
        let backend = self.backend.clone();
        let oak_config = self.options.oak;
        let p = self.partitions.get_mut(&partition).expect("checked");
        let from = envelope.from;

        let before = (p.lease.role(), p.lease.epoch(), p.lease.durable());
        match &envelope.msg {
            Message::Lease { msg, .. } => {
                let head = p.head();
                let replies = p.lease.on_msg(now_ms, from, msg, head);
                // Track the commit hint a heartbeat carries.
                if let crate::lease::LeaseMsg::Heartbeat { commit, .. } = msg {
                    if !p.lease.is_primary() {
                        p.commit = p.commit.max(*commit);
                    }
                }
                for (to, msg) in replies {
                    out.push(Envelope {
                        from: me,
                        to,
                        msg: Message::Lease { partition, msg },
                    });
                }
            }
            Message::Append {
                epoch,
                commit,
                events,
                ..
            } => {
                p.lease.observe_primary(now_ms, *epoch);
                if *epoch >= p.lease.epoch() && !p.lease.is_primary() {
                    p.commit = p.commit.max(*commit);
                    let errors_before = p.store.write_errors();
                    for event in events {
                        let head = p.head();
                        if event.seq < head {
                            continue;
                        }
                        if event.seq > head {
                            break; // gap: wait for backfill
                        }
                        // Journal to our own WAL *before* applying:
                        // what we ack must be what our recovery
                        // replays.
                        p.store.record(None, event);
                        if p.store.write_errors() > errors_before {
                            // The journal refused the write: applying
                            // anyway would ack an event our recovery
                            // cannot replay. Stop here — the ack below
                            // reports only the durable prefix and the
                            // primary re-ships from it.
                            break;
                        }
                        p.oak.apply_event(event);
                    }
                    out.push(Envelope {
                        from: me,
                        to: from,
                        msg: Message::AppendAck {
                            partition,
                            epoch: *epoch,
                            acked: p.head(),
                        },
                    });
                }
            }
            Message::AppendAck { epoch, acked, .. } => {
                if *epoch > p.lease.epoch() {
                    p.lease.observe_primary(now_ms, *epoch);
                } else if p.lease.is_primary() && *epoch == p.lease.epoch() {
                    // Assign, never max: a follower that regressed (a
                    // restart raced a duplicated stale snapshot, or its
                    // journal refused writes) must be able to *lower*
                    // its acked head, or every subsequent Append starts
                    // past its head — a permanent gap that wedges the
                    // replica. The commit watermark itself stays
                    // monotone in `recompute_commit`, and followers
                    // skip already-journaled seqs, so re-shipping an
                    // overlap is merely extra traffic.
                    p.shipping.acked.insert(from, *acked);
                    p.lease.note_contact(now_ms, from);
                    Self::recompute_commit(p, &followers);
                }
            }
            Message::Snapshot {
                epoch,
                watermark,
                state,
                ..
            } => {
                p.lease.observe_primary(now_ms, *epoch);
                if *epoch >= p.lease.epoch() && !p.lease.is_primary() {
                    let mut acked = None;
                    if *epoch > p.installed_epoch {
                        // Install: replace the engine wholesale. Any
                        // divergence this replica carried (it may be a
                        // deposed primary) is discarded here.
                        if let Ok(mut fresh) = Oak::from_snapshot_json(oak_config, state) {
                            fresh.set_event_sink(p.store.clone());
                            let fresh = Arc::new(fresh);
                            if p.store.snapshot(&fresh).is_ok() {
                                p.oak = fresh;
                                p.installed_epoch = *epoch;
                                // Persist before acking: the ack tells
                                // the primary this install happened, so
                                // a restart must not forget it.
                                write_installed_epoch(&*backend, &dir, *epoch);
                                acked = Some(*watermark);
                            }
                        }
                    } else {
                        // Duplicate transfer for an epoch we already
                        // installed: just re-ack our head.
                        acked = Some(p.head());
                    }
                    if let Some(watermark) = acked {
                        out.push(Envelope {
                            from: me,
                            to: from,
                            msg: Message::SnapshotAck {
                                partition,
                                epoch: *epoch,
                                watermark,
                            },
                        });
                    }
                }
            }
            Message::SnapshotAck {
                epoch, watermark, ..
            } => {
                if *epoch > p.lease.epoch() {
                    p.lease.observe_primary(now_ms, *epoch);
                } else if p.lease.is_primary() && *epoch == p.lease.epoch() {
                    p.shipping.needs_snapshot.remove(&from);
                    p.shipping.snapshot_sent_ms.remove(&from);
                    // Assign for the same reason as AppendAck: the
                    // follower reports where it actually is.
                    p.shipping.acked.insert(from, *watermark);
                    p.lease.note_contact(now_ms, from);
                    Self::recompute_commit(p, &followers);
                }
            }
        }
        Self::apply_transition(p, &followers, before.0, before.1);
        if p.lease.durable() != before.2 {
            // Persist before the replies (grants!) leave this node.
            write_lease_file(&*backend, &dir, p.lease.durable());
        }
        out
    }

    fn partition_dir(&self, partition: u32) -> PathBuf {
        self.root.join(format!("part-{partition:02}"))
    }
}

/// Reads the durable lease slice; `None` on absence or damage (the
/// protocol then conservatively restarts from epoch 0 — safe, because
/// the file is written before any grant is sent, and rename+dir-sync
/// makes that write atomic-or-absent).
fn read_lease_file(backend: &dyn StorageBackend, dir: &std::path::Path) -> Option<Durable> {
    let buf = backend.read(&dir.join(LEASE_FILE)).ok()?;
    let text = std::str::from_utf8(&buf).ok()?;
    let doc = oak_json::parse(text).ok()?;
    let epoch = doc.get("epoch").and_then(Value::as_u64)?;
    let voted_for = doc
        .get("voted_for")
        .and_then(Value::as_u64)
        .map(|n| NodeId(n as u32));
    Some(Durable { epoch, voted_for })
}

/// Persists the durable lease slice with the same write-rename-syncdir
/// dance snapshots use, so a crash leaves either the old record or the
/// new one, never a torn half.
fn write_lease_file(backend: &dyn StorageBackend, dir: &std::path::Path, durable: Durable) {
    let mut doc = Value::object();
    doc.set("epoch", durable.epoch);
    if let Some(node) = durable.voted_for {
        doc.set("voted_for", u64::from(node.0));
    }
    let tmp = dir.join("lease.json.tmp");
    let path = dir.join(LEASE_FILE);
    let write = || -> io::Result<()> {
        let mut file = backend.create(&tmp)?;
        file.write_all(doc.to_string().as_bytes())?;
        file.sync_data()?;
        backend.rename(&tmp, &path)?;
        backend.sync_dir(dir)
    };
    // A node that cannot persist its vote is a node about to crash in
    // the sim (SimFs fails everything once a crash fires); the swallow
    // here mirrors the WAL sink's policy of keeping the hot path alive.
    let _ = write();
}

/// Reads the installed-snapshot epoch; 0 on absence or damage. Losing
/// it is safe-but-slower in one direction only: the follower would
/// accept a *fresh* same-epoch transfer it already has. The dangerous
/// direction — forgetting and reinstalling a *stale* duplicate — is
/// what persisting this guards against, and a damaged file merely
/// reopens that window until the next install rewrites it.
fn read_installed_epoch(backend: &dyn StorageBackend, dir: &std::path::Path) -> u64 {
    let Ok(buf) = backend.read(&dir.join(INSTALLED_FILE)) else {
        return 0;
    };
    std::str::from_utf8(&buf)
        .ok()
        .and_then(|text| oak_json::parse(text).ok())
        .and_then(|doc| doc.get("epoch").and_then(Value::as_u64))
        .unwrap_or(0)
}

/// Persists the installed-snapshot epoch (write-rename-syncdir, same
/// atomicity dance as the lease file; failures swallowed likewise).
fn write_installed_epoch(backend: &dyn StorageBackend, dir: &std::path::Path, epoch: u64) {
    let mut doc = Value::object();
    doc.set("epoch", epoch);
    let tmp = dir.join("installed.json.tmp");
    let path = dir.join(INSTALLED_FILE);
    let write = || -> io::Result<()> {
        let mut file = backend.create(&tmp)?;
        file.write_all(doc.to_string().as_bytes())?;
        file.sync_data()?;
        backend.rename(&tmp, &path)?;
        backend.sync_dir(dir)
    };
    let _ = write();
}

// Keep the unused-field warning away until the TCP transport reads it.
impl ClusterNode {
    /// Node options in effect.
    pub fn options(&self) -> &NodeOptions {
        &self.options
    }
}

#[cfg(test)]
mod tests {
    use oak_core::rule::Rule;
    use oak_core::Instant;
    use oak_store::RealFs;

    use super::*;

    fn topology(nodes: u32, partitions: u32, replication: usize) -> Topology {
        Topology::new((0..nodes).map(NodeId).collect(), partitions, replication)
    }

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("oak-cluster-{tag}-{}", std::process::id()))
    }

    struct Harness {
        nodes: Vec<ClusterNode>,
    }

    impl Harness {
        fn new(tag: &str, n: u32, partitions: u32, replication: usize) -> Harness {
            let root = temp_root(tag);
            let _ = std::fs::remove_dir_all(&root);
            let topo = topology(n, partitions, replication);
            let nodes = (0..n)
                .map(|i| {
                    ClusterNode::new(
                        NodeId(i),
                        topo.clone(),
                        Arc::new(RealFs),
                        root.join(format!("node-{i}")),
                        NodeOptions::default(),
                        0,
                    )
                    .unwrap()
                })
                .collect();
            Harness { nodes }
        }

        /// Ticks every node then delivers all traffic to quiescence.
        fn settle(&mut self, now_ms: u64) {
            let mut inbox: Vec<Envelope> = Vec::new();
            for node in &mut self.nodes {
                inbox.extend(node.tick(now_ms));
            }
            let mut rounds = 0;
            while !inbox.is_empty() {
                rounds += 1;
                assert!(rounds < 100, "cluster message storm");
                let mut next = Vec::new();
                for envelope in &inbox {
                    let node = &mut self.nodes[envelope.to.0 as usize];
                    next.extend(node.handle(now_ms, envelope));
                }
                inbox = next;
            }
        }

        fn primary_of(&self, partition: u32) -> Option<usize> {
            let mut found = None;
            for (i, node) in self.nodes.iter().enumerate() {
                if node.role(partition) == Some(Role::Primary) {
                    assert!(found.is_none(), "two primaries for partition {partition}");
                    found = Some(i);
                }
            }
            found
        }
    }

    #[test]
    fn elects_replicates_and_commits() {
        let mut h = Harness::new("basic", 3, 1, 3);
        let mut now = 0;
        while h.primary_of(0).is_none() {
            now += 50;
            assert!(now < 10_000, "no primary elected");
            h.settle(now);
        }
        let primary = h.primary_of(0).unwrap();

        // Write through the primary; followers must converge and the
        // commit watermark must cover the write.
        let oak = h.nodes[primary].primary_engine(0).unwrap();
        let rule = Rule::remove(r#"<script src="http://slow.example/t.js">"#);
        let id = oak.add_rule(rule).unwrap();
        oak.force_activate(Instant::ZERO, "u-1", id);
        let head = oak.event_seq();

        for _ in 0..20 {
            now += 50;
            h.settle(now);
            if h.nodes[primary].commit(0) == Some(head) {
                break;
            }
        }
        assert_eq!(
            h.nodes[primary].commit(0),
            Some(head),
            "write never committed"
        );
        for (i, node) in h.nodes.iter().enumerate() {
            let replica = node.replica_engine(0).unwrap();
            assert_eq!(replica.event_seq(), head, "node {i} lagging");
            assert_eq!(replica.active_rules("u-1").len(), 1, "node {i} diverged");
        }
        // Events shipped under the primary's epoch carry that epoch.
        let status = h.nodes[primary].status();
        assert_eq!(status[0].role, Role::Primary);
        assert!(status[0].epoch >= 1);
    }

    #[test]
    fn non_primary_refuses_client_traffic() {
        let mut h = Harness::new("refuse", 3, 1, 3);
        let mut now = 0;
        while h.primary_of(0).is_none() {
            now += 50;
            h.settle(now);
        }
        let primary = h.primary_of(0).unwrap();
        for (i, node) in h.nodes.iter().enumerate() {
            if i == primary {
                assert!(node.primary_engine(0).is_ok());
            } else {
                assert!(matches!(
                    node.primary_engine(0),
                    Err(NotPrimary { partition: 0 })
                ));
            }
        }
    }

    #[test]
    fn failover_preserves_committed_writes() {
        let mut h = Harness::new("failover", 3, 1, 3);
        let mut now = 0;
        while h.primary_of(0).is_none() {
            now += 50;
            h.settle(now);
        }
        let old_primary = h.primary_of(0).unwrap();
        let oak = h.nodes[old_primary].primary_engine(0).unwrap();
        let id = oak
            .add_rule(Rule::remove(r#"<script src="http://slow.example/t.js">"#))
            .unwrap();
        oak.force_activate(Instant::ZERO, "u-1", id);
        let head = oak.event_seq();
        while h.nodes[old_primary].commit(0) != Some(head) {
            now += 50;
            assert!(now < 20_000, "write never committed");
            h.settle(now);
        }

        // Kill the primary (stop ticking it / delivering to it).
        let survivors: Vec<usize> = (0..3).filter(|&i| i != old_primary).collect();
        let mut new_primary = None;
        for _ in 0..200 {
            now += 50;
            let mut inbox = Vec::new();
            for &i in &survivors {
                inbox.extend(h.nodes[i].tick(now));
            }
            while !inbox.is_empty() {
                let mut next = Vec::new();
                for envelope in &inbox {
                    let to = envelope.to.0 as usize;
                    if to == old_primary {
                        continue; // dead node
                    }
                    next.extend(h.nodes[to].handle(now, envelope));
                }
                inbox = next;
            }
            new_primary = survivors
                .iter()
                .copied()
                .find(|&i| h.nodes[i].role(0) == Some(Role::Primary));
            if let Some(np) = new_primary {
                if h.nodes[np].commit(0).unwrap_or(0) >= head {
                    break;
                }
            }
        }
        let new_primary = new_primary.expect("no failover happened");
        assert_ne!(new_primary, old_primary);
        let promoted = h.nodes[new_primary].primary_engine(0).unwrap();
        assert!(
            promoted.event_seq() >= head,
            "promoted follower lost committed events"
        );
        assert_eq!(promoted.active_rules("u-1").len(), 1);
    }

    #[test]
    fn restarted_follower_ignores_stale_duplicated_snapshot() {
        let mut h = Harness::new("stale-snap", 2, 1, 2);
        let mut now = 0;
        while h.primary_of(0).is_none() {
            now += 50;
            assert!(now < 10_000, "no primary elected");
            h.settle(now);
        }
        let pri = h.primary_of(0).unwrap();
        let fol = 1 - pri;
        let epoch = h.nodes[pri].status()[0].epoch;

        // First write, fully replicated: its snapshot-equivalent state
        // is what a delayed duplicate transfer would carry.
        let oak = h.nodes[pri].primary_engine(0).unwrap();
        let id = oak
            .add_rule(Rule::remove(r#"<script src="http://slow.example/t.js">"#))
            .unwrap();
        oak.force_activate(Instant::ZERO, "u-1", id);
        let head1 = oak.event_seq();
        while h.nodes[pri].commit(0) != Some(head1)
            || h.nodes[fol].replica_engine(0).unwrap().event_seq() != head1
        {
            now += 50;
            assert!(now < 20_000, "first write never replicated");
            h.settle(now);
        }
        let stale_state = h.nodes[fol].replica_engine(0).unwrap().snapshot_json();

        // Second write, also journaled and acked by the follower.
        let id2 = oak
            .add_rule(Rule::remove(r#"<script src="http://slow2.example/u.js">"#))
            .unwrap();
        oak.force_activate(Instant::ZERO, "u-2", id2);
        let head2 = oak.event_seq();
        while h.nodes[fol].replica_engine(0).unwrap().event_seq() != head2 {
            now += 50;
            assert!(now < 30_000, "second write never replicated");
            h.settle(now);
        }

        // Restart the follower (its installed-epoch memory must be on
        // disk, not only in the dropped value)...
        let topo = topology(2, 1, 2);
        let root = temp_root("stale-snap").join(format!("node-{fol}"));
        h.nodes[fol] = ClusterNode::new(
            NodeId(fol as u32),
            topo,
            Arc::new(RealFs),
            root,
            NodeOptions::default(),
            now,
        )
        .unwrap();
        assert_eq!(
            h.nodes[fol].replica_engine(0).unwrap().event_seq(),
            head2,
            "restart lost journaled events"
        );

        // ...then hit it with a duplicated stale transfer for the same
        // epoch. It must be recognized as already installed: re-acked
        // at the current head, never re-applied.
        let stale = Envelope {
            from: NodeId(pri as u32),
            to: NodeId(fol as u32),
            msg: Message::Snapshot {
                partition: 0,
                epoch,
                watermark: head1,
                state: stale_state,
            },
        };
        let replies = h.nodes[fol].handle(now, &stale);
        assert_eq!(
            h.nodes[fol].replica_engine(0).unwrap().event_seq(),
            head2,
            "stale snapshot regressed a restarted follower"
        );
        let acked = replies.iter().find_map(|e| match e.msg {
            Message::SnapshotAck { watermark, .. } => Some(watermark),
            _ => None,
        });
        assert_eq!(
            acked,
            Some(head2),
            "duplicate transfer must re-ack the head"
        );
    }

    /// A [`StorageBackend`] whose writes and syncs start failing when
    /// the flag flips — the disk-full / dying-disk case on a follower.
    #[derive(Debug)]
    struct BrokenDisk {
        broken: Arc<std::sync::atomic::AtomicBool>,
    }

    #[derive(Debug)]
    struct BrokenFile {
        inner: Box<dyn oak_store::StorageFile>,
        broken: Arc<std::sync::atomic::AtomicBool>,
    }

    impl BrokenFile {
        fn check(&self) -> io::Result<()> {
            if self.broken.load(std::sync::atomic::Ordering::Relaxed) {
                Err(io::Error::other("broken disk"))
            } else {
                Ok(())
            }
        }
    }

    impl oak_store::StorageFile for BrokenFile {
        fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
            self.check()?;
            self.inner.write_all(buf)
        }

        fn sync_data(&mut self) -> io::Result<()> {
            self.check()?;
            self.inner.sync_data()
        }
    }

    impl StorageBackend for BrokenDisk {
        fn create_dir_all(&self, dir: &std::path::Path) -> io::Result<()> {
            RealFs.create_dir_all(dir)
        }

        fn dir_exists(&self, dir: &std::path::Path) -> bool {
            RealFs.dir_exists(dir)
        }

        fn list_dir(&self, dir: &std::path::Path) -> io::Result<Vec<String>> {
            RealFs.list_dir(dir)
        }

        fn read(&self, path: &std::path::Path) -> io::Result<Vec<u8>> {
            RealFs.read(path)
        }

        fn create(&self, path: &std::path::Path) -> io::Result<Box<dyn oak_store::StorageFile>> {
            Ok(Box::new(BrokenFile {
                inner: RealFs.create(path)?,
                broken: self.broken.clone(),
            }))
        }

        fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> io::Result<()> {
            RealFs.rename(from, to)
        }

        fn remove_file(&self, path: &std::path::Path) -> io::Result<()> {
            RealFs.remove_file(path)
        }

        fn sync_dir(&self, dir: &std::path::Path) -> io::Result<()> {
            RealFs.sync_dir(dir)
        }
    }

    #[test]
    fn follower_withholds_ack_while_its_journal_fails() {
        let root = temp_root("broken-disk");
        let _ = std::fs::remove_dir_all(&root);
        let topo = topology(2, 1, 2);
        let broken = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut nodes = vec![
            ClusterNode::new(
                NodeId(0),
                topo.clone(),
                Arc::new(RealFs),
                root.join("node-0"),
                NodeOptions::default(),
                0,
            )
            .unwrap(),
            ClusterNode::new(
                NodeId(1),
                topo,
                Arc::new(BrokenDisk {
                    broken: broken.clone(),
                }),
                root.join("node-1"),
                NodeOptions::default(),
                0,
            )
            .unwrap(),
        ];
        // Tick only node 0, so it deterministically starts (and wins)
        // the election; node 1 still answers votes and appends.
        let mut now = 0;
        let pump = |nodes: &mut Vec<ClusterNode>, now: u64| {
            let mut inbox = nodes[0].tick(now);
            while !inbox.is_empty() {
                let mut next = Vec::new();
                for envelope in &inbox {
                    let to = envelope.to.0 as usize;
                    next.extend(nodes[to].handle(now, envelope));
                }
                inbox = next;
            }
        };
        while nodes[0].role(0) != Some(Role::Primary) {
            now += 50;
            assert!(now < 10_000, "node 0 never took the lease");
            pump(&mut nodes, now);
        }

        // Healthy replication first.
        let oak = nodes[0].primary_engine(0).unwrap();
        let id = oak
            .add_rule(Rule::remove(r#"<script src="http://slow.example/t.js">"#))
            .unwrap();
        oak.force_activate(Instant::ZERO, "u-1", id);
        let head1 = oak.event_seq();
        while nodes[0].commit(0) != Some(head1) {
            now += 50;
            assert!(now < 20_000, "healthy write never committed");
            pump(&mut nodes, now);
        }

        // Break the follower's disk, then write more on the primary.
        broken.store(true, std::sync::atomic::Ordering::Relaxed);
        let id2 = oak
            .add_rule(Rule::remove(r#"<script src="http://slow2.example/u.js">"#))
            .unwrap();
        oak.force_activate(Instant::ZERO, "u-2", id2);
        let head2 = oak.event_seq();
        for _ in 0..10 {
            now += 50;
            pump(&mut nodes, now);
        }
        // The follower could not journal, so it neither applied nor
        // acked, and the commit watermark must not have advanced: with
        // two replicas a majority is both of them.
        assert_eq!(
            nodes[1].replica_engine(0).unwrap().event_seq(),
            head1,
            "follower applied events its journal rejected"
        );
        assert_eq!(
            nodes[0].commit(0),
            Some(head1),
            "commit advanced on a replica whose journaling failed"
        );

        // Heal the disk: shipping resumes from the durable prefix.
        broken.store(false, std::sync::atomic::Ordering::Relaxed);
        while nodes[0].commit(0) != Some(head2)
            || nodes[1].replica_engine(0).unwrap().event_seq() != head2
        {
            now += 50;
            assert!(now < 60_000, "healed follower never caught up");
            pump(&mut nodes, now);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn restart_recovers_state_and_lease() {
        let root = temp_root("restart");
        let _ = std::fs::remove_dir_all(&root);
        let topo = topology(1, 1, 1);
        let head;
        {
            let mut node = ClusterNode::new(
                NodeId(0),
                topo.clone(),
                Arc::new(RealFs),
                root.join("node-0"),
                NodeOptions::default(),
                0,
            )
            .unwrap();
            node.tick(1_000);
            assert_eq!(node.role(0), Some(Role::Primary));
            let oak = node.primary_engine(0).unwrap();
            oak.add_rule(Rule::remove(r#"<script src="http://slow.example/t.js">"#))
                .unwrap();
            head = oak.event_seq();
        }
        let node = ClusterNode::new(
            NodeId(0),
            topo,
            Arc::new(RealFs),
            root.join("node-0"),
            NodeOptions::default(),
            0,
        )
        .unwrap();
        let oak = node.replica_engine(0).unwrap();
        assert_eq!(oak.event_seq(), head, "events lost across restart");
        // The durable lease epoch survived: a restarted node can only
        // move *forward* in epochs.
        assert!(node.partitions[&0].lease.epoch() >= 1);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
