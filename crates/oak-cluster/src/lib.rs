//! Replication for Oak: N engine nodes, each hosting a slice of the
//! user space, surviving node death without losing an acked report.
//!
//! The paper's per-user rule state (Oak, ICDCS 2017 §4) is the unit
//! worth replicating: it is learned from weeks of client reports and is
//! exactly what a single-process deployment loses on a crash. This
//! crate stacks four pieces on top of the existing engine + WAL:
//!
//! - [`ring`] — consistent-hash placement. Users map to partitions by
//!   the engine's own shard hash; partitions map to replica sets (one
//!   primary + followers) on a virtual-node ring.
//! - [`lease`] — a deterministic heartbeat/lease protocol deciding who
//!   is primary. At most one leaseholder per partition per epoch; a
//!   vote is only granted to a candidate at least as durable as the
//!   voter, which is the whole losslessness argument.
//! - [`msg`] — the wire codec: CRC-framed JSON envelopes reusing the
//!   WAL's own frame format over the transport seam.
//! - [`node`] — [`node::ClusterNode`] glues an engine + store per
//!   hosted partition to the lease machine and ships WAL frames
//!   ([`oak_store::stream`]) to followers; client acks release at the
//!   replication watermark (majority-durable), never before.
//! - [`router`] — the thin layer in front of the serving edge: user →
//!   partition → current primary, or a 503 + Retry-After hint while an
//!   election is in flight.
//!
//! Everything is sans-io: time is an argument, messages are return
//! values. oak-sim drives the whole cluster deterministically (SimNet
//! beside SimFs/SimClock) and checks the invariants — no acked report
//! lost across any failover, one primary per epoch, stale primaries
//! step down — under seeded crash/partition schedules; `oak-serve
//! --cluster` drives the same code over TCP.

pub mod lease;
pub mod msg;
pub mod node;
pub mod ring;
pub mod router;

/// A cluster node's identity. Dense small integers — node `n` listens at
/// peer index `n` in `--peers` order, and sim nodes are 0..N.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

pub use lease::{Durable, Lease, LeaseConfig, LeaseMsg, Role};
pub use msg::{DecodeStep, Envelope, Message};
pub use node::{ClusterNode, NodeOptions, PartitionStatus};
pub use ring::{Ring, Topology};
pub use router::{RouteDecision, Router, RETRY_AFTER_HINT_SECS};
