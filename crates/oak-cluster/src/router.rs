//! The thin routing layer in front of the serving edge.
//!
//! A router maps a request's user to a partition (the shard hash) and
//! the partition to its *believed* current primary. The belief is
//! gossip, not authority: the lease protocol decides primacy, the
//! router just caches the latest `(epoch, node)` claim it has observed
//! (from heartbeats it can see, health probes, or redirect responses)
//! and always prefers the highest epoch. During a failover there is a
//! window with no credible primary — the router answers
//! [`RouteDecision::Unavailable`] and the edge translates that to
//! `503` + `Retry-After:` [`RETRY_AFTER_HINT_SECS`], which is exactly
//! the paper-faithful behavior: briefly refusing a report beats
//! acking it into a node that may not survive.
//!
//! Misrouting is safe by construction: a node that lost (or never had)
//! the lease refuses client traffic
//! ([`crate::node::ClusterNode::primary_engine`] errs), the edge
//! reports the refusal, and the router invalidates the entry.

use std::collections::BTreeMap;

use crate::ring::Topology;
use crate::NodeId;

/// `Retry-After` seconds suggested to clients during failover — one
/// election timeout rounded up: by the time a polite client retries,
/// the new primary is normally seated.
pub const RETRY_AFTER_HINT_SECS: u64 = 1;

/// Where a request should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Forward to this node, believed primary of the partition.
    Forward { partition: u32, node: NodeId },
    /// No credible primary right now: 503 + Retry-After.
    Unavailable { partition: u32 },
}

/// A primary-tracking router over a fixed topology.
#[derive(Debug, Clone)]
pub struct Router {
    topology: Topology,
    /// Partition → highest-epoch primary claim observed.
    primaries: BTreeMap<u32, (u64, NodeId)>,
}

impl Router {
    /// A router that has observed nothing yet (everything 503s until
    /// the first primary observation arrives).
    pub fn new(topology: Topology) -> Router {
        Router {
            topology,
            primaries: BTreeMap::new(),
        }
    }

    /// The placement contract this router routes over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Records a primacy observation: `node` claims (or is seen
    /// heartbeating as) primary of `partition` in `epoch`. Higher
    /// epochs win; equal-epoch claims refresh the entry.
    pub fn observe_primary(&mut self, partition: u32, epoch: u64, node: NodeId) {
        let entry = self.primaries.entry(partition).or_insert((epoch, node));
        if epoch >= entry.0 {
            *entry = (epoch, node);
        }
    }

    /// Drops the belief for `partition` — called when a forward bounced
    /// off a node that refused (stepped down, crashed, partitioned).
    /// Requests 503 until a fresh observation lands.
    pub fn invalidate(&mut self, partition: u32) {
        self.primaries.remove(&partition);
    }

    /// Routes a request for `user`.
    pub fn route(&self, user: &str) -> RouteDecision {
        let partition = self.topology.partition_of(user);
        self.route_partition(partition)
    }

    /// Routes a request already resolved to a partition.
    pub fn route_partition(&self, partition: u32) -> RouteDecision {
        match self.primaries.get(&partition) {
            Some(&(_, node)) => RouteDecision::Forward { partition, node },
            None => RouteDecision::Unavailable { partition },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(vec![NodeId(0), NodeId(1), NodeId(2)], 4, 3)
    }

    #[test]
    fn unknown_partition_is_unavailable() {
        let router = Router::new(topo());
        for user in ["u-1", "u-2", "u-3"] {
            assert!(matches!(
                router.route(user),
                RouteDecision::Unavailable { .. }
            ));
        }
    }

    #[test]
    fn higher_epoch_claims_win_and_stale_ones_lose() {
        let mut router = Router::new(topo());
        router.observe_primary(1, 3, NodeId(0));
        assert_eq!(
            router.route_partition(1),
            RouteDecision::Forward {
                partition: 1,
                node: NodeId(0)
            }
        );
        // A healed stale primary re-announcing an old epoch must not
        // steal the route back.
        router.observe_primary(1, 2, NodeId(2));
        assert_eq!(
            router.route_partition(1),
            RouteDecision::Forward {
                partition: 1,
                node: NodeId(0)
            }
        );
        router.observe_primary(1, 4, NodeId(1));
        assert_eq!(
            router.route_partition(1),
            RouteDecision::Forward {
                partition: 1,
                node: NodeId(1)
            }
        );
    }

    #[test]
    fn invalidate_forces_503_until_reobserved() {
        let mut router = Router::new(topo());
        router.observe_primary(0, 1, NodeId(2));
        router.invalidate(0);
        assert_eq!(
            router.route_partition(0),
            RouteDecision::Unavailable { partition: 0 }
        );
        router.observe_primary(0, 2, NodeId(1));
        assert!(matches!(
            router.route_partition(0),
            RouteDecision::Forward { .. }
        ));
    }
}
