//! Prometheus text exposition format v0.0.4 rendering.
//!
//! [`encode`] turns a list of [`Family`] snapshots into the classic
//! `# HELP` / `# TYPE` / sample-line format. Output is fully
//! deterministic: families are sorted by name, series by their (already
//! name-sorted) label sets, and numbers are formatted through one shared
//! routine — two scrapes of identical state are byte-identical.

use crate::metrics::HistogramSnapshot;

/// What kind of metric a family is; controls the `# TYPE` line and how
/// its series render.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonically increasing; renders one sample line per series.
    Counter,
    /// Free-moving value; renders one sample line per series.
    Gauge,
    /// Bucketed distribution; renders cumulative `_bucket` lines plus
    /// `_sum` and `_count`.
    Histogram,
}

impl FamilyKind {
    fn type_name(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

/// One series' value.
#[derive(Clone, Debug, PartialEq)]
pub enum SeriesValue {
    /// A counter or gauge reading.
    Scalar(f64),
    /// A histogram's state.
    Histogram(HistogramSnapshot),
}

/// One labeled series of a family.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
    /// The series value.
    pub value: SeriesValue,
}

/// A metric family: one name, one kind, any number of labeled series.
#[derive(Clone, Debug, PartialEq)]
pub struct Family {
    /// The family name, e.g. `oak_http_read_duration_us`.
    pub name: String,
    /// The `# HELP` text.
    pub help: String,
    /// The family kind.
    pub kind: FamilyKind,
    /// The series, each with a distinct label set.
    pub series: Vec<Series>,
}

/// Renders `families` as Prometheus text exposition format v0.0.4.
///
/// Families are sorted by name and each family's series by label set, so
/// the output is independent of input order.
pub fn encode(mut families: Vec<Family>) -> String {
    families.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for family in &families {
        out.push_str("# HELP ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(&escape_help(&family.help));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&family.name);
        out.push(' ');
        out.push_str(family.kind.type_name());
        out.push('\n');
        let mut series: Vec<&Series> = family.series.iter().collect();
        series.sort_by(|a, b| a.labels.cmp(&b.labels));
        for s in series {
            match &s.value {
                SeriesValue::Scalar(v) => {
                    sample_line(&mut out, &family.name, &s.labels, None, *v);
                }
                SeriesValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (index, bucket) in h.buckets.iter().enumerate() {
                        cumulative += bucket;
                        let le = h
                            .bounds
                            .get(index)
                            .map_or_else(|| "+Inf".to_owned(), |b| format_value(*b));
                        let mut labels = s.labels.clone();
                        labels.push(("le".to_owned(), le));
                        labels.sort();
                        sample_line(
                            &mut out,
                            &format!("{}_bucket", family.name),
                            &labels,
                            None,
                            cumulative as f64,
                        );
                    }
                    sample_line(
                        &mut out,
                        &format!("{}_sum", family.name),
                        &s.labels,
                        None,
                        h.sum,
                    );
                    sample_line(
                        &mut out,
                        &format!("{}_count", family.name),
                        &s.labels,
                        None,
                        cumulative as f64,
                    );
                }
            }
        }
    }
    out
}

fn sample_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    timestamp: Option<i64>,
    value: f64,
) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (index, (key, val)) in labels.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&escape_label(val));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_value(value));
    if let Some(ts) = timestamp {
        out.push(' ');
        out.push_str(&ts.to_string());
    }
    out.push('\n');
}

/// Formats a sample value: integers without a decimal point, everything
/// else via Rust's shortest-roundtrip `Display`, infinities as
/// `+Inf`/`-Inf`, NaN as `NaN` (the format's spellings).
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_owned()
        } else {
            "-Inf".to_owned()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}
