//! Lightweight span tracing.
//!
//! A request opens a trace with [`Tracer::begin`]; while the returned
//! [`TraceGuard`] lives, any code on the same thread can call [`span`]
//! to time a stage. Spans carry `(name, start, dur, depth)` and nest by
//! guard scope. Completed traces land in a bounded ring buffer
//! ([`Tracer::recent`]); traces slower than the tracer's threshold are
//! logged to stderr with their full span tree.
//!
//! The active trace lives in a thread local, so instrumented stages deep
//! in the stack (`oak-core`, `oak-html`) never need a handle threaded
//! through their APIs: [`span`] is free when no trace is active (one
//! thread-local read, no clock read, no allocation).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Clock;

/// Hard cap on spans per trace: a runaway stage can't balloon a trace.
/// Opens past the cap are counted in [`Trace::dropped`].
pub const MAX_SPANS_PER_TRACE: usize = 128;

/// One timed stage inside a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Stage name, e.g. `ingest` or `rewrite`.
    pub name: &'static str,
    /// Nesting depth below the trace root (0 = top level).
    pub depth: u16,
    /// Clock reading at open, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// A completed request trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Trace id, unique per tracer, assigned in `begin` order.
    pub id: u64,
    /// What the trace covers, e.g. `POST /oak/report`.
    pub name: String,
    /// Clock reading at begin, nanoseconds.
    pub start_ns: u64,
    /// Total duration, nanoseconds.
    pub dur_ns: u64,
    /// Spans in open order.
    pub spans: Vec<Span>,
    /// Span opens discarded after [`MAX_SPANS_PER_TRACE`] was reached.
    pub dropped: u32,
}

impl Trace {
    /// Renders the span tree as indented text — one line per span with
    /// start offset and duration in whole microseconds. Deterministic
    /// given deterministic clock readings; `oak-sim` byte-compares this
    /// across runs of one seed.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "trace {} {} dur={}us spans={}",
            self.id,
            self.name,
            us(self.dur_ns),
            self.spans.len()
        );
        if self.dropped > 0 {
            out.push_str(&format!(" dropped={}", self.dropped));
        }
        out.push('\n');
        for span in &self.spans {
            for _ in 0..=span.depth {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{} start=+{}us dur={}us\n",
                span.name,
                us(span.start_ns.saturating_sub(self.start_ns)),
                us(span.dur_ns)
            ));
        }
        out
    }
}

/// Whole nanoseconds → whole microseconds, rounding up (matches
/// [`crate::elapsed_us`]).
fn us(ns: u64) -> u64 {
    if ns == 0 {
        0
    } else {
        ns.div_ceil(1000)
    }
}

struct ActiveTrace {
    tracer: Arc<Tracer>,
    trace: Trace,
    depth: u16,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Collects traces into a ring buffer and hands out ids.
pub struct Tracer {
    clock: Clock,
    capacity: usize,
    slow_ns: u64,
    ring: Mutex<VecDeque<Trace>>,
    next_id: AtomicU64,
    completed: AtomicU64,
    slow: AtomicU64,
    dropped_spans: AtomicU64,
}

impl Tracer {
    /// A tracer reading `clock`, keeping the last `capacity` traces, and
    /// logging traces slower than `slow_ms` milliseconds (0 disables
    /// slow logging).
    pub fn new(clock: Clock, capacity: usize, slow_ms: u64) -> Arc<Tracer> {
        Arc::new(Tracer {
            clock,
            capacity: capacity.max(1),
            slow_ns: slow_ms.saturating_mul(1_000_000),
            ring: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(1),
            completed: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            dropped_spans: AtomicU64::new(0),
        })
    }

    /// Opens a trace named `name` on the current thread. While the guard
    /// lives, [`span`] calls on this thread record into it. Nested
    /// `begin` on one thread is a no-op (the inner guard is inert) —
    /// a request is one trace.
    pub fn begin(self: &Arc<Tracer>, name: &str) -> TraceGuard {
        let installed = ACTIVE.with(|active| {
            let mut active = active.borrow_mut();
            if active.is_some() {
                return false;
            }
            let now = (self.clock)();
            *active = Some(ActiveTrace {
                tracer: Arc::clone(self),
                trace: Trace {
                    id: self.next_id.fetch_add(1, Ordering::Relaxed),
                    name: name.to_owned(),
                    start_ns: now,
                    dur_ns: 0,
                    spans: Vec::new(),
                    dropped: 0,
                },
                depth: 0,
            });
            true
        });
        TraceGuard {
            installed,
            _not_send: PhantomData,
        }
    }

    /// The buffered traces, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        self.ring
            .lock()
            .expect("trace ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Traces completed (including ones since evicted from the ring).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Traces that exceeded the slow threshold.
    pub fn slow(&self) -> u64 {
        self.slow.load(Ordering::Relaxed)
    }

    /// Span opens dropped across all traces by the per-trace cap.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans.load(Ordering::Relaxed)
    }

    fn finish(&self, mut trace: Trace) {
        trace.dur_ns = (self.clock)().saturating_sub(trace.start_ns);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.dropped_spans
            .fetch_add(u64::from(trace.dropped), Ordering::Relaxed);
        if self.slow_ns > 0 && trace.dur_ns >= self.slow_ns {
            self.slow.fetch_add(1, Ordering::Relaxed);
            eprint!("[oak-obs] slow {}", trace.to_text());
        }
        let mut ring = self.ring.lock().expect("trace ring");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }
}

/// Closes the trace opened by [`Tracer::begin`] when dropped.
///
/// Not `Send`: the trace lives in this thread's thread local.
pub struct TraceGuard {
    installed: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.installed {
            return;
        }
        let done = ACTIVE.with(|active| active.borrow_mut().take());
        if let Some(done) = done {
            done.tracer.finish(done.trace);
        }
    }
}

/// Opens a span named `name` in the current thread's active trace; the
/// span closes when the guard drops. Inert (and nearly free) when no
/// trace is active.
pub fn span(name: &'static str) -> SpanGuard {
    let index = ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        let active = active.as_mut()?;
        if active.trace.spans.len() >= MAX_SPANS_PER_TRACE {
            active.trace.dropped += 1;
            return None;
        }
        let start = (active.tracer.clock)();
        active.trace.spans.push(Span {
            name,
            depth: active.depth,
            start_ns: start,
            dur_ns: 0,
        });
        active.depth += 1;
        Some(active.trace.spans.len() - 1)
    });
    SpanGuard {
        index,
        _not_send: PhantomData,
    }
}

/// Closes its span when dropped. Not `Send`.
pub struct SpanGuard {
    index: Option<usize>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(index) = self.index else { return };
        ACTIVE.with(|active| {
            let mut active = active.borrow_mut();
            if let Some(active) = active.as_mut() {
                let now = (active.tracer.clock)();
                active.depth = active.depth.saturating_sub(1);
                if let Some(span) = active.trace.spans.get_mut(index) {
                    span.dur_ns = now.saturating_sub(span.start_ns);
                }
            }
        });
    }
}
