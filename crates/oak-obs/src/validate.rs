//! A line-grammar validator for the Prometheus text exposition format.
//!
//! [`validate_exposition`] checks an entire scrape: every line must be a
//! well-formed `# HELP`, `# TYPE`, or sample line; `HELP`/`TYPE` must
//! precede their family's samples; a family's samples must be contiguous
//! and their label sets sorted and duplicate-free; histogram `_bucket`
//! series must be cumulative and end at `+Inf`. The conformance tests
//! and the `oak-metrics-lint` binary share this code, so "the tests
//! pass" and "the lint passes" can never drift apart.

use std::collections::HashSet;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// The sample name as written (histogram samples keep their
    /// `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in written order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses every sample line of an exposition, ignoring comments.
/// Use after [`validate_exposition`]; this does not validate.
pub fn parse_samples(text: &str) -> Vec<Sample> {
    text.lines()
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .filter_map(|line| parse_sample(line).ok())
        .collect()
}

/// Validates `text` as Prometheus text exposition format v0.0.4.
/// Returns every violation as `"line N: message"`; empty means valid.
pub fn validate_exposition(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    // Family currently being emitted: name, declared type, and state.
    let mut current: Option<FamilyState> = None;
    // Family names already closed out — reopening one is a violation.
    let mut finished: HashSet<String> = HashSet::new();

    for (number, line) in text.lines().enumerate() {
        let number = number + 1;
        macro_rules! fail {
            ($($arg:tt)*) => {
                errors.push(format!("line {number}: {}", format!($($arg)*)))
            };
        }

        if line.is_empty() {
            fail!("empty line");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (keyword, rest) = match rest.split_once(' ') {
                Some(pair) => pair,
                None => {
                    fail!("comment is neither HELP nor TYPE");
                    continue;
                }
            };
            match keyword {
                "HELP" => {
                    let name = rest.split(' ').next().unwrap_or("");
                    if !valid_name(name) {
                        fail!("bad metric name {name:?} in HELP");
                        continue;
                    }
                    if let Some(done) = current.take() {
                        done.close(&mut finished, &mut errors);
                    }
                    if finished.contains(name) {
                        fail!("family {name:?} reopened after other samples");
                    }
                    current = Some(FamilyState::new(name));
                }
                "TYPE" => {
                    let mut parts = rest.split(' ');
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if parts.next().is_some() {
                        fail!("trailing tokens after TYPE");
                    }
                    match &mut current {
                        Some(state) if state.name == name => {
                            if state.kind.is_some() {
                                fail!("duplicate TYPE for {name:?}");
                            } else if state.samples_seen {
                                fail!("TYPE for {name:?} after its samples");
                            }
                            match kind {
                                "counter" | "gauge" | "histogram" | "summary" | "untyped" => {
                                    state.kind = Some(kind.to_owned());
                                }
                                other => fail!("unknown metric type {other:?}"),
                            }
                        }
                        _ => fail!("TYPE for {name:?} without preceding HELP"),
                    }
                }
                other => fail!("unknown comment keyword {other:?}"),
            }
            continue;
        }
        if line.starts_with('#') {
            fail!("comment must start with \"# \"");
            continue;
        }

        let sample = match parse_sample(line) {
            Ok(sample) => sample,
            Err(msg) => {
                fail!("{msg}");
                continue;
            }
        };
        match &mut current {
            Some(state) if state.owns(&sample.name) => {
                state.observe(&sample, number, &mut errors);
            }
            _ => {
                fail!(
                    "sample {:?} outside its family's HELP/TYPE block",
                    sample.name
                );
            }
        }
    }
    if let Some(done) = current.take() {
        done.close(&mut finished, &mut errors);
    }
    errors
}

struct FamilyState {
    name: String,
    kind: Option<String>,
    samples_seen: bool,
    /// Label sets seen per sample name, to catch duplicates and order.
    seen: HashSet<String>,
    last_series: Option<String>,
    /// For histograms: per-series running `_bucket` state.
    bucket_last: Option<(String, f64, f64)>, // (series key, last le, last cumulative)
    bucket_closed: bool,
}

impl FamilyState {
    fn new(name: &str) -> FamilyState {
        FamilyState {
            name: name.to_owned(),
            kind: None,
            samples_seen: false,
            seen: HashSet::new(),
            last_series: None,
            bucket_last: None,
            bucket_closed: false,
        }
    }

    /// Whether `sample_name` belongs to this family, honoring histogram
    /// suffixes when the family is a histogram.
    fn owns(&self, sample_name: &str) -> bool {
        if sample_name == self.name {
            return true;
        }
        if self.kind.as_deref() == Some("histogram") {
            if let Some(stem) = sample_name
                .strip_suffix("_bucket")
                .or_else(|| sample_name.strip_suffix("_sum"))
                .or_else(|| sample_name.strip_suffix("_count"))
            {
                return stem == self.name;
            }
        }
        false
    }

    fn observe(&mut self, sample: &Sample, number: usize, errors: &mut Vec<String>) {
        let mut fail = |msg: String| errors.push(format!("line {number}: {msg}"));
        self.samples_seen = true;
        if self.kind.is_none() {
            fail(format!("sample for {:?} before its TYPE", self.name));
        }
        let mut names = HashSet::new();
        for (key, _) in &sample.labels {
            if !valid_label_name(key) {
                fail(format!("bad label name {key:?}"));
            }
            if !names.insert(key) {
                fail(format!("duplicate label {key:?}"));
            }
        }
        let sorted = sample.labels.windows(2).all(|pair| pair[0].0 <= pair[1].0);
        if !sorted {
            fail(format!("labels not sorted by name in {:?}", sample.name));
        }
        let key = series_key(sample);
        if !self.seen.insert(key.clone()) {
            fail(format!("duplicate series {key}"));
        }

        if self.kind.as_deref() == Some("histogram") {
            self.observe_histogram(sample, number, errors);
        } else {
            let non_le: String = series_key_without_le(sample);
            if let Some(last) = &self.last_series {
                if *last > non_le {
                    errors.push(format!(
                        "line {number}: series {non_le} out of order within family"
                    ));
                }
            }
            self.last_series = Some(non_le);
            if self.kind.as_deref() == Some("counter") && sample.value < 0.0 {
                errors.push(format!("line {number}: negative counter {key}"));
            }
        }
    }

    fn observe_histogram(&mut self, sample: &Sample, number: usize, errors: &mut Vec<String>) {
        let mut fail = |msg: String| errors.push(format!("line {number}: {msg}"));
        let series = series_key_without_le(sample);
        if sample.name.ends_with("_bucket") {
            let le = match sample.label("le") {
                Some("+Inf") => f64::INFINITY,
                Some(text) => match text.parse::<f64>() {
                    Ok(v) => v,
                    Err(_) => {
                        fail(format!("unparseable le {text:?}"));
                        return;
                    }
                },
                None => {
                    fail("_bucket sample without le label".to_owned());
                    return;
                }
            };
            match &mut self.bucket_last {
                Some((open, last_le, last_cum)) if *open == series => {
                    if le <= *last_le {
                        fail(format!("le {le} not ascending in {series}"));
                    }
                    if sample.value < *last_cum {
                        fail(format!("bucket counts not cumulative in {series}"));
                    }
                    *last_le = le;
                    *last_cum = sample.value;
                }
                Some((open, ..)) => {
                    fail(format!(
                        "bucket series {series} interleaved with open series {open}"
                    ));
                }
                None => {
                    if self.bucket_closed {
                        fail(format!(
                            "new bucket series {series} after _sum/_count of previous"
                        ));
                    }
                    self.bucket_last = Some((series, le, sample.value));
                }
            }
        } else if sample.name.ends_with("_sum") {
            match self.bucket_last.take() {
                Some((open, last_le, _)) => {
                    if open != series {
                        fail(format!("_sum for {series} but open buckets are {open}"));
                    }
                    if last_le.is_finite() {
                        fail(format!("bucket series {open} did not end at +Inf"));
                    }
                    self.bucket_closed = true;
                }
                None => fail(format!("_sum for {series} without preceding buckets")),
            }
        } else if sample.name.ends_with("_count") {
            if self.bucket_last.is_some() {
                fail(format!("_count for {series} before its +Inf bucket"));
            }
            if sample.value < 0.0 || sample.value.fract() != 0.0 {
                fail(format!("non-integral histogram count {}", sample.value));
            }
            self.bucket_closed = false;
        } else {
            fail(format!("bare sample {:?} in histogram family", sample.name));
        }
    }

    fn close(self, finished: &mut HashSet<String>, errors: &mut Vec<String>) {
        if !self.samples_seen {
            errors.push(format!(
                "family {:?} declared but has no samples",
                self.name
            ));
        }
        if let Some((open, ..)) = self.bucket_last {
            errors.push(format!(
                "bucket series {open} never closed with _sum/_count"
            ));
        }
        finished.insert(self.name);
    }
}

/// The full series identity: name plus every label.
fn series_key(sample: &Sample) -> String {
    let labels: Vec<String> = sample
        .labels
        .iter()
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect();
    format!("{}{{{}}}", sample.name, labels.join(","))
}

/// Series identity ignoring `le` — groups a histogram's bucket lines.
fn series_key_without_le(sample: &Sample) -> String {
    let labels: Vec<String> = sample
        .labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect();
    let stem = sample
        .name
        .strip_suffix("_bucket")
        .or_else(|| sample.name.strip_suffix("_sum"))
        .or_else(|| sample.name.strip_suffix("_count"))
        .unwrap_or(&sample.name);
    format!("{stem}{{{}}}", labels.join(","))
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses one sample line: `name[{labels}] value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let line = line.trim_end();
    let (name_end, has_labels) = match line.find(['{', ' ']) {
        Some(index) => (index, line.as_bytes()[index] == b'{'),
        None => return Err("sample line has no value".to_owned()),
    };
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let rest = if has_labels {
        let body_start = name_end + 1;
        let close = line[body_start..]
            .find('}')
            .ok_or_else(|| "unterminated label set".to_owned())?
            + body_start;
        let body = &line[body_start..close];
        if !body.is_empty() {
            for pair in split_labels(body)? {
                labels.push(pair);
            }
        }
        &line[close + 1..]
    } else {
        &line[name_end..]
    };
    let rest = rest.trim_start();
    let mut parts = rest.split(' ').filter(|part| !part.is_empty());
    let value_text = parts
        .next()
        .ok_or_else(|| "sample line has no value".to_owned())?;
    let value = parse_value(value_text)?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing tokens after sample value".to_owned());
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {other:?}")),
    }
}

/// Splits `k1="v1",k2="v2"` respecting escapes inside quoted values.
fn split_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label name".to_owned());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} value is not quoted"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label value")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated value for label {key:?}"));
        }
        labels.push((key, value));
        match chars.next() {
            None => break,
            Some(',') => {
                if chars.peek().is_none() {
                    break; // trailing comma is tolerated by scrapers
                }
            }
            Some(other) => return Err(format!("unexpected {other:?} after label value")),
        }
    }
    Ok(labels)
}
