//! Observability for the Oak stack.
//!
//! Oak's whole premise is making performance decisions from measured
//! timings; this crate is how the server measures *itself*. It provides,
//! with no dependencies beyond `std`:
//!
//! - [`Registry`]: a lock-striped home for labeled [`Counter`]s,
//!   [`Gauge`]s, and fixed-bucket log-scale [`Histogram`]s. Hot paths
//!   hold pre-resolved `Arc` handles, so recording is a couple of atomic
//!   operations and never touches a registry lock.
//! - [`expo`]: Prometheus text exposition format v0.0.4 rendering —
//!   `# HELP`/`# TYPE` headers, `_bucket`/`_sum`/`_count` histogram
//!   series, and stable (sorted) name and label ordering, so two scrapes
//!   of the same state are byte-identical.
//! - [`trace`]: lightweight span tracing. A request opens a trace, each
//!   instrumented stage pushes a `(name, start, dur)` span into a bounded
//!   per-trace vec via a thread-local, and completed traces land in a
//!   ring buffer; traces slower than a threshold are logged with their
//!   full span tree.
//! - [`validate`]: a line-grammar validator for the exposition format,
//!   shared by the conformance tests and the `oak-metrics-lint` binary.
//!
//! # Clocks
//!
//! Every duration this crate measures comes from a [`Clock`] the embedder
//! installs: wall time in production ([`wall_clock`]), simulated or
//! scripted time in tests and `oak-sim` ([`fixed_clock`], [`step_clock`]).
//! Nothing here ever consults a clock it wasn't handed, which is what
//! makes metric values and span trees reproducible under a seed.
//!
//! # Naming scheme
//!
//! Metric families follow `oak_<subsystem>_<name>_<unit>` — e.g.
//! `oak_http_read_duration_us`, `oak_wal_append_count`. Counters end in
//! `_total` or `_count`; histograms name their unit (`_us`).

pub mod expo;
pub mod metrics;
pub mod trace;
pub mod validate;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

pub use expo::{encode, Family, FamilyKind, Series, SeriesValue};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, DURATION_BOUNDS_US,
    MAX_SERIES_PER_FAMILY,
};
pub use trace::{span, Span, SpanGuard, Trace, TraceGuard, Tracer};
pub use validate::{parse_samples, validate_exposition, Sample};

/// A monotonic nanosecond clock, installed by the embedder.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Wall time: monotonic nanoseconds since the first call in this process.
///
/// The zero point is shared process-wide so every subsystem's timestamps
/// are mutually comparable.
pub fn wall_clock() -> Clock {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    Arc::new(|| {
        EPOCH
            .get_or_init(std::time::Instant::now)
            .elapsed()
            .as_nanos() as u64
    })
}

/// A clock frozen at `ns` — durations measured under it are all zero.
/// The conformance suite uses this to pin histogram contents exactly.
pub fn fixed_clock(ns: u64) -> Clock {
    Arc::new(move || ns)
}

/// A clock that advances by `step_ns` on every read, starting at zero.
/// Deterministic but non-degenerate: a stage bounded by two reads always
/// measures exactly `step_ns` per intervening read.
pub fn step_clock(step_ns: u64) -> Clock {
    let ticks = AtomicU64::new(0);
    Arc::new(move || ticks.fetch_add(1, Ordering::Relaxed) * step_ns)
}

/// Microseconds between two nanosecond clock readings, rounding up so a
/// nonzero duration never records as zero.
pub fn elapsed_us(start_ns: u64, end_ns: u64) -> f64 {
    let ns = end_ns.saturating_sub(start_ns);
    if ns == 0 {
        0.0
    } else {
        ns.div_ceil(1000) as f64
    }
}

#[cfg(test)]
mod tests;
