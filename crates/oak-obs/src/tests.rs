use std::sync::Arc;

use crate::expo::encode;
use crate::metrics::{
    Histogram, HistogramSnapshot, Registry, DURATION_BOUNDS_US, MAX_SERIES_PER_FAMILY,
};
use crate::trace::{span, Tracer, MAX_SPANS_PER_TRACE};
use crate::validate::{parse_samples, validate_exposition};
use crate::{elapsed_us, fixed_clock, step_clock};

use proptest::prelude::*;

// --- metrics ---

#[test]
fn counter_and_gauge_round_trip() {
    let registry = Registry::new();
    let hits = registry.counter("oak_test_hits_total", "hits", &[("kind", "a")]);
    hits.inc();
    hits.add(4);
    assert_eq!(hits.get(), 5);
    let depth = registry.gauge("oak_test_depth", "depth", &[]);
    depth.set(17);
    assert_eq!(depth.get(), 17);
    // Re-resolving the same series returns the same underlying atomic.
    let again = registry.counter("oak_test_hits_total", "hits", &[("kind", "a")]);
    again.inc();
    assert_eq!(hits.get(), 6);
}

#[test]
fn histogram_buckets_use_le_semantics() {
    let h = Histogram::new(&[1.0, 10.0, 100.0]);
    h.record(1.0); // le="1"
    h.record(1.5); // le="10"
    h.record(100.0); // le="100"
    h.record(1e9); // +Inf
    let snap = h.snapshot();
    assert_eq!(snap.buckets, vec![1, 1, 1, 1]);
    assert_eq!(snap.count(), 4);
    assert!((snap.sum - (1.0 + 1.5 + 100.0 + 1e9)).abs() < 1e-6);
}

#[test]
fn duration_bounds_are_ascending() {
    assert!(DURATION_BOUNDS_US.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn registry_label_order_is_canonical() {
    let registry = Registry::new();
    let a = registry.counter("oak_test_pairs_total", "p", &[("b", "2"), ("a", "1")]);
    let b = registry.counter("oak_test_pairs_total", "p", &[("a", "1"), ("b", "2")]);
    a.inc();
    b.inc();
    let families = registry.families();
    assert_eq!(families.len(), 1);
    assert_eq!(
        families[0].series.len(),
        1,
        "one series regardless of argument order"
    );
}

#[test]
#[should_panic(expected = "different kind")]
fn registry_rejects_kind_conflicts() {
    let registry = Registry::new();
    registry.counter("oak_test_conflict", "c", &[]);
    registry.gauge("oak_test_conflict", "g", &[]);
}

#[test]
fn series_cardinality_is_capped_per_family() {
    let registry = Registry::new();
    // Twice the cap in distinct label values — an unbounded input
    // domain (user names, client IPs) leaking into labels.
    for i in 0..2 * MAX_SERIES_PER_FAMILY {
        let user = format!("user-{i}");
        registry
            .counter("oak_test_flood_total", "f", &[("user", &user)])
            .inc();
    }
    let families = registry.families();
    let family = families
        .iter()
        .find(|f| f.name == "oak_test_flood_total")
        .expect("family registered");
    // The cap plus the single shared overflow series.
    assert_eq!(family.series.len(), MAX_SERIES_PER_FAMILY + 1);
    let overflow = family
        .series
        .iter()
        .find(|s| s.labels == vec![("overflow".to_owned(), "true".to_owned())])
        .expect("overflow series present");
    // Every post-cap increment landed on the overflow series: no
    // observation is silently dropped.
    match overflow.value {
        crate::expo::SeriesValue::Scalar(v) => {
            assert_eq!(v as usize, MAX_SERIES_PER_FAMILY);
        }
        _ => panic!("counter family exposes scalars"),
    }
}

#[test]
fn capped_families_keep_existing_series_live_and_distinct() {
    let registry = Registry::new();
    let first = registry.gauge("oak_test_capped", "g", &[("k", "first")]);
    for i in 0..MAX_SERIES_PER_FAMILY {
        let v = format!("v-{i}");
        registry.gauge("oak_test_capped", "g", &[("k", &v)]);
    }
    // Pre-cap series still resolve to their own atomics...
    let first_again = registry.gauge("oak_test_capped", "g", &[("k", "first")]);
    first.set(41);
    first_again.set(42);
    assert_eq!(first.get(), 42);
    // ...while distinct new label sets collapse into one shared series.
    let over_a = registry.gauge("oak_test_capped", "g", &[("k", "late-a")]);
    let over_b = registry.gauge("oak_test_capped", "g", &[("k", "late-b")]);
    over_a.set(7);
    assert_eq!(over_b.get(), 7, "post-cap label sets share the overflow");
}

#[test]
fn capped_histograms_share_overflow_buckets() {
    let registry = Registry::new();
    for i in 0..MAX_SERIES_PER_FAMILY {
        let v = format!("v-{i}");
        registry.histogram("oak_test_capped_us", "h", &[("k", &v)], &[1.0, 10.0]);
    }
    let over_a = registry.histogram("oak_test_capped_us", "h", &[("k", "late-a")], &[1.0, 10.0]);
    let over_b = registry.histogram("oak_test_capped_us", "h", &[("k", "late-b")], &[1.0, 10.0]);
    over_a.record(5.0);
    assert_eq!(over_b.snapshot().count(), 1);
}

// --- exposition ---

fn sample_registry() -> Registry {
    let registry = Registry::new();
    registry
        .counter(
            "oak_test_requests_total",
            "Requests seen.",
            &[("status", "2xx")],
        )
        .add(7);
    registry
        .counter(
            "oak_test_requests_total",
            "Requests seen.",
            &[("status", "5xx")],
        )
        .inc();
    registry
        .gauge("oak_test_users", "Tracked users.", &[])
        .set(3);
    let h = registry.histogram(
        "oak_test_latency_us",
        "Stage latency.",
        &[("stage", "parse")],
        &[10.0, 100.0],
    );
    h.record(5.0);
    h.record(50.0);
    h.record(500.0);
    registry
}

#[test]
fn exposition_matches_expected_text() {
    let text = encode(sample_registry().families());
    let expected = "\
# HELP oak_test_latency_us Stage latency.
# TYPE oak_test_latency_us histogram
oak_test_latency_us_bucket{le=\"10\",stage=\"parse\"} 1
oak_test_latency_us_bucket{le=\"100\",stage=\"parse\"} 2
oak_test_latency_us_bucket{le=\"+Inf\",stage=\"parse\"} 3
oak_test_latency_us_sum{stage=\"parse\"} 555
oak_test_latency_us_count{stage=\"parse\"} 3
# HELP oak_test_requests_total Requests seen.
# TYPE oak_test_requests_total counter
oak_test_requests_total{status=\"2xx\"} 7
oak_test_requests_total{status=\"5xx\"} 1
# HELP oak_test_users Tracked users.
# TYPE oak_test_users gauge
oak_test_users 3
";
    assert_eq!(text, expected);
}

#[test]
fn exposition_is_stable_across_scrapes() {
    let registry = sample_registry();
    assert_eq!(encode(registry.families()), encode(registry.families()));
}

#[test]
fn exposition_passes_its_own_validator() {
    let text = encode(sample_registry().families());
    let errors = validate_exposition(&text);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(parse_samples(&text).len(), 3 + 2 + 2 + 1);
}

#[test]
fn validator_rejects_malformed_lines() {
    let cases: &[(&str, &str)] = &[
        ("oak_x 1\n", "outside its family"),
        ("# HELP oak_x x\noak_x 1\n", "before its TYPE"),
        ("# HELP oak_x x\n# TYPE oak_x counter\noak_x{b=\"1\",a=\"2\"} 1\n", "not sorted"),
        ("# HELP oak_x x\n# TYPE oak_x counter\noak_x 1\noak_x 2\n", "duplicate series"),
        ("# HELP oak_x x\n# TYPE oak_x counter\noak_x -1\n", "negative counter"),
        ("# HELP oak_x x\n# TYPE oak_x bogus\noak_x 1\n", "unknown metric type"),
        ("# HELP oak_x x\n# TYPE oak_x counter\noak_x nope\n", "bad sample value"),
        ("# HELP oak_x x\n# TYPE oak_x counter\n\noak_x 1\n", "empty line"),
        (
            "# HELP oak_h h\n# TYPE oak_h histogram\noak_h_bucket{le=\"1\"} 1\noak_h_sum 1\noak_h_count 1\n",
            "did not end at +Inf",
        ),
        (
            "# HELP oak_h h\n# TYPE oak_h histogram\noak_h_bucket{le=\"1\"} 2\noak_h_bucket{le=\"+Inf\"} 1\noak_h_sum 1\noak_h_count 1\n",
            "not cumulative",
        ),
    ];
    for (text, needle) in cases {
        let errors = validate_exposition(text);
        assert!(
            errors.iter().any(|e| e.contains(needle)),
            "expected {needle:?} in {errors:?} for {text:?}"
        );
    }
}

#[test]
fn validator_accepts_escaped_labels() {
    let text = "# HELP oak_x x\n# TYPE oak_x counter\noak_x{path=\"a\\\"b\\\\c\\nd\"} 1\n";
    let errors = validate_exposition(text);
    assert!(errors.is_empty(), "{errors:?}");
    let samples = parse_samples(text);
    assert_eq!(samples[0].label("path"), Some("a\"b\\c\nd"));
}

// --- tracing ---

#[test]
fn spans_nest_and_land_in_the_ring() {
    let tracer = Tracer::new(step_clock(1_000_000), 4, 0);
    {
        let _t = tracer.begin("GET /page");
        let _outer = span("handle");
        {
            let _inner = span("rewrite");
        }
    }
    let traces = tracer.recent();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.name, "GET /page");
    let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
    assert_eq!(names, vec!["handle", "rewrite"]);
    assert_eq!(trace.spans[0].depth, 0);
    assert_eq!(trace.spans[1].depth, 1);
    // step_clock: begin=0, handle open=1ms, rewrite open=2ms, rewrite
    // close=3ms, handle close=4ms, finish=5ms.
    assert_eq!(trace.spans[1].dur_ns, 1_000_000);
    assert_eq!(trace.spans[0].dur_ns, 3_000_000);
    assert_eq!(trace.dur_ns, 5_000_000);
    assert_eq!(tracer.completed(), 1);
}

#[test]
fn span_without_active_trace_is_inert() {
    let tracer = Tracer::new(fixed_clock(0), 4, 0);
    {
        let _s = span("orphan");
    }
    assert_eq!(tracer.recent().len(), 0);
    assert_eq!(tracer.completed(), 0);
}

#[test]
fn ring_evicts_oldest_and_caps_spans() {
    let tracer = Tracer::new(fixed_clock(0), 2, 0);
    for i in 0..3 {
        let _t = tracer.begin(&format!("t{i}"));
    }
    let names: Vec<String> = tracer.recent().into_iter().map(|t| t.name).collect();
    assert_eq!(names, vec!["t1", "t2"]);

    let _t = tracer.begin("big");
    let guards: Vec<_> = (0..MAX_SPANS_PER_TRACE + 5).map(|_| span("s")).collect();
    drop(guards);
    drop(_t);
    let traces = tracer.recent();
    let big = traces.last().unwrap();
    assert_eq!(big.spans.len(), MAX_SPANS_PER_TRACE);
    assert_eq!(big.dropped, 5);
    assert_eq!(tracer.dropped_spans(), 5);
}

#[test]
fn slow_traces_are_counted() {
    let tracer = Tracer::new(step_clock(10_000_000), 4, 5); // every read +10ms, slow ≥ 5ms
    {
        let _t = tracer.begin("slow one");
    }
    assert_eq!(tracer.slow(), 1);
}

#[test]
fn trace_text_is_deterministic() {
    let render = || {
        let tracer = Tracer::new(step_clock(1_000_000), 4, 0);
        {
            let _t = tracer.begin("POST /oak/report");
            let _a = span("ingest");
            let _b = span("detect");
        }
        tracer.recent()[0].to_text()
    };
    let text = render();
    assert_eq!(text, render());
    assert!(text.starts_with("trace 1 POST /oak/report dur=5000us spans=2\n"));
    assert!(text.contains("\n  ingest start=+1000us dur=3000us\n"));
    assert!(text.contains("\n    detect start=+2000us dur=1000us\n"));
}

#[test]
fn elapsed_us_rounds_up_nonzero() {
    assert_eq!(elapsed_us(0, 0), 0.0);
    assert_eq!(elapsed_us(0, 1), 1.0);
    assert_eq!(elapsed_us(0, 999), 1.0);
    assert_eq!(elapsed_us(0, 1_000), 1.0);
    assert_eq!(elapsed_us(0, 1_001), 2.0);
    assert_eq!(elapsed_us(5, 3), 0.0, "clock going backwards saturates");
}

// --- property tests (satellite b) ---

/// Strategy pieces: values in a range wide enough to exercise every
/// bucket of [`DURATION_BOUNDS_US`] including the overflow slot.
fn record_all(values: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new(DURATION_BOUNDS_US);
    for v in values {
        h.record(*v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(0.0f64..1e8, 0..40),
        b in proptest::collection::vec(0.0f64..1e8, 0..40),
    ) {
        let (sa, sb) = (record_all(&a), record_all(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab.buckets, &ba.buckets);
        prop_assert!((ab.sum - ba.sum).abs() <= 1e-6 * (1.0 + ab.sum.abs()));
    }

    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0.0f64..1e8, 0..25),
        b in proptest::collection::vec(0.0f64..1e8, 0..25),
        c in proptest::collection::vec(0.0f64..1e8, 0..25),
    ) {
        let (sa, sb, sc) = (record_all(&a), record_all(&b), record_all(&c));
        let mut left = sa.clone(); // (a+b)+c
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone(); // a+(b+c)
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left.buckets, &right.buckets);
        prop_assert!((left.sum - right.sum).abs() <= 1e-6 * (1.0 + left.sum.abs()));
    }

    #[test]
    fn histogram_count_matches_buckets_and_bounds_sum(
        values in proptest::collection::vec(0.0f64..1e8, 0..60),
    ) {
        let snap = record_all(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.count(), snap.buckets.iter().sum::<u64>());
        let expected: f64 = values.iter().sum();
        prop_assert!((snap.sum - expected).abs() <= 1e-6 * (1.0 + expected.abs()));
    }

    #[test]
    fn histogram_quantile_is_monotone_in_q(
        values in proptest::collection::vec(0.0f64..1e8, 1..60),
        qs in proptest::collection::vec(0.0f64..1.0, 2..8),
    ) {
        let snap = record_all(&values);
        let mut qs = qs;
        qs.push(0.0);
        qs.push(1.0);
        qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let quantiles: Vec<f64> = qs.iter().map(|q| snap.quantile(*q).unwrap()).collect();
        for pair in quantiles.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles not monotone: {:?}", quantiles);
        }
    }

    #[test]
    fn recorded_value_never_below_its_bucket_lower_bound(v in 0.0f64..1e8) {
        let h = Histogram::new(DURATION_BOUNDS_US);
        h.record(v);
        let snap = h.snapshot();
        let index = snap.buckets.iter().position(|b| *b == 1).unwrap();
        // Lower bound of bucket i is bounds[i-1] (exclusive); the value
        // must sit strictly above it and at or below bounds[i].
        if index > 0 {
            prop_assert!(v > DURATION_BOUNDS_US[index - 1]);
        }
        if index < DURATION_BOUNDS_US.len() {
            prop_assert!(v <= DURATION_BOUNDS_US[index]);
        }
    }
}

// --- cross-cutting: registry + encode + validator under concurrency ---

#[test]
fn concurrent_recording_is_torn_read_free() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("oak_test_spin_total", "spins", &[]);
    let hist = registry.histogram("oak_test_spin_us", "spin time", &[], DURATION_BOUNDS_US);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let (counter, hist, stop) = (Arc::clone(&counter), Arc::clone(&hist), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                counter.inc();
                hist.record((n % 1000) as f64 + 1.0);
                n += 1;
            }
        })
    };
    let mut last_count = 0u64;
    for _ in 0..200 {
        let families = registry.families();
        let text = encode(families);
        let errors = validate_exposition(&text);
        assert!(errors.is_empty(), "{errors:?}");
        let samples = parse_samples(&text);
        let count = samples
            .iter()
            .find(|s| s.name == "oak_test_spin_us_count")
            .unwrap()
            .value as u64;
        assert!(count >= last_count, "histogram count went backwards");
        last_count = count;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}
