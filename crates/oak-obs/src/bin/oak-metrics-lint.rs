//! Validates a Prometheus text exposition scrape.
//!
//! Usage: `oak-metrics-lint [--min-families N] [FILE]`
//!
//! Reads FILE (or stdin when omitted), runs the same line-grammar
//! validator the conformance tests use, and exits nonzero on any
//! violation — CI pipes a live `/oak/metrics` scrape through this.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut min_families = 0usize;
    let mut path: Option<String> = None;
    let mut arguments = std::env::args().skip(1);
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--min-families" => {
                let Some(n) = arguments.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--min-families needs a number");
                    return ExitCode::from(2);
                };
                min_families = n;
            }
            "--help" | "-h" => {
                println!("usage: oak-metrics-lint [--min-families N] [FILE]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let text = match &path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("oak-metrics-lint: {path}: {error}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut text = String::new();
            if let Err(error) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("oak-metrics-lint: stdin: {error}");
                return ExitCode::from(2);
            }
            text
        }
    };

    let errors = oak_obs::validate_exposition(&text);
    for error in &errors {
        eprintln!("oak-metrics-lint: {error}");
    }
    let families = text
        .lines()
        .filter(|line| line.starts_with("# TYPE "))
        .count();
    if families < min_families {
        eprintln!("oak-metrics-lint: {families} families, expected at least {min_families}");
        return ExitCode::FAILURE;
    }
    if errors.is_empty() {
        let samples = oak_obs::parse_samples(&text).len();
        println!("oak-metrics-lint: ok — {families} families, {samples} samples");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
