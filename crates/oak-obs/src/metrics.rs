//! Metric primitives and the lock-striped registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s over plain
//! atomics: the registry lock is taken only at registration and at
//! scrape, never on the record path. Striping keeps concurrent
//! registration from different subsystems off one mutex; scrape walks
//! every stripe and merges.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::expo::{Family, FamilyKind, Series, SeriesValue};

/// Default log-scale duration buckets, in microseconds: a 1–2–5 ladder
/// from 1 µs to 10 s. Fixed at registration; every histogram of one
/// family shares them, which is what makes merges well-defined.
pub const DURATION_BOUNDS_US: &[f64] = &[
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    20_000.0,
    50_000.0,
    100_000.0,
    200_000.0,
    500_000.0,
    1_000_000.0,
    2_000_000.0,
    5_000_000.0,
    10_000_000.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Buckets hold *per-bucket* (not cumulative)
/// counts; the sample count is derived from the buckets at read time, so
/// `count` can never disagree with the bucket totals, even when a scrape
/// races a record.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Arc<[f64]>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Box<[AtomicU64]>,
    /// Sum of recorded values, as `f64` bits (CAS-updated).
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be finite, ascending, non-empty).
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The bucket upper bounds (exclusive of the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation. The value lands in the first bucket whose
    /// upper bound is `>= v` (Prometheus `le` semantics), so it is always
    /// strictly above the previous bound.
    #[inline]
    pub fn record(&self, v: f64) {
        let index = self.bounds.partition_point(|b| *b < v);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => current = now,
            }
        }
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: Arc::clone(&self.bounds),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], and the unit of merging.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, ascending (the implicit `+Inf` slot follows them).
    pub bounds: Arc<[f64]>,
    /// Per-bucket counts; `buckets[bounds.len()]` is the `+Inf` slot.
    pub buckets: Vec<u64>,
    /// Sum of recorded values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: &[f64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.into(),
            buckets: vec![0; bounds.len() + 1],
            sum: 0.0,
        }
    }

    /// Total observations — always exactly the bucket totals.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merges another snapshot in. Merging is associative and
    /// commutative (bucket-wise addition over identical bounds).
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ — cross-family merges are meaningless.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            &*self.bounds, &*other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` observation; `None` when empty.
    /// Monotone in `q` by construction (cumulative counts are monotone).
    /// The overflow bucket reports `+Inf`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Some(self.bounds.get(index).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }
}

/// Label pairs, sorted by name at registration so series identity — and
/// exposition order — is independent of call-site argument order.
type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    set.sort();
    set
}

/// One registered family's live series.
#[derive(Debug)]
enum FamilyCell {
    Counter {
        help: String,
        series: BTreeMap<LabelSet, Arc<Counter>>,
    },
    Gauge {
        help: String,
        series: BTreeMap<LabelSet, Arc<Gauge>>,
    },
    Histogram {
        help: String,
        bounds: Arc<[f64]>,
        series: BTreeMap<LabelSet, Arc<Histogram>>,
    },
}

/// How many stripes the registry spreads families over. Registration is
/// rare; this only keeps unrelated subsystems registering concurrently
/// off one mutex.
const STRIPES: usize = 8;

/// Hard cap on live series per family. Label values drawn from
/// unbounded input domains (user names, IPs) would otherwise grow the
/// registry — and every scrape — without limit; past the cap, *new*
/// label sets all resolve to one shared overflow series labeled
/// `{overflow="true"}`, so the aggregate signal survives while memory
/// stays bounded. Handles already returned are unaffected.
pub const MAX_SERIES_PER_FAMILY: usize = 1024;

fn overflow_labels() -> LabelSet {
    vec![("overflow".to_owned(), "true".to_owned())]
}

/// The key `labels` resolves to: itself while the family has room (or
/// is already tracked), the shared overflow series once it does not.
fn capped_key<V>(series: &BTreeMap<LabelSet, V>, labels: &[(&str, &str)]) -> LabelSet {
    let key = label_set(labels);
    if series.contains_key(&key) || series.len() < MAX_SERIES_PER_FAMILY {
        key
    } else {
        overflow_labels()
    }
}

/// The metric registry: families keyed by name, striped by name hash.
///
/// Handles returned by [`Registry::counter`] / [`Registry::gauge`] /
/// [`Registry::histogram`] are cached by callers and recorded to without
/// any registry involvement; [`Registry::families`] snapshots everything
/// for exposition.
#[derive(Debug, Default)]
pub struct Registry {
    stripes: [Mutex<BTreeMap<String, FamilyCell>>; STRIPES],
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn stripe(&self, name: &str) -> &Mutex<BTreeMap<String, FamilyCell>> {
        &self.stripes[fnv1a(name) as usize % STRIPES]
    }

    /// The counter series `name{labels}`, registering the family (with
    /// `help`) on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// — that is a programming error, not an operational condition.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut stripe = self.stripe(name).lock().expect("registry stripe");
        let cell = stripe
            .entry(name.to_owned())
            .or_insert_with(|| FamilyCell::Counter {
                help: help.to_owned(),
                series: BTreeMap::new(),
            });
        match cell {
            FamilyCell::Counter { series, .. } => {
                let key = capped_key(series, labels);
                Arc::clone(series.entry(key).or_default())
            }
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge series `name{labels}`; see [`Registry::counter`].
    ///
    /// # Panics
    ///
    /// Panics on a kind conflict with an existing family.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut stripe = self.stripe(name).lock().expect("registry stripe");
        let cell = stripe
            .entry(name.to_owned())
            .or_insert_with(|| FamilyCell::Gauge {
                help: help.to_owned(),
                series: BTreeMap::new(),
            });
        match cell {
            FamilyCell::Gauge { series, .. } => {
                let key = capped_key(series, labels);
                Arc::clone(series.entry(key).or_default())
            }
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram series `name{labels}` over `bounds`; see
    /// [`Registry::counter`]. Bounds are fixed by the first registration.
    ///
    /// # Panics
    ///
    /// Panics on a kind or bounds conflict with an existing family.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let mut stripe = self.stripe(name).lock().expect("registry stripe");
        let cell = stripe
            .entry(name.to_owned())
            .or_insert_with(|| FamilyCell::Histogram {
                help: help.to_owned(),
                bounds: bounds.into(),
                series: BTreeMap::new(),
            });
        match cell {
            FamilyCell::Histogram {
                bounds: registered,
                series,
                ..
            } => {
                assert_eq!(
                    &**registered, bounds,
                    "metric {name:?} already registered with different bounds"
                );
                let key = capped_key(series, labels);
                Arc::clone(
                    series
                        .entry(key)
                        .or_insert_with(|| Arc::new(Histogram::new(bounds))),
                )
            }
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Snapshots every registered family for exposition. Order is
    /// deterministic (sorted by name); [`crate::expo::encode`] re-sorts
    /// anyway after synthetic families are appended.
    pub fn families(&self) -> Vec<Family> {
        let mut families = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().expect("registry stripe");
            for (name, cell) in stripe.iter() {
                families.push(match cell {
                    FamilyCell::Counter { help, series } => Family {
                        name: name.clone(),
                        help: help.clone(),
                        kind: FamilyKind::Counter,
                        series: series
                            .iter()
                            .map(|(labels, c)| Series {
                                labels: labels.clone(),
                                value: SeriesValue::Scalar(c.get() as f64),
                            })
                            .collect(),
                    },
                    FamilyCell::Gauge { help, series } => Family {
                        name: name.clone(),
                        help: help.clone(),
                        kind: FamilyKind::Gauge,
                        series: series
                            .iter()
                            .map(|(labels, g)| Series {
                                labels: labels.clone(),
                                value: SeriesValue::Scalar(g.get() as f64),
                            })
                            .collect(),
                    },
                    FamilyCell::Histogram { help, series, .. } => Family {
                        name: name.clone(),
                        help: help.clone(),
                        kind: FamilyKind::Histogram,
                        series: series
                            .iter()
                            .map(|(labels, h)| Series {
                                labels: labels.clone(),
                                value: SeriesValue::Histogram(h.snapshot()),
                            })
                            .collect(),
                    },
                });
            }
        }
        families.sort_by(|a, b| a.name.cmp(&b.name));
        families
    }
}

/// FNV-1a, for stripe selection.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
