//! Deterministic random numbers for case generation.

/// FNV-1a over a string — used to derive a per-test seed from the test's
/// fully qualified name, so streams are stable across runs and machines.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A splitmix64 generator: tiny, fast, and plenty for test-case
/// generation (we are not doing statistics, just coverage).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for one `(test, case)` pair.
    pub fn for_case(seed: u64, case: u64) -> TestRng {
        TestRng {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One coin flip with probability `num/denom` of `true`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}
