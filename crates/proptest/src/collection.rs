//! Collection strategies (`prop::collection::*`).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range(self.size.start, self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeMap` with up to `size` entries (duplicate generated keys
/// collapse, as with the real crate).
pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
{
    BTreeMapStrategy { keys, values, size }
}

/// See [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = rng.in_range(self.size.start, self.size.end);
        (0..len)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}
