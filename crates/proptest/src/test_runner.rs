//! Test-runner configuration.

/// How many cases each property runs. The shim keeps only the `cases`
/// knob; everything else about the real `ProptestConfig` (forking,
/// persistence, shrink budgets) has no equivalent here.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: deterministic seeding means extra runs add no variety
    /// across CI invocations, so this favors suite latency.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}
