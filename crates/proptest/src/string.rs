//! Regex-like string generation.
//!
//! Supports the pattern subset the workspace's suites use: literal
//! characters, `\x` escapes, `\PC` (any printable character), character
//! classes with ranges, groups, and the `{m}` / `{m,n}` / `?` / `*` /
//! `+` quantifiers. Unsupported syntax panics with a clear message so a
//! new pattern fails loudly rather than generating garbage.

use crate::rng::TestRng;

/// Upper repetition bound for the open-ended `*` and `+` quantifiers.
const OPEN_REPEAT_MAX: u32 = 8;

/// Printable non-ASCII characters mixed in by `\PC` to exercise UTF-8
/// boundary handling in parsers under test.
const WIDE_CHARS: [char; 6] = ['é', 'ß', 'λ', '→', '中', '🦀'];

#[derive(Clone, Debug)]
enum Node {
    Literal(char),
    /// Inclusive character ranges (single chars are degenerate ranges).
    Class(Vec<(char, char)>),
    /// `\PC` — any printable character.
    Printable,
    Group(Vec<Repeat>),
}

#[derive(Clone, Debug)]
struct Repeat {
    node: Node,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let sequence = parse_sequence(&mut chars, pattern, false);
    assert!(
        chars.next().is_none(),
        "unbalanced ')' in string pattern {pattern:?}"
    );
    let mut out = String::new();
    for repeat in &sequence {
        emit(repeat, rng, &mut out);
    }
    out
}

fn emit(repeat: &Repeat, rng: &mut TestRng, out: &mut String) {
    let count = repeat.min + rng.in_range(0, (repeat.max - repeat.min + 1) as usize) as u32;
    for _ in 0..count {
        match &repeat.node {
            Node::Literal(c) => out.push(*c),
            Node::Printable => out.push(printable(rng)),
            Node::Class(ranges) => out.push(from_class(ranges, rng)),
            Node::Group(nodes) => {
                for inner in nodes {
                    emit(inner, rng, out);
                }
            }
        }
    }
}

fn printable(rng: &mut TestRng) -> char {
    if rng.chance(1, 8) {
        WIDE_CHARS[rng.in_range(0, WIDE_CHARS.len())]
    } else {
        char::from(b' ' + rng.in_range(0, (b'~' - b' ' + 1) as usize) as u8)
    }
}

fn from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let (lo, hi) = ranges[rng.in_range(0, ranges.len())];
    let span = hi as u32 - lo as u32 + 1;
    char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
        .expect("class ranges stay within valid scalar values")
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut Chars<'_>, pattern: &str, in_group: bool) -> Vec<Repeat> {
    let mut sequence = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            assert!(in_group, "unbalanced ')' in string pattern {pattern:?}");
            return sequence;
        }
        chars.next();
        let node = match c {
            '\\' => parse_escape(chars, pattern),
            '[' => parse_class(chars, pattern),
            '(' => {
                let inner = parse_sequence(chars, pattern, true);
                assert_eq!(chars.next(), Some(')'), "unclosed '(' in {pattern:?}");
                Node::Group(inner)
            }
            '|' | '*' | '+' | '?' | '{' => {
                panic!("unsupported bare {c:?} in string pattern {pattern:?}")
            }
            literal => Node::Literal(literal),
        };
        let (min, max) = parse_quantifier(chars, pattern);
        sequence.push(Repeat { node, min, max });
    }
    assert!(!in_group, "unclosed '(' in string pattern {pattern:?}");
    sequence
}

fn parse_escape(chars: &mut Chars<'_>, pattern: &str) -> Node {
    match chars.next() {
        Some('P') => {
            assert_eq!(
                chars.next(),
                Some('C'),
                "only the \\PC character category is supported ({pattern:?})"
            );
            Node::Printable
        }
        Some(c) => Node::Literal(c),
        None => panic!("dangling backslash in string pattern {pattern:?}"),
    }
}

fn parse_class(chars: &mut Chars<'_>, pattern: &str) -> Node {
    let mut ranges = Vec::new();
    loop {
        let c = match chars.next() {
            Some(']') => {
                assert!(
                    !ranges.is_empty(),
                    "empty class in string pattern {pattern:?}"
                );
                return Node::Class(ranges);
            }
            Some('\\') => chars
                .next()
                .unwrap_or_else(|| panic!("dangling backslash in class ({pattern:?})")),
            Some(c) => c,
            None => panic!("unclosed '[' in string pattern {pattern:?}"),
        };
        // A '-' between two members is a range; elsewhere it is literal.
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next();
            if lookahead.peek().is_some_and(|&after| after != ']') {
                chars.next();
                let hi = match chars.next() {
                    Some('\\') => chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling backslash in class ({pattern:?})")),
                    Some(hi) => hi,
                    None => panic!("unclosed '[' in string pattern {pattern:?}"),
                };
                assert!(c <= hi, "inverted range {c:?}-{hi:?} in {pattern:?}");
                ranges.push((c, hi));
                continue;
            }
        }
        ranges.push((c, c));
    }
}

fn parse_quantifier(chars: &mut Chars<'_>, pattern: &str) -> (u32, u32) {
    match chars.peek() {
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, OPEN_REPEAT_MAX)
        }
        Some('+') => {
            chars.next();
            (1, OPEN_REPEAT_MAX)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((min, max)) => (
                            min.parse().expect("integer in {m,n}"),
                            max.parse().expect("integer in {m,n}"),
                        ),
                        None => {
                            let exact = spec.parse().expect("integer in {m}");
                            (exact, exact)
                        }
                    };
                    assert!(min <= max, "inverted quantifier {{{spec}}} in {pattern:?}");
                    return (min, max);
                }
                spec.push(c);
            }
            panic!("unclosed quantifier brace in string pattern {pattern:?}");
        }
        _ => (1, 1),
    }
}
