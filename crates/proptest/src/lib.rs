//! An offline, dependency-free property-testing shim.
//!
//! This workspace must build in environments with no access to crates.io,
//! so this crate re-implements the *subset* of the `proptest` API the Oak
//! test suites use: the [`proptest!`] macro, `Strategy` with `prop_map` /
//! `prop_recursive`, regex-like string generation, numeric ranges,
//! tuples, `Just`, `prop_oneof!`, collections (`vec`, `btree_map`),
//! `option::of`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its test name, case index,
//!   and seed; re-running is deterministic, so the case reproduces.
//! - **Deterministic seeding.** Each test derives its RNG stream from a
//!   hash of its own name, so runs are stable across machines and
//!   parallel test orders.
//! - **String patterns** support the regex subset the suites use:
//!   literals, escapes, `\PC` (printable), classes with ranges, groups,
//!   and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.

pub mod collection;
pub mod option;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors `proptest::prelude::prop`: module-style access to the
    /// strategy factories.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Asserts a condition inside a property; failures panic with the
/// formatted message (the harness adds the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Discards the current case when the precondition does not hold. The
/// shim simply skips the remainder of the case body (no global rejection
/// budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks uniformly among the listed strategies (all must produce the same
/// value type). Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header, then `fn name(arg in strategy, ...)`
/// items (attributes, including `#[test]`, are forwarded).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __seed = $crate::rng::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let __strategies = ( $( $strategy, )+ );
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng::TestRng::for_case(__seed, __case as u64);
                    let ( $( $arg, )+ ) = {
                        let ( $( ref $arg, )+ ) = __strategies;
                        ( $( $crate::strategy::Strategy::generate($arg, &mut __rng), )+ )
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (seed {:#x})",
                            stringify!($name), __case, __config.cases, __seed,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}
