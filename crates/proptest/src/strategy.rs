//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom};
use std::rc::Rc;

use crate::rng::TestRng;

/// Generates values of one type. The shim's strategies are pure
/// generators — no shrinking trees.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// inner level and returns the composite level. The shim unrolls
    /// `depth` levels eagerly, flipping between leaf and composite at
    /// each level (`desired_size` and `expected_branch_size` are accepted
    /// for signature compatibility and ignored).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy: BoxedStrategy<Self::Value> = self.clone().boxed();
        for _ in 0..depth {
            strategy = OneOf::new(vec![self.clone().boxed(), recurse(strategy).boxed()]).boxed();
        }
        strategy
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> OneOf<T> {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Values with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary {
    /// One arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty integer range strategy");
                    let offset = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl Strategy for RangeFrom<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = (<$ty>::MAX as i128 - self.start as i128) as u128 + 1;
                    let offset = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }
        )+
    };
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
                }
            }
        )+
    };
}
float_range_strategy!(f32, f64);

/// String literals act as regex-like generators (e.g. `"[a-z]{1,6}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
