//! Option strategies (`prop::option::of`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// `Some` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(3, 4) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
