//! A forgiving, span-preserving HTML tokenizer.
//!
//! Real pages (and the paper's corpus is the Alexa Top 500) are full of
//! malformed markup, so the tokenizer never fails: anything it cannot make
//! sense of is emitted as text. Every token carries the byte span of the
//! original source it came from, which the [`crate::Rewriter`] relies on.

use std::ops::Range;

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An opening tag, e.g. `<img src="…">`. `self_closing` records a
    /// trailing `/>`.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// A closing tag, e.g. `</div>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// A run of document text.
    Text,
    /// An HTML comment `<!-- … -->`.
    Comment,
    /// A doctype or other `<!…>` declaration.
    Doctype,
    /// Raw content of a `<script>` or `<style>` element (everything up to
    /// the matching end tag, uninterpreted).
    RawText {
        /// The element the raw text belongs to (`script` or `style`).
        element: String,
    },
}

/// A token plus the byte range it occupies in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Classification and parsed payload.
    pub kind: TokenKind,
    /// Byte range into the original source.
    pub span: Range<usize>,
}

impl Token {
    /// The source slice this token covers.
    pub fn slice<'s>(&self, source: &'s str) -> &'s str {
        &source[self.span.clone()]
    }
}

/// One `name[=value]` attribute; the value has quotes stripped but entities
/// left intact (use [`crate::decode_entities`] when comparing URLs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Lowercased attribute name.
    pub name: String,
    /// Raw attribute value; empty for bare attributes like `async`.
    pub value: String,
    /// Byte range of the value within the source (empty range at the
    /// attribute end for bare attributes).
    pub value_span: Range<usize>,
}

/// Elements whose content is raw text (no nested markup).
const RAW_TEXT_ELEMENTS: [&str; 2] = ["script", "style"];

/// Tokenizes an HTML document. Never fails; invalid markup becomes text.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        source,
        pos: 0,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    source: &'s str,
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            if self.bytes[self.pos] == b'<' {
                if self.try_markup() {
                    // After a raw-text element's start tag, consume its body.
                    if let Some(TokenKind::StartTag {
                        name,
                        self_closing: false,
                        ..
                    }) = self.tokens.last().map(|t| &t.kind)
                    {
                        if RAW_TEXT_ELEMENTS.contains(&name.as_str()) {
                            let element = name.clone();
                            self.raw_text(&element);
                        }
                    }
                    continue;
                }
                // '<' that opens nothing: fall through as text.
                self.pos += 1;
            }
            self.text_run(start);
        }
        self.tokens
    }

    /// Consumes text until the next '<' (or EOF) and emits a Text token
    /// covering it, merging with `start` which may already be past '<'.
    fn text_run(&mut self, start: usize) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        if self.pos > start {
            self.push(TokenKind::Text, start..self.pos);
        }
    }

    fn push(&mut self, kind: TokenKind, span: Range<usize>) {
        self.tokens.push(Token { kind, span });
    }

    /// Attempts to lex markup at `self.pos` (which is at '<'). Returns true
    /// if a token was produced and `pos` advanced.
    fn try_markup(&mut self) -> bool {
        let start = self.pos;
        match self.bytes.get(self.pos + 1) {
            Some(b'!') => {
                if self.source[self.pos..].starts_with("<!--") {
                    self.comment(start)
                } else {
                    self.doctype(start)
                }
            }
            Some(b'/') => self.end_tag(start),
            Some(c) if c.is_ascii_alphabetic() => self.start_tag(start),
            _ => false,
        }
    }

    fn comment(&mut self, start: usize) -> bool {
        // <!-- … --> ; an unterminated comment swallows to EOF, as browsers do.
        let body_start = start + 4;
        let end = match self.source[body_start..].find("-->") {
            Some(i) => body_start + i + 3,
            None => self.bytes.len(),
        };
        self.pos = end;
        self.push(TokenKind::Comment, start..end);
        true
    }

    fn doctype(&mut self, start: usize) -> bool {
        let end = match self.source[start..].find('>') {
            Some(i) => start + i + 1,
            None => self.bytes.len(),
        };
        self.pos = end;
        self.push(TokenKind::Doctype, start..end);
        true
    }

    fn end_tag(&mut self, start: usize) -> bool {
        let mut i = start + 2;
        let name_start = i;
        while i < self.bytes.len() && self.bytes[i].is_ascii_alphanumeric() {
            i += 1;
        }
        if i == name_start {
            return false;
        }
        let name = self.source[name_start..i].to_ascii_lowercase();
        // Skip to '>'.
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        let end = (i + 1).min(self.bytes.len());
        self.pos = end;
        self.push(TokenKind::EndTag { name }, start..end);
        true
    }

    fn start_tag(&mut self, start: usize) -> bool {
        let mut i = start + 1;
        let name_start = i;
        while i < self.bytes.len()
            && (self.bytes[i].is_ascii_alphanumeric() || self.bytes[i] == b'-')
        {
            i += 1;
        }
        let name = self.source[name_start..i].to_ascii_lowercase();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            // Skip whitespace.
            while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            match self.bytes.get(i) {
                None => break,
                Some(b'>') => {
                    i += 1;
                    break;
                }
                Some(b'/') => {
                    if self.bytes.get(i + 1) == Some(&b'>') {
                        self_closing = true;
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                Some(_) => {
                    let (attr, next) = self.attribute(i);
                    if next == i {
                        // No progress: skip the byte to guarantee termination.
                        i += 1;
                    } else {
                        i = next;
                        if let Some(a) = attr {
                            attrs.push(a);
                        }
                    }
                }
            }
        }
        self.pos = i;
        self.push(
            TokenKind::StartTag {
                name,
                attrs,
                self_closing,
            },
            start..i,
        );
        true
    }

    /// Parses one attribute starting at `i`; returns the attribute (if a
    /// name was present) and the index after it.
    fn attribute(&self, mut i: usize) -> (Option<Attribute>, usize) {
        let name_start = i;
        while i < self.bytes.len()
            && !self.bytes[i].is_ascii_whitespace()
            && !matches!(self.bytes[i], b'=' | b'>' | b'/')
        {
            i += 1;
        }
        if i == name_start {
            return (None, i);
        }
        let name = self.source[name_start..i].to_ascii_lowercase();
        // Optional whitespace around '='.
        let mut j = i;
        while j < self.bytes.len() && self.bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if self.bytes.get(j) != Some(&b'=') {
            // Bare attribute.
            return (
                Some(Attribute {
                    name,
                    value: String::new(),
                    value_span: i..i,
                }),
                i,
            );
        }
        j += 1;
        while j < self.bytes.len() && self.bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        match self.bytes.get(j) {
            Some(&q @ (b'"' | b'\'')) => {
                let value_start = j + 1;
                let mut k = value_start;
                while k < self.bytes.len() && self.bytes[k] != q {
                    k += 1;
                }
                let value = self.source[value_start..k].to_owned();
                let end = (k + 1).min(self.bytes.len());
                (
                    Some(Attribute {
                        name,
                        value,
                        value_span: value_start..k,
                    }),
                    end,
                )
            }
            _ => {
                // Unquoted value: up to whitespace or '>'.
                let value_start = j;
                let mut k = j;
                while k < self.bytes.len()
                    && !self.bytes[k].is_ascii_whitespace()
                    && self.bytes[k] != b'>'
                {
                    k += 1;
                }
                let value = self.source[value_start..k].to_owned();
                (
                    Some(Attribute {
                        name,
                        value,
                        value_span: value_start..k,
                    }),
                    k,
                )
            }
        }
    }

    /// Consumes raw text up to (not including) `</element`, emitting a
    /// RawText token if non-empty.
    fn raw_text(&mut self, element: &str) {
        let start = self.pos;
        let closer = format!("</{element}");
        let lower_rest = self.source[start..].to_ascii_lowercase();
        let end = match lower_rest.find(&closer) {
            Some(i) => start + i,
            None => self.bytes.len(),
        };
        if end > start {
            self.push(
                TokenKind::RawText {
                    element: element.to_owned(),
                },
                start..end,
            );
        }
        self.pos = end;
    }
}
