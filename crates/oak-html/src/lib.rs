//! HTML processing for Oak's page analysis and modification.
//!
//! Oak's server does two things to HTML (paper §4.2.2, §4.3):
//!
//! 1. **Analysis** — scan a page (or a rule's default-object text, which is
//!    itself a block of HTML) for `src`-style attributes and inline scripts,
//!    to decide whether a rule has a *connection dependency* on a violating
//!    server.
//! 2. **Modification** — rewrite outgoing pages per user: delete the text of
//!    a Type 1 rule, or substitute the alternative text of a Type 2/3 rule.
//!
//! Both need a tolerant, span-preserving view of the document rather than a
//! normalizing DOM: Oak replaces *exact operator-specified byte ranges* and
//! must never reserialize untouched markup. This crate provides:
//!
//! - [`tokenize`] / [`Token`]: a forgiving HTML tokenizer with byte spans,
//! - [`Document`]: extraction of external references ([`ExternalRef`]) and
//!   inline script bodies ([`InlineScript`]),
//! - [`Rewriter`]: ordered, non-overlapping span edits over the original
//!   source,
//! - [`decode_entities`]: the small entity subset found in attribute values.
//!
//! # Examples
//!
//! ```
//! use oak_html::Document;
//!
//! let page = r#"<html><img src="http://img.example/logo.png">
//! <script src="http://cdn.example/app.js"></script>
//! <script>var u = "http://api.example/v1";</script></html>"#;
//!
//! let doc = Document::parse(page);
//! let hosts: Vec<&str> = doc.external_refs().iter().map(|r| r.url.as_str()).collect();
//! assert_eq!(hosts, ["http://img.example/logo.png", "http://cdn.example/app.js"]);
//! assert_eq!(doc.inline_scripts().len(), 1);
//! ```

mod document;
mod entities;
mod rewrite;
mod tokenizer;

pub use document::{Document, ExternalRef, InlineScript, RefKind};
pub use entities::decode_entities;
pub use rewrite::{RewriteError, Rewriter};
pub use tokenizer::{tokenize, Attribute, Token, TokenKind};

#[cfg(test)]
mod tests;
