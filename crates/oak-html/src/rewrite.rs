//! Span-based page rewriting.
//!
//! Oak's page modification (paper §4.3) applies each active rule's edit to
//! the outgoing page: Type 1 deletes the default-object text, Types 2 and 3
//! replace it. Rules are literal text blocks, so the engine supports both
//! direct span edits and "replace every occurrence of this block" lookups.

use std::error::Error;
use std::fmt;
use std::ops::Range;

/// An error applying edits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// Two edits overlap; the first span is the previously accepted edit.
    Overlap {
        /// The edit already recorded.
        existing: Range<usize>,
        /// The conflicting new edit.
        conflicting: Range<usize>,
    },
    /// An edit extends past the end of the source.
    OutOfBounds {
        /// The offending span.
        span: Range<usize>,
        /// Length of the source being edited.
        len: usize,
    },
    /// A span does not start and end on UTF-8 character boundaries.
    NotCharBoundary {
        /// The offending span.
        span: Range<usize>,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Overlap {
                existing,
                conflicting,
            } => write!(
                f,
                "edit {}..{} overlaps existing edit {}..{}",
                conflicting.start, conflicting.end, existing.start, existing.end
            ),
            RewriteError::OutOfBounds { span, len } => write!(
                f,
                "edit {}..{} exceeds source length {len}",
                span.start, span.end
            ),
            RewriteError::NotCharBoundary { span } => write!(
                f,
                "edit {}..{} does not fall on character boundaries",
                span.start, span.end
            ),
        }
    }
}

impl Error for RewriteError {}

/// Accumulates non-overlapping edits against an immutable source and
/// applies them in one pass.
///
/// # Examples
///
/// ```
/// use oak_html::Rewriter;
///
/// let page = r#"<img src="http://slow.cdn/x.png">"#;
/// let mut rw = Rewriter::new(page);
/// let n = rw.replace_all("slow.cdn", "fast.cdn");
/// assert_eq!(n, 1);
/// assert_eq!(rw.apply().unwrap(), r#"<img src="http://fast.cdn/x.png">"#);
/// ```
#[derive(Clone, Debug)]
pub struct Rewriter<'s> {
    source: &'s str,
    // Kept sorted by span start; spans never overlap.
    edits: Vec<Edit>,
}

#[derive(Clone, Debug)]
struct Edit {
    span: Range<usize>,
    replacement: String,
}

impl<'s> Rewriter<'s> {
    /// Starts a rewrite session over `source`.
    pub fn new(source: &'s str) -> Rewriter<'s> {
        Rewriter {
            source,
            edits: Vec::new(),
        }
    }

    /// The unmodified source.
    pub fn source(&self) -> &'s str {
        self.source
    }

    /// Number of edits recorded so far.
    pub fn edit_count(&self) -> usize {
        self.edits.len()
    }

    /// Records a replacement of `span` with `replacement`.
    ///
    /// # Errors
    ///
    /// Rejects spans that are out of bounds, split a UTF-8 character, or
    /// overlap a previously recorded edit (two rules editing the same text
    /// is an operator conflict Oak surfaces rather than resolves silently).
    pub fn replace(
        &mut self,
        span: Range<usize>,
        replacement: impl Into<String>,
    ) -> Result<(), RewriteError> {
        if span.end > self.source.len() || span.start > span.end {
            return Err(RewriteError::OutOfBounds {
                span,
                len: self.source.len(),
            });
        }
        if !self.source.is_char_boundary(span.start) || !self.source.is_char_boundary(span.end) {
            return Err(RewriteError::NotCharBoundary { span });
        }
        // Find insertion point; verify the neighbours don't overlap.
        let idx = self.edits.partition_point(|e| e.span.start < span.start);
        if let Some(prev) = idx.checked_sub(1).and_then(|i| self.edits.get(i)) {
            if prev.span.end > span.start {
                return Err(RewriteError::Overlap {
                    existing: prev.span.clone(),
                    conflicting: span,
                });
            }
        }
        if let Some(next) = self.edits.get(idx) {
            // Two zero-width inserts at one position would be order-ambiguous.
            let collides = span.end > next.span.start || span.start == next.span.start;
            if collides {
                return Err(RewriteError::Overlap {
                    existing: next.span.clone(),
                    conflicting: span,
                });
            }
        }
        self.edits.insert(
            idx,
            Edit {
                span,
                replacement: replacement.into(),
            },
        );
        Ok(())
    }

    /// Records a deletion of `span`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rewriter::replace`].
    pub fn delete(&mut self, span: Range<usize>) -> Result<(), RewriteError> {
        self.replace(span, "")
    }

    /// Replaces every non-overlapping occurrence of `needle` with
    /// `replacement`, skipping occurrences that collide with existing
    /// edits. Returns the number of occurrences replaced.
    ///
    /// This is the primitive behind the paper's Type 2/3 rules: "Oak will
    /// simply replace occurrences of the default object text with the
    /// alternative object text" (§4.1).
    pub fn replace_all(&mut self, needle: &str, replacement: &str) -> usize {
        if needle.is_empty() {
            return 0;
        }
        let mut count = 0;
        let mut from = 0;
        while let Some(found) = self.source[from..].find(needle) {
            let start = from + found;
            let span = start..start + needle.len();
            if self.replace(span, replacement).is_ok() {
                count += 1;
            }
            from = start + needle.len();
        }
        count
    }

    /// Deletes every non-overlapping occurrence of `needle`; returns the
    /// count (Type 1 rules).
    pub fn delete_all(&mut self, needle: &str) -> usize {
        self.replace_all(needle, "")
    }

    /// Applies all recorded edits, producing the rewritten document.
    ///
    /// # Errors
    ///
    /// Infallible in practice (edits are validated on entry); the `Result`
    /// is kept so the signature survives future streaming output.
    pub fn apply(self) -> Result<String, RewriteError> {
        Ok(self.apply_cow().into_owned())
    }

    /// Applies all recorded edits as a single streaming pass: untouched
    /// spans are copied verbatim straight from the source slice, and a
    /// session with zero edits returns the source *borrowed* — the
    /// rule-free steady state costs no copy at all.
    pub fn apply_cow(self) -> std::borrow::Cow<'s, str> {
        // Visible in request traces as its own stage; inert (one
        // thread-local read) when no trace is active.
        let _span = oak_obs::span("rewrite");
        if self.edits.is_empty() {
            return std::borrow::Cow::Borrowed(self.source);
        }
        // Exact final length: bytes kept from the source plus every
        // replacement, so the output buffer never reallocates.
        let grow: usize = self
            .edits
            .iter()
            .map(|e| e.replacement.len().saturating_sub(e.span.len()))
            .sum();
        let mut out = String::with_capacity(self.source.len() + grow);
        let mut cursor = 0;
        for edit in &self.edits {
            out.push_str(&self.source[cursor..edit.span.start]);
            out.push_str(&edit.replacement);
            cursor = edit.span.end;
        }
        out.push_str(&self.source[cursor..]);
        std::borrow::Cow::Owned(out)
    }
}
