//! Document-level view: external references and inline scripts.

use std::ops::Range;

use crate::entities::decode_entities;
use crate::tokenizer::{tokenize, Token, TokenKind};

/// How a reference appears in the page; Oak's rule matcher treats `src`
/// attributes as *direct inclusion* and script bodies as *text matching*
/// surface (paper §4.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefKind {
    /// A `src` attribute (`img`, `script`, `iframe`, `video`, …).
    Src,
    /// An `href` attribute on a resource link (`<link rel=stylesheet>`).
    Href,
    /// A `data-src`-style lazy-loading attribute.
    DataSrc,
    /// A candidate from an `<img srcset=…>` responsive-image list; the
    /// browser fetches one of these.
    SrcSet,
}

/// An external resource reference found in a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExternalRef {
    /// Lowercased tag name carrying the reference.
    pub tag: String,
    /// Which attribute the URL came from.
    pub kind: RefKind,
    /// The URL with entities decoded.
    pub url: String,
    /// Byte span of the raw attribute value in the source.
    pub span: Range<usize>,
}

/// The body of an inline `<script>` element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineScript {
    /// The script text, uninterpreted.
    pub text: String,
    /// Byte span of the script body in the source.
    pub span: Range<usize>,
}

/// A parsed page: the token stream plus extracted analysis views.
///
/// `Document` borrows nothing — it owns extracted strings — so it can
/// outlive the transient request buffer the page arrived in.
#[derive(Clone, Debug)]
pub struct Document {
    tokens: Vec<Token>,
    refs: Vec<ExternalRef>,
    inline_scripts: Vec<InlineScript>,
    base_href: Option<String>,
}

/// Attributes that cause a network fetch when present on these tags.
/// `<a href>` is navigation, not a subresource, so anchors are excluded.
const SRC_TAGS: [&str; 9] = [
    "script", "img", "iframe", "video", "audio", "source", "embed", "input", "track",
];

impl Document {
    /// Tokenizes `source` and extracts external references and inline
    /// scripts in one pass.
    pub fn parse(source: &str) -> Document {
        let tokens = tokenize(source);
        let mut refs = Vec::new();
        let mut inline_scripts = Vec::new();
        let mut pending_script_external = false;
        let mut base_href = None;

        for token in &tokens {
            match &token.kind {
                TokenKind::StartTag { name, attrs, .. } => {
                    // `<base href>`: the first one wins, per HTML.
                    if name == "base" && base_href.is_none() {
                        if let Some(attr) = attrs
                            .iter()
                            .find(|a| a.name == "href" && !a.value.is_empty())
                        {
                            base_href = Some(decode_entities(attr.value.trim()));
                        }
                    }
                    if name == "script" {
                        pending_script_external =
                            attrs.iter().any(|a| a.name == "src" && !a.value.is_empty());
                    }
                    for attr in attrs {
                        if attr.value.is_empty() {
                            continue;
                        }
                        // srcset carries a comma-separated candidate list:
                        // `url1 1x, url2 2x`; every candidate is a
                        // fetchable reference.
                        if attr.name == "srcset" && (name == "img" || name == "source") {
                            for candidate in attr.value.split(',') {
                                let url = candidate.split_whitespace().next();
                                if let Some(url) = url.filter(|u| !u.is_empty()) {
                                    refs.push(ExternalRef {
                                        tag: name.clone(),
                                        kind: RefKind::SrcSet,
                                        url: decode_entities(url),
                                        span: attr.value_span.clone(),
                                    });
                                }
                            }
                            continue;
                        }
                        let kind = match attr.name.as_str() {
                            "src" if SRC_TAGS.contains(&name.as_str()) => RefKind::Src,
                            "href" if name == "link" => RefKind::Href,
                            "data-src" => RefKind::DataSrc,
                            _ => continue,
                        };
                        refs.push(ExternalRef {
                            tag: name.clone(),
                            kind,
                            url: decode_entities(attr.value.trim()),
                            span: attr.value_span.clone(),
                        });
                    }
                }
                TokenKind::RawText { element } if element == "script" => {
                    if !pending_script_external {
                        inline_scripts.push(InlineScript {
                            text: source[token.span.clone()].to_owned(),
                            span: token.span.clone(),
                        });
                    }
                    pending_script_external = false;
                }
                _ => {}
            }
        }

        Document {
            tokens,
            refs,
            inline_scripts,
            base_href,
        }
    }

    /// The document's `<base href>` value, if present (first one wins).
    /// Relative references resolve against it instead of the page URL.
    pub fn base_href(&self) -> Option<&str> {
        self.base_href.as_deref()
    }

    /// The full token stream with byte spans.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// All URL-bearing references, in document order.
    pub fn external_refs(&self) -> &[ExternalRef] {
        &self.refs
    }

    /// Bodies of inline (non-`src`) scripts, in document order.
    pub fn inline_scripts(&self) -> &[InlineScript] {
        &self.inline_scripts
    }

    /// URLs of external scripts (`<script src=…>`), in document order.
    /// These are the candidates for Oak's one-level external-JavaScript
    /// expansion (paper §4.2.2, "External JavaScript").
    pub fn external_script_urls(&self) -> Vec<&str> {
        self.refs
            .iter()
            .filter(|r| r.tag == "script" && r.kind == RefKind::Src)
            .map(|r| r.url.as_str())
            .collect()
    }
}
