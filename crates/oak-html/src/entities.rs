//! Minimal HTML entity decoding for attribute values.

/// Decodes the entity subset that occurs in URL-bearing attributes:
/// `&amp;` `&lt;` `&gt;` `&quot;` `&apos;` `&#39;`-style decimal and
/// `&#x2F;`-style hex numeric references. Unknown or malformed entities are
/// left untouched — Oak compares URLs, and mangling unknown input would
/// create false mismatches.
///
/// ```
/// use oak_html::decode_entities;
/// assert_eq!(
///     decode_entities("http://a.com/?x=1&amp;y=2"),
///     "http://a.com/?x=1&y=2",
/// );
/// assert_eq!(decode_entities("&#x41;&#66;&unknown;"), "AB&unknown;");
/// ```
pub fn decode_entities(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut rest = input;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        match decode_one(rest) {
            Some((decoded, consumed)) => {
                out.push(decoded);
                rest = &rest[consumed..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Attempts to decode a single entity at the start of `s` (which begins
/// with '&'); returns the character and bytes consumed.
fn decode_one(s: &str) -> Option<(char, usize)> {
    const NAMED: [(&str, char); 5] = [
        ("&amp;", '&'),
        ("&lt;", '<'),
        ("&gt;", '>'),
        ("&quot;", '"'),
        ("&apos;", '\''),
    ];
    for (name, c) in NAMED {
        if s.starts_with(name) {
            return Some((c, name.len()));
        }
    }
    let body = s.strip_prefix("&#")?;
    let (digits, radix) = match body.strip_prefix(['x', 'X']) {
        Some(hex) => (hex, 16),
        None => (body, 10),
    };
    let end = digits.find(';')?;
    if end == 0 || end > 6 {
        return None;
    }
    let code = u32::from_str_radix(&digits[..end], radix).ok()?;
    let c = char::from_u32(code)?;
    // Total consumed: "&#" + optional x + digits + ";".
    let consumed = 2 + (radix == 16) as usize + end + 1;
    Some((c, consumed))
}
