//! Unit and property tests for the HTML substrate.

use crate::{decode_entities, tokenize, Document, RefKind, RewriteError, Rewriter, TokenKind};

fn kinds(source: &str) -> Vec<String> {
    tokenize(source)
        .into_iter()
        .map(|t| match t.kind {
            TokenKind::StartTag { name, .. } => format!("start:{name}"),
            TokenKind::EndTag { name } => format!("end:{name}"),
            TokenKind::Text => "text".into(),
            TokenKind::Comment => "comment".into(),
            TokenKind::Doctype => "doctype".into(),
            TokenKind::RawText { element } => format!("raw:{element}"),
        })
        .collect()
}

#[test]
fn tokenizes_simple_page() {
    assert_eq!(
        kinds("<!DOCTYPE html><html><body>Hi</body></html>"),
        [
            "doctype",
            "start:html",
            "start:body",
            "text",
            "end:body",
            "end:html"
        ]
    );
}

#[test]
fn spans_cover_source_exactly() {
    let src = "<p class=\"x\">text</p><!-- c -->tail";
    let tokens = tokenize(src);
    let mut cursor = 0;
    for t in &tokens {
        assert_eq!(t.span.start, cursor, "tokens must tile the source");
        cursor = t.span.end;
    }
    assert_eq!(cursor, src.len());
}

#[test]
fn parses_attributes() {
    let tokens = tokenize(r#"<img src="a.png" width=10 async data-x='q'>"#);
    let TokenKind::StartTag {
        name,
        attrs,
        self_closing,
    } = &tokens[0].kind
    else {
        panic!("expected start tag");
    };
    assert_eq!(name, "img");
    assert!(!self_closing);
    let pairs: Vec<(&str, &str)> = attrs
        .iter()
        .map(|a| (a.name.as_str(), a.value.as_str()))
        .collect();
    assert_eq!(
        pairs,
        [
            ("src", "a.png"),
            ("width", "10"),
            ("async", ""),
            ("data-x", "q")
        ]
    );
}

#[test]
fn attribute_value_spans_are_exact() {
    let src = r#"<img src="http://h/x.png">"#;
    let tokens = tokenize(src);
    let TokenKind::StartTag { attrs, .. } = &tokens[0].kind else {
        panic!()
    };
    assert_eq!(&src[attrs[0].value_span.clone()], "http://h/x.png");
}

#[test]
fn self_closing_and_case_folding() {
    let tokens = tokenize("<IMG SRC='x'/><BR/>");
    let TokenKind::StartTag {
        name,
        self_closing,
        attrs,
    } = &tokens[0].kind
    else {
        panic!()
    };
    assert_eq!(name, "img");
    assert!(*self_closing);
    assert_eq!(attrs[0].name, "src");
}

#[test]
fn script_content_is_raw_text() {
    let src = "<script>if (a<b) { x('</div>'); }</script>";
    let k = kinds(src);
    // The body runs until the literal "</script", even through fake tags.
    assert_eq!(k[0], "start:script");
    assert_eq!(k[1], "raw:script");
    assert_eq!(k[2], "end:script");
    let tokens = tokenize(src);
    assert!(tokens[1].slice(src).contains("a<b"));
    // N.B. the "</div>" inside the string does not split the raw text …
    assert!(tokens[1].slice(src).contains("</div>"));
}

#[test]
fn style_content_is_raw_text() {
    let k = kinds("<style>p > a { color: red }</style>");
    assert_eq!(k, ["start:style", "raw:style", "end:style"]);
}

#[test]
fn comments_and_unterminated_structures() {
    assert_eq!(kinds("<!-- a <b> c -->x"), ["comment", "text"]);
    assert_eq!(kinds("<!-- never closed"), ["comment"]);
    assert_eq!(kinds("<script>no close"), ["start:script", "raw:script"]);
    assert_eq!(kinds("< notatag"), ["text"]);
    assert_eq!(kinds("a < b"), ["text", "text"]);
    assert_eq!(kinds("<"), ["text"]);
}

#[test]
fn malformed_markup_degrades_to_text() {
    // Tokenizer must terminate and cover all input for garbage.
    for src in ["<<<>>>", "<a <b> c>", "<img src=>", "<x y='unclosed", "</>"] {
        let tokens = tokenize(src);
        assert!(!tokens.is_empty(), "{src:?}");
        assert_eq!(tokens.last().unwrap().span.end, src.len(), "{src:?}");
    }
}

#[test]
fn document_extracts_external_refs() {
    let page = r#"
        <img src="http://img.host/a.png">
        <script src="http://js.host/lib.js"></script>
        <link rel="stylesheet" href="http://css.host/m.css">
        <iframe src="http://frame.host/ad"></iframe>
        <a href="http://nav.host/page">link</a>
        <img data-src="http://lazy.host/b.png">
    "#;
    let doc = Document::parse(page);
    let urls: Vec<(&str, RefKind)> = doc
        .external_refs()
        .iter()
        .map(|r| (r.url.as_str(), r.kind))
        .collect();
    assert_eq!(
        urls,
        [
            ("http://img.host/a.png", RefKind::Src),
            ("http://js.host/lib.js", RefKind::Src),
            ("http://css.host/m.css", RefKind::Href),
            ("http://frame.host/ad", RefKind::Src),
            ("http://lazy.host/b.png", RefKind::DataSrc),
        ],
        "anchor href must not appear: navigation is not a subresource"
    );
}

#[test]
fn document_distinguishes_inline_and_external_scripts() {
    let page = r#"
        <script src="http://cdn.a/x.js"></script>
        <script>var endpoint = "http://api.b/v2";</script>
        <script src="http://cdn.c/y.js">/* ignored body */</script>
    "#;
    let doc = Document::parse(page);
    assert_eq!(
        doc.external_script_urls(),
        ["http://cdn.a/x.js", "http://cdn.c/y.js"]
    );
    assert_eq!(doc.inline_scripts().len(), 1);
    assert!(doc.inline_scripts()[0].text.contains("api.b"));
}

#[test]
fn document_reads_base_href() {
    let page = r#"<head><base href="http://assets.example/v2/"><base href="http://ignored.example/"></head>
<img src="logo.png">"#;
    let doc = Document::parse(page);
    assert_eq!(
        doc.base_href(),
        Some("http://assets.example/v2/"),
        "first base wins"
    );
    assert_eq!(Document::parse("<img src=\"x.png\">").base_href(), None);
    assert_eq!(
        Document::parse("<base target=\"_blank\">").base_href(),
        None,
        "base without href is ignored"
    );
}

#[test]
fn document_extracts_srcset_candidates() {
    let page = r#"<img srcset="http://cdn.example/a-1x.png 1x, http://cdn.example/a-2x.png 2x" src="http://cdn.example/fallback.png">
<source srcset="http://cdn.example/b.webp">
<div srcset="http://not-an-image.example/x"></div>"#;
    let doc = Document::parse(page);
    let srcset: Vec<&str> = doc
        .external_refs()
        .iter()
        .filter(|r| r.kind == RefKind::SrcSet)
        .map(|r| r.url.as_str())
        .collect();
    assert_eq!(
        srcset,
        [
            "http://cdn.example/a-1x.png",
            "http://cdn.example/a-2x.png",
            "http://cdn.example/b.webp",
        ],
        "img and source srcset candidates extracted; div ignored"
    );
    // The plain src on the img is still a normal reference.
    assert!(doc
        .external_refs()
        .iter()
        .any(|r| r.kind == RefKind::Src && r.url.ends_with("fallback.png")));
}

#[test]
fn document_decodes_entities_in_urls() {
    let page = r#"<img src="http://h.example/x?a=1&amp;b=2">"#;
    let doc = Document::parse(page);
    assert_eq!(doc.external_refs()[0].url, "http://h.example/x?a=1&b=2");
}

#[test]
fn entity_decoding() {
    assert_eq!(decode_entities("a&amp;b"), "a&b");
    assert_eq!(decode_entities("&lt;tag&gt;"), "<tag>");
    assert_eq!(decode_entities("&quot;q&quot;&apos;"), "\"q\"'");
    assert_eq!(decode_entities("&#65;&#x42;&#x63;"), "ABc");
    assert_eq!(
        decode_entities("&bogus; &#; &#xZZ; &"),
        "&bogus; &#; &#xZZ; &"
    );
    assert_eq!(decode_entities(""), "");
    assert_eq!(decode_entities("no entities"), "no entities");
}

#[test]
fn rewriter_replaces_spans() {
    let src = "hello cruel world";
    let mut rw = Rewriter::new(src);
    rw.replace(6..11, "kind").unwrap();
    assert_eq!(rw.apply().unwrap(), "hello kind world");
}

#[test]
fn rewriter_applies_edits_in_position_order() {
    let src = "AABBCC";
    let mut rw = Rewriter::new(src);
    // Inserted out of order on purpose.
    rw.replace(4..6, "c").unwrap();
    rw.replace(0..2, "a").unwrap();
    rw.replace(2..4, "b").unwrap();
    assert_eq!(rw.apply().unwrap(), "abc");
}

#[test]
fn rewriter_rejects_overlap() {
    let mut rw = Rewriter::new("0123456789");
    rw.replace(2..5, "x").unwrap();
    let err = rw.replace(4..7, "y").unwrap_err();
    assert!(matches!(err, RewriteError::Overlap { .. }));
    // Touching (not overlapping) is fine.
    rw.replace(5..7, "y").unwrap();
    assert_eq!(rw.apply().unwrap(), "01xy789");
}

#[test]
fn rewriter_rejects_out_of_bounds_and_split_chars() {
    let mut rw = Rewriter::new("aé");
    assert!(matches!(
        rw.replace(0..9, "x"),
        Err(RewriteError::OutOfBounds { .. })
    ));
    assert!(matches!(
        rw.replace(1..2, "x"),
        Err(RewriteError::NotCharBoundary { .. })
    ));
    rw.replace(1..3, "e").unwrap();
    assert_eq!(rw.apply().unwrap(), "ae");
}

#[test]
fn rewriter_delete() {
    let mut rw = Rewriter::new("keep REMOVE keep");
    rw.delete(4..11).unwrap();
    assert_eq!(rw.apply().unwrap(), "keep keep");
}

#[test]
fn replace_all_rewrites_every_occurrence() {
    let src = r#"<script src="http://s1.com/jquery.js"></script>
<img src="http://s1.com/logo.png">"#;
    let mut rw = Rewriter::new(src);
    assert_eq!(rw.replace_all("s1.com", "s2.net"), 2);
    let out = rw.apply().unwrap();
    assert!(!out.contains("s1.com"));
    assert_eq!(out.matches("s2.net").count(), 2);
}

#[test]
fn replace_all_skips_colliding_occurrences() {
    let mut rw = Rewriter::new("xxxx");
    rw.replace(0..2, "A").unwrap();
    // "xx" occurs at 0,1,2 (overlapping); only the one at 2 is free.
    assert_eq!(rw.replace_all("xx", "B"), 1);
    assert_eq!(rw.apply().unwrap(), "AB");
}

#[test]
fn replace_all_empty_needle_is_noop() {
    let mut rw = Rewriter::new("abc");
    assert_eq!(rw.replace_all("", "x"), 0);
    assert_eq!(rw.apply().unwrap(), "abc");
}

#[test]
fn paper_example_rule_application() {
    // The exact rule from §4.1: swap a jquery script tag to another host.
    let page = r#"<html><head>
<script src="http://s1.com/jquery.js"></script>
</head><body></body></html>"#;
    let mut rw = Rewriter::new(page);
    let n = rw.replace_all(
        r#"<script src="http://s1.com/jquery.js">"#,
        r#"<script src="http://s2.net/jquery.js">"#,
    );
    assert_eq!(n, 1);
    let out = rw.apply().unwrap();
    let doc = Document::parse(&out);
    assert_eq!(doc.external_script_urls(), ["http://s2.net/jquery.js"]);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tokenizer is total, terminates, and its spans tile the input.
        #[test]
        fn tokenizer_tiles_arbitrary_input(src in "\\PC{0,200}") {
            let tokens = tokenize(&src);
            let mut cursor = 0;
            for t in &tokens {
                prop_assert!(t.span.start >= cursor);
                prop_assert!(t.span.end >= t.span.start);
                prop_assert!(src.is_char_boundary(t.span.start));
                prop_assert!(src.is_char_boundary(t.span.end));
                cursor = t.span.end;
            }
            prop_assert!(cursor <= src.len());
        }

        /// Rewriter with no edits is the identity.
        #[test]
        fn empty_rewrite_is_identity(src in "\\PC{0,100}") {
            prop_assert_eq!(Rewriter::new(&src).apply().unwrap(), src);
        }

        /// replace_all agrees with str::replace when the needle does not
        /// overlap itself.
        #[test]
        fn replace_all_matches_std(
            src in "[ab ]{0,64}",
            needle in "[ab]{2,4}",
            replacement in "[xy]{0,4}",
        ) {
            // Skip self-overlapping needles (e.g. "aa" in "aaa"): std's
            // replace and ours both take non-overlapping occurrences
            // left-to-right, so they agree even then, but keep the oracle
            // simple and exact.
            let mut rw = Rewriter::new(&src);
            rw.replace_all(&needle, &replacement);
            prop_assert_eq!(rw.apply().unwrap(), src.replace(&needle, &replacement));
        }

        /// Document::parse never panics and extracts decodable URLs.
        #[test]
        fn document_parse_is_total(src in "\\PC{0,200}") {
            let doc = Document::parse(&src);
            for r in doc.external_refs() {
                prop_assert!(!r.url.is_empty());
            }
        }
    }
}
