//! Whole-stack observability for the Oak service.
//!
//! [`ServiceObs`] bundles one [`Registry`], one [`Tracer`], and the
//! pre-resolved metric handles of every layer (HTTP transport, engine,
//! durability) behind a single attachment point. `oak-serve` builds one
//! bundle at boot and threads its pieces to the right owner:
//!
//! - [`ServiceObs::http`] goes to [`oak_http::TcpServer::start_with_obs`],
//! - [`ServiceObs::core`] goes to [`oak_core::engine::Oak::set_obs`],
//! - [`ServiceObs::store`] goes to [`oak_store::OakStore::set_obs`],
//! - the bundle itself goes to [`crate::OakService::with_obs`], which
//!   wraps every request in a trace, counts responses by status, and
//!   serves `GET /oak/metrics` and `GET /oak/trace/recent`.
//!
//! Everything is per-instance — no globals — so parallel tests and
//! repeated simulator scenarios each observe only their own traffic.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use oak_core::obs::CoreMetrics;
use oak_http::HttpMetrics;
use oak_obs::{Clock, Counter, Registry, Tracer};
use oak_store::StoreMetrics;

/// One observability bundle: registry, tracer, and every layer's
/// pre-resolved metric handles.
pub struct ServiceObs {
    /// The registry every family below lives in; `GET /oak/metrics`
    /// scrapes it.
    pub registry: Arc<Registry>,
    /// Nanosecond clock shared by all histograms and the tracer.
    pub clock: Clock,
    /// Request tracer backing `GET /oak/trace/recent`.
    pub tracer: Arc<Tracer>,
    /// HTTP stage histograms, for [`oak_http::TcpServer::start_with_obs`].
    pub http: Arc<HttpMetrics>,
    /// Engine stage histograms, for [`oak_core::engine::Oak::set_obs`].
    pub core: Arc<CoreMetrics>,
    /// WAL and snapshot metrics, for [`oak_store::OakStore::set_obs`].
    pub store: Arc<StoreMetrics>,
    /// Per-status series of `oak_http_responses_total`, resolved lazily
    /// (the status space is small, so the map stays tiny and hot
    /// requests hit the fast path after the first response per status).
    responses: Mutex<HashMap<u16, Arc<Counter>>>,
}

impl ServiceObs {
    /// A bundle with its own fresh [`Registry`] and a [`Tracer`] holding
    /// the last `trace_ring` traces, logging those slower than
    /// `slow_ms`.
    pub fn new(clock: Clock, trace_ring: usize, slow_ms: u64) -> Arc<ServiceObs> {
        let registry = Arc::new(Registry::new());
        let tracer = Tracer::new(Arc::clone(&clock), trace_ring, slow_ms);
        let http = HttpMetrics::new(&registry, Arc::clone(&clock));
        let core = CoreMetrics::new(&registry, Arc::clone(&clock));
        let store = StoreMetrics::new(&registry, Arc::clone(&clock));
        Arc::new(ServiceObs {
            registry,
            clock,
            tracer,
            http,
            core,
            store,
            responses: Mutex::new(HashMap::new()),
        })
    }

    /// A bundle on the wall clock — the live-deployment default.
    pub fn wall(trace_ring: usize, slow_ms: u64) -> Arc<ServiceObs> {
        ServiceObs::new(oak_obs::wall_clock(), trace_ring, slow_ms)
    }

    /// Counts one response under `oak_http_responses_total{status=...}`.
    pub fn count_response(&self, status: u16) {
        let counter = {
            let mut map = self.responses.lock().expect("response counter lock");
            match map.get(&status) {
                Some(c) => Arc::clone(c),
                None => {
                    let value = status.to_string();
                    let c = self.registry.counter(
                        "oak_http_responses_total",
                        "Responses produced by the Oak service, by status code.",
                        &[("status", value.as_str())],
                    );
                    map.insert(status, Arc::clone(&c));
                    c
                }
            }
        };
        counter.inc();
    }

    /// The current clock reading, nanoseconds.
    pub fn now(&self) -> u64 {
        (self.clock)()
    }
}

impl std::fmt::Debug for ServiceObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceObs").finish_non_exhaustive()
    }
}
