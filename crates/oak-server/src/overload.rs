//! Overload control: measure saturation, degrade deliberately.
//!
//! Every other guard in the stack (connection permits, admission
//! buckets, read deadlines) reacts to a single request; this module
//! reacts to the *node*. An [`OverloadController`] samples signals the
//! serving stack already maintains — worker-queue depth and loop lag
//! from [`oak_edge::EdgeStats`], permit occupancy from
//! [`oak_http::TransportStats`], windowed ingest latency from the
//! engine's `oak_ingest_duration_us` histogram — and drives a
//! hysteresis state machine:
//!
//! ```text
//! Nominal ──pressure──► Brownout ──pressure──► Shedding
//!    ▲                     │                      │
//!    └──── cooldown ◄──────┴────── cooldown ◄─────┘
//! ```
//!
//! - **Brownout** degrades quality before refusing work: pages are
//!   served *unrewritten* (the paper's no-op fallback — an Oak outage
//!   "silently result[s] in pages being served as-is"), request traces
//!   stop, and prune sweeps stretch out.
//! - **Shedding** refuses work in priority order, cheapest loss first:
//!   page rewrites at severity 1, operator scrapes at severity 2,
//!   report ingest only at severity 3 — and `/oak/health` never, so the
//!   load balancer can always tell a degraded node from a dead one.
//!
//! Escalation is immediate (one bad sample); de-escalation steps down
//! one state at a time after [`OverloadPolicy::cooldown_samples`]
//! consecutive calm samples, so the controller cannot flap across a
//! threshold at the sampling rate.
//!
//! The transition function ([`OverloadController::observe`]) is pure
//! state: `oak-sim` drives it with deterministic samples and checks it
//! against an independent reference model, while the live service feeds
//! it real signals through [`OverloadController::tick`].

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use oak_edge::EdgeStats;
use oak_http::{Response, StatusCode, TransportStats, SHED_RETRY_AFTER_SECS};
use oak_obs::{Histogram, HistogramSnapshot};

use crate::{AUDIT_PATH, HEALTH_PATH, METRICS_PATH, REPORT_PATH, STATS_PATH, TRACE_PATH};

/// Where the controller currently sits. Ordering is meaningful:
/// `Shedding > Brownout > Nominal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadState {
    /// Full service: rewrite pages, trace requests, accept everything.
    Nominal,
    /// Degraded quality: pages served unrewritten, traces and prune
    /// sweeps throttled, nothing refused.
    Brownout,
    /// Refusing work by priority class (see [`RequestClass`]).
    Shedding,
}

impl OverloadState {
    /// The wire name used in `/oak/stats` and `/oak/health`.
    pub fn as_str(self) -> &'static str {
        match self {
            OverloadState::Nominal => "nominal",
            OverloadState::Brownout => "brownout",
            OverloadState::Shedding => "shedding",
        }
    }

    fn from_u8(raw: u8) -> OverloadState {
        match raw {
            2 => OverloadState::Shedding,
            1 => OverloadState::Brownout,
            _ => OverloadState::Nominal,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            OverloadState::Nominal => 0,
            OverloadState::Brownout => 1,
            OverloadState::Shedding => 2,
        }
    }
}

/// What a request costs the node, for priority shedding. The order is
/// the shed order: pages go first (the paper's fallback is explicitly
/// safe — an unmodified page is still a page, and a 503'd page retry is
/// cheap), operator scrapes next (dashboards can miss a beat), report
/// ingest last (reports are the product — each one lost is measurement
/// data gone), and health probes never.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// `GET /oak/health` — never shed.
    Health,
    /// Page and static-object serves — shed at severity ≥ 1.
    Page,
    /// Operator surfaces (`/oak/stats`, `/oak/metrics`, `/oak/audit`,
    /// `/oak/trace/recent`) — shed at severity ≥ 2.
    Scrape,
    /// `POST /oak/report` ingest — shed only at severity ≥ 3.
    Report,
}

impl RequestClass {
    /// Classifies a request path (query already stripped).
    pub fn of(path: &str) -> RequestClass {
        match path {
            HEALTH_PATH => RequestClass::Health,
            REPORT_PATH => RequestClass::Report,
            STATS_PATH | METRICS_PATH | AUDIT_PATH | TRACE_PATH => RequestClass::Scrape,
            _ => RequestClass::Page,
        }
    }

    /// The label value in `oak_requests_shed_total{class=…}`.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestClass::Health => "health",
            RequestClass::Page => "page",
            RequestClass::Scrape => "scrape",
            RequestClass::Report => "report",
        }
    }

    /// The minimum shed severity at which this class is refused;
    /// `None` is never.
    fn shed_at(self) -> Option<u8> {
        match self {
            RequestClass::Health => None,
            RequestClass::Page => Some(1),
            RequestClass::Scrape => Some(2),
            RequestClass::Report => Some(3),
        }
    }
}

/// Thresholds and pacing for the controller. Each signal has a
/// brownout and a shed threshold; crossing *any* shed threshold puts
/// the node in [`OverloadState::Shedding`], any brownout threshold in
/// at least [`OverloadState::Brownout`]. A zero threshold disables
/// that signal.
#[derive(Clone, Copy, Debug)]
pub struct OverloadPolicy {
    /// Live signals are sampled at most once per this many milliseconds
    /// (the controller piggybacks on request handling; sampling is
    /// rate-limited, not scheduled).
    pub sample_every_ms: u64,
    /// Worker-queue depth (jobs parked behind the pool) thresholds.
    pub queue_brownout: u64,
    /// See [`OverloadPolicy::queue_brownout`].
    pub queue_shed: u64,
    /// Reactor loop lag (µs one iteration spent processing) thresholds.
    pub lag_brownout_us: u64,
    /// See [`OverloadPolicy::lag_brownout_us`].
    pub lag_shed_us: u64,
    /// Permit occupancy (live connections ÷ `max_connections`)
    /// thresholds, in `0.0..=1.0`.
    pub permit_brownout: f64,
    /// See [`OverloadPolicy::permit_brownout`].
    pub permit_shed: f64,
    /// Windowed ingest p99 (µs, over the last sampling window)
    /// thresholds.
    pub ingest_p99_brownout_us: u64,
    /// See [`OverloadPolicy::ingest_p99_brownout_us`].
    pub ingest_p99_shed_us: u64,
    /// The connection cap the permit signal is normalized against.
    pub max_connections: u64,
    /// Consecutive calm samples before stepping down one state.
    pub cooldown_samples: u32,
}

impl Default for OverloadPolicy {
    fn default() -> OverloadPolicy {
        OverloadPolicy {
            sample_every_ms: 100,
            queue_brownout: 16,
            queue_shed: 64,
            lag_brownout_us: 20_000,
            lag_shed_us: 100_000,
            permit_brownout: 0.80,
            permit_shed: 0.95,
            ingest_p99_brownout_us: 20_000,
            ingest_p99_shed_us: 100_000,
            max_connections: 1024,
            cooldown_samples: 5,
        }
    }
}

/// One sampled reading of every pressure signal. The live path builds
/// these in [`OverloadController::tick`]; the simulator constructs them
/// deterministically and calls [`OverloadController::observe`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PressureSample {
    /// Jobs queued for the worker pool, not yet picked up.
    pub queue_depth: u64,
    /// Reactor loop lag, µs.
    pub loop_lag_us: u64,
    /// Live connections ÷ connection cap.
    pub permit_occupancy: f64,
    /// Ingest p99 over the last sampling window, µs.
    pub ingest_p99_us: u64,
}

impl OverloadPolicy {
    /// The state this sample demands, ignoring hysteresis, plus the
    /// shed severity (1..=3) when that state is `Shedding`. Severity is
    /// the worst signal's multiple of its shed threshold: 1 under
    /// 1.5×, 2 under 2×, 3 at or beyond 2× — the priority ladder that
    /// decides which [`RequestClass`]es are refused.
    pub fn demand(&self, s: &PressureSample) -> (OverloadState, u8) {
        let ratios = [
            ratio(s.queue_depth as f64, self.queue_shed as f64),
            ratio(s.loop_lag_us as f64, self.lag_shed_us as f64),
            ratio(s.permit_occupancy, self.permit_shed),
            ratio(s.ingest_p99_us as f64, self.ingest_p99_shed_us as f64),
        ];
        let worst = ratios.iter().fold(0.0f64, |a, &b| a.max(b));
        if worst >= 1.0 {
            let severity = if worst >= 2.0 {
                3
            } else if worst >= 1.5 {
                2
            } else {
                1
            };
            return (OverloadState::Shedding, severity);
        }
        let browned = above(s.queue_depth as f64, self.queue_brownout as f64)
            || above(s.loop_lag_us as f64, self.lag_brownout_us as f64)
            || above(s.permit_occupancy, self.permit_brownout)
            || above(s.ingest_p99_us as f64, self.ingest_p99_brownout_us as f64);
        if browned {
            (OverloadState::Brownout, 0)
        } else {
            (OverloadState::Nominal, 0)
        }
    }
}

/// `value / threshold`, 0 when the signal is disabled.
fn ratio(value: f64, threshold: f64) -> f64 {
    if threshold <= 0.0 {
        0.0
    } else {
        value / threshold
    }
}

/// Threshold crossed (disabled thresholds never cross).
fn above(value: f64, threshold: f64) -> bool {
    threshold > 0.0 && value >= threshold
}

/// State behind the controller's mutex: sampling pacing, the cooldown
/// streak, and the previous ingest-histogram snapshot the windowed p99
/// is deltaed against.
struct ControllerInner {
    last_sample_ms: u64,
    calm_streak: u32,
    prev_ingest: Option<HistogramSnapshot>,
}

/// A point-in-time copy of the controller's observable state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadSnapshot {
    /// Current state as its wire number (0 nominal, 1 brownout, 2 shedding).
    pub state: u8,
    /// Current shed severity (0 outside Shedding).
    pub severity: u8,
    /// Page/object requests refused.
    pub shed_pages: u64,
    /// Operator scrapes refused.
    pub shed_scrapes: u64,
    /// Report ingests refused.
    pub shed_reports: u64,
    /// Pages served unrewritten under Brownout.
    pub pages_browned: u64,
    /// Times the controller entered Brownout (from below).
    pub brownout_entries: u64,
    /// Times the controller entered Shedding.
    pub shedding_entries: u64,
}

/// The hysteresis state machine plus its shed accounting. One instance
/// is shared by the service (gating dispatch), the transport admission
/// hook, and the operator surfaces.
pub struct OverloadController {
    policy: OverloadPolicy,
    /// `OverloadState` as its wire number, readable without the lock on
    /// every request.
    state: AtomicU8,
    severity: AtomicU8,
    inner: Mutex<ControllerInner>,
    shed_pages: AtomicU64,
    shed_scrapes: AtomicU64,
    shed_reports: AtomicU64,
    pages_browned: AtomicU64,
    brownout_entries: AtomicU64,
    shedding_entries: AtomicU64,
    /// Reactor gauges, when the epoll backend serves.
    edge: OnceLock<Arc<EdgeStats>>,
    /// Transport counters (either backend): permit occupancy.
    transport: OnceLock<Arc<TransportStats>>,
    /// The engine's ingest-duration histogram, when observability is on.
    ingest: OnceLock<Arc<Histogram>>,
    /// Driven mode: `tick` never samples; only explicit `observe` calls
    /// move the machine. The simulator's determinism depends on it.
    driven: bool,
}

impl OverloadController {
    /// A live controller that samples attached signals on
    /// [`OverloadController::tick`].
    pub fn new(policy: OverloadPolicy) -> Arc<OverloadController> {
        Arc::new(OverloadController::build(policy, false))
    }

    /// A driven controller for deterministic harnesses: `tick` is a
    /// no-op; the harness feeds [`OverloadController::observe`]
    /// directly.
    pub fn driven(policy: OverloadPolicy) -> Arc<OverloadController> {
        Arc::new(OverloadController::build(policy, true))
    }

    fn build(policy: OverloadPolicy, driven: bool) -> OverloadController {
        OverloadController {
            policy,
            state: AtomicU8::new(OverloadState::Nominal.as_u8()),
            severity: AtomicU8::new(0),
            inner: Mutex::new(ControllerInner {
                last_sample_ms: 0,
                calm_streak: 0,
                prev_ingest: None,
            }),
            shed_pages: AtomicU64::new(0),
            shed_scrapes: AtomicU64::new(0),
            shed_reports: AtomicU64::new(0),
            pages_browned: AtomicU64::new(0),
            brownout_entries: AtomicU64::new(0),
            shedding_entries: AtomicU64::new(0),
            edge: OnceLock::new(),
            transport: OnceLock::new(),
            ingest: OnceLock::new(),
            driven,
        }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Attaches the reactor gauges (queue depth, loop lag). First call
    /// wins, like the service's own post-start setters.
    pub fn attach_edge(&self, stats: Arc<EdgeStats>) {
        let _ = self.edge.set(stats);
    }

    /// Attaches the transport counters (permit occupancy).
    pub fn attach_transport(&self, stats: Arc<TransportStats>) {
        let _ = self.transport.set(stats);
    }

    /// Attaches the engine's ingest-duration histogram (windowed p99).
    pub fn attach_ingest(&self, histogram: Arc<Histogram>) {
        let _ = self.ingest.set(histogram);
    }

    /// Current state, lock-free.
    pub fn state(&self) -> OverloadState {
        OverloadState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Current shed severity (0 outside Shedding).
    pub fn severity(&self) -> u8 {
        self.severity.load(Ordering::Relaxed)
    }

    /// True in Brownout or worse: bypass page rewrites, stop tracing,
    /// stretch prune sweeps.
    pub fn brownout_active(&self) -> bool {
        self.state() >= OverloadState::Brownout
    }

    /// The prune-cadence multiplier: sweeps run this many times less
    /// often under pressure (background work is the first thing a
    /// saturated node should stop doing promptly).
    pub fn prune_stretch(&self) -> u64 {
        if self.brownout_active() {
            4
        } else {
            1
        }
    }

    /// Whether a request of `class` must be refused right now.
    pub fn should_shed(&self, class: RequestClass) -> bool {
        if self.state() != OverloadState::Shedding {
            return false;
        }
        class
            .shed_at()
            .is_some_and(|threshold| self.severity() >= threshold)
    }

    /// Builds the counted 503 + Retry-After for a shed request of
    /// `class`. Byte-identical wherever it is minted (service dispatch,
    /// either transport backend's admission hook), so a client cannot
    /// tell where in the stack it was refused.
    pub fn shed_response(&self, class: RequestClass) -> Response {
        let counter = match class {
            RequestClass::Page => &self.shed_pages,
            RequestClass::Scrape => &self.shed_scrapes,
            RequestClass::Report => &self.shed_reports,
            // Health is never shed; counting it would hide a bug.
            RequestClass::Health => &self.shed_pages,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Response::new(StatusCode::UNAVAILABLE)
            .with_body(b"overloaded; request shed".to_vec(), "text/plain")
            .with_header("Retry-After", &SHED_RETRY_AFTER_SECS.to_string())
    }

    /// Counts one page served unrewritten under Brownout.
    pub fn note_browned_page(&self) {
        self.pages_browned.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every counter and the current state.
    pub fn snapshot(&self) -> OverloadSnapshot {
        OverloadSnapshot {
            state: self.state.load(Ordering::Relaxed),
            severity: self.severity.load(Ordering::Relaxed),
            shed_pages: self.shed_pages.load(Ordering::Relaxed),
            shed_scrapes: self.shed_scrapes.load(Ordering::Relaxed),
            shed_reports: self.shed_reports.load(Ordering::Relaxed),
            pages_browned: self.pages_browned.load(Ordering::Relaxed),
            brownout_entries: self.brownout_entries.load(Ordering::Relaxed),
            shedding_entries: self.shedding_entries.load(Ordering::Relaxed),
        }
    }

    /// Live sampling entry point, called from request handling. At most
    /// once per [`OverloadPolicy::sample_every_ms`] it gathers the
    /// attached signals into a [`PressureSample`] and runs the
    /// transition. No-op on a driven controller.
    pub fn tick(&self, now_ms: u64) {
        if self.driven {
            return;
        }
        let sample = {
            let mut inner = self.inner.lock().expect("overload inner");
            if now_ms.saturating_sub(inner.last_sample_ms) < self.policy.sample_every_ms.max(1)
                && inner.last_sample_ms != 0
            {
                return;
            }
            inner.last_sample_ms = now_ms;
            self.gather(&mut inner)
        };
        self.observe(&sample, now_ms);
    }

    /// Builds a [`PressureSample`] from whatever signal sources are
    /// attached; absent sources read as zero pressure.
    fn gather(&self, inner: &mut ControllerInner) -> PressureSample {
        let mut sample = PressureSample::default();
        if let Some(edge) = self.edge.get() {
            let e = edge.snapshot();
            sample.queue_depth = e.worker_queue_depth;
            sample.loop_lag_us = e.loop_lag_us;
        }
        if let Some(transport) = self.transport.get() {
            let t = transport.snapshot();
            let live = t.connections_accepted.saturating_sub(t.connections_closed);
            sample.permit_occupancy = live as f64 / self.policy.max_connections.max(1) as f64;
        }
        if let Some(histogram) = self.ingest.get() {
            let snap = histogram.snapshot();
            if let Some(prev) = inner.prev_ingest.replace(snap.clone()) {
                sample.ingest_p99_us = window_quantile(&prev, &snap, 0.99).unwrap_or(0.0) as u64;
            }
        }
        sample
    }

    /// The pure transition function: applies one sample to the state
    /// machine. Escalation is immediate; de-escalation needs
    /// [`OverloadPolicy::cooldown_samples`] consecutive samples whose
    /// demanded state is strictly below the current one, and steps down
    /// one state at a time. Returns the state after the sample.
    pub fn observe(&self, sample: &PressureSample, now_ms: u64) -> OverloadState {
        let _ = now_ms; // the machine is sample-counted, not clocked
        let (demanded, demanded_severity) = self.policy.demand(sample);
        let mut inner = self.inner.lock().expect("overload inner");
        let current = self.state();
        let next = if demanded >= current {
            inner.calm_streak = 0;
            demanded
        } else {
            inner.calm_streak += 1;
            if inner.calm_streak >= self.policy.cooldown_samples.max(1) {
                inner.calm_streak = 0;
                OverloadState::from_u8(current.as_u8() - 1)
            } else {
                current
            }
        };
        // Severity tracks the sample while Shedding is demanded; during
        // a shedding cooldown only the gentlest class (pages) stays shed.
        let severity = match next {
            OverloadState::Shedding => demanded_severity.max(1),
            _ => 0,
        };
        self.severity.store(severity, Ordering::Relaxed);
        if next > current {
            match next {
                OverloadState::Brownout => {
                    self.brownout_entries.fetch_add(1, Ordering::Relaxed);
                }
                OverloadState::Shedding => {
                    self.shedding_entries.fetch_add(1, Ordering::Relaxed);
                    // Jumping Nominal → Shedding passes through Brownout
                    // conceptually; count the brownout entry too so the
                    // transition counters sum sensibly.
                    if current == OverloadState::Nominal {
                        self.brownout_entries.fetch_add(1, Ordering::Relaxed);
                    }
                }
                OverloadState::Nominal => {}
            }
        }
        self.state.store(next.as_u8(), Ordering::Relaxed);
        next
    }
}

/// The quantile of the *window* between two cumulative histogram
/// snapshots: bucket-wise delta, then the standard interpolated
/// histogram quantile. `None` when the window recorded nothing.
fn window_quantile(prev: &HistogramSnapshot, now: &HistogramSnapshot, q: f64) -> Option<f64> {
    if prev.buckets.len() != now.buckets.len() {
        return now.quantile(q);
    }
    let delta = HistogramSnapshot {
        bounds: Arc::clone(&now.bounds),
        buckets: now
            .buckets
            .iter()
            .zip(&prev.buckets)
            .map(|(n, p)| n.saturating_sub(*p))
            .collect(),
        sum: (now.sum - prev.sum).max(0.0),
    };
    delta.quantile(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> OverloadPolicy {
        OverloadPolicy {
            cooldown_samples: 3,
            ..OverloadPolicy::default()
        }
    }

    fn calm() -> PressureSample {
        PressureSample::default()
    }

    fn queue(depth: u64) -> PressureSample {
        PressureSample {
            queue_depth: depth,
            ..PressureSample::default()
        }
    }

    #[test]
    fn escalates_immediately_and_cools_down_stepwise() {
        let ctl = OverloadController::driven(policy());
        assert_eq!(ctl.observe(&queue(200), 0), OverloadState::Shedding);
        // Calm samples: stays Shedding through the cooldown, then steps
        // to Brownout (not straight to Nominal).
        assert_eq!(ctl.observe(&calm(), 1), OverloadState::Shedding);
        assert_eq!(ctl.observe(&calm(), 2), OverloadState::Shedding);
        assert_eq!(ctl.observe(&calm(), 3), OverloadState::Brownout);
        assert_eq!(ctl.observe(&calm(), 4), OverloadState::Brownout);
        assert_eq!(ctl.observe(&calm(), 5), OverloadState::Brownout);
        assert_eq!(ctl.observe(&calm(), 6), OverloadState::Nominal);
    }

    #[test]
    fn pressure_mid_cooldown_resets_the_streak() {
        let ctl = OverloadController::driven(policy());
        ctl.observe(&queue(200), 0);
        ctl.observe(&calm(), 1);
        ctl.observe(&calm(), 2);
        // Pressure returns: the streak restarts from zero.
        assert_eq!(ctl.observe(&queue(200), 3), OverloadState::Shedding);
        ctl.observe(&calm(), 4);
        ctl.observe(&calm(), 5);
        assert_eq!(ctl.state(), OverloadState::Shedding);
        assert_eq!(ctl.observe(&calm(), 6), OverloadState::Brownout);
    }

    #[test]
    fn severity_ladder_sheds_classes_in_priority_order() {
        let ctl = OverloadController::driven(policy());
        // queue_shed = 64: 1× → pages only.
        ctl.observe(&queue(64), 0);
        assert!(ctl.should_shed(RequestClass::Page));
        assert!(!ctl.should_shed(RequestClass::Scrape));
        assert!(!ctl.should_shed(RequestClass::Report));
        // 1.5× → pages + scrapes.
        ctl.observe(&queue(96), 1);
        assert!(ctl.should_shed(RequestClass::Scrape));
        assert!(!ctl.should_shed(RequestClass::Report));
        // 2× → everything but health.
        ctl.observe(&queue(128), 2);
        assert!(ctl.should_shed(RequestClass::Report));
        assert!(!ctl.should_shed(RequestClass::Health));
    }

    #[test]
    fn brownout_thresholds_sit_below_shedding() {
        let ctl = OverloadController::driven(policy());
        assert_eq!(ctl.observe(&queue(16), 0), OverloadState::Brownout);
        assert!(ctl.brownout_active());
        assert!(!ctl.should_shed(RequestClass::Page));
        assert_eq!(ctl.prune_stretch(), 4);
    }

    #[test]
    fn shed_response_counts_by_class_and_hints_retry() {
        let ctl = OverloadController::driven(policy());
        let response = ctl.shed_response(RequestClass::Report);
        assert_eq!(response.status, StatusCode::UNAVAILABLE);
        assert_eq!(
            response.header("retry-after"),
            Some(SHED_RETRY_AFTER_SECS.to_string().as_str())
        );
        assert_eq!(ctl.snapshot().shed_reports, 1);
    }

    #[test]
    fn windowed_quantile_ignores_history_before_the_window() {
        let hist = Histogram::new(oak_obs::DURATION_BOUNDS_US);
        for _ in 0..1_000 {
            hist.record(500_000.0); // ancient slowness
        }
        let prev = hist.snapshot();
        for _ in 0..100 {
            hist.record(100.0); // calm window
        }
        let now = hist.snapshot();
        let p99 = window_quantile(&prev, &now, 0.99).unwrap();
        assert!(
            p99 <= 1_000.0,
            "window p99 {p99} must reflect only the calm window"
        );
    }

    #[test]
    fn classifies_paths() {
        assert_eq!(RequestClass::of("/oak/health"), RequestClass::Health);
        assert_eq!(RequestClass::of("/oak/report"), RequestClass::Report);
        assert_eq!(RequestClass::of("/oak/stats"), RequestClass::Scrape);
        assert_eq!(RequestClass::of("/oak/metrics"), RequestClass::Scrape);
        assert_eq!(RequestClass::of("/index.html"), RequestClass::Page);
    }
}
