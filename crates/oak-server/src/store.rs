//! The in-memory document root.

use std::collections::BTreeMap;

/// Pages and static objects served by the Oak web server.
///
/// Pages are HTML documents that pass through Oak's per-user rewriting;
/// objects are opaque bytes served as-is (the benchmark pages' test files,
/// mirrored third-party objects, and so on).
#[derive(Clone, Debug, Default)]
pub struct SiteStore {
    pages: BTreeMap<String, String>,
    objects: BTreeMap<String, (String, Vec<u8>)>,
}

impl SiteStore {
    /// An empty store.
    pub fn new() -> SiteStore {
        SiteStore::default()
    }

    /// Adds (or replaces) an HTML page at `path`.
    pub fn add_page(&mut self, path: impl Into<String>, html: impl Into<String>) {
        self.pages.insert(path.into(), html.into());
    }

    /// Adds (or replaces) a static object at `path`.
    pub fn add_object(
        &mut self,
        path: impl Into<String>,
        content_type: impl Into<String>,
        bytes: Vec<u8>,
    ) {
        self.objects
            .insert(path.into(), (content_type.into(), bytes));
    }

    /// The page at `path`, if any.
    pub fn page(&self, path: &str) -> Option<&str> {
        self.pages.get(path).map(String::as_str)
    }

    /// The object at `path`, if any: `(content_type, bytes)`.
    pub fn object(&self, path: &str) -> Option<(&str, &[u8])> {
        self.objects
            .get(path)
            .map(|(ct, bytes)| (ct.as_str(), bytes.as_slice()))
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Paths of all pages, sorted.
    pub fn page_paths(&self) -> impl Iterator<Item = &str> {
        self.pages.keys().map(String::as_str)
    }
}
