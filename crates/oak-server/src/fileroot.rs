//! Loading a document root and rules file from disk — the `oak-serve`
//! binary's plumbing, kept in the library so it is testable.

use std::fs;
use std::io;
use std::path::Path;

use oak_core::engine::{Oak, OakConfig};
use oak_core::spec::parse_rules;

use crate::store::SiteStore;

/// Maps a file extension to a Content-Type.
pub fn content_type_for(path: &str) -> &'static str {
    match path.rsplit('.').next().unwrap_or("") {
        "html" | "htm" => "text/html; charset=utf-8",
        "css" => "text/css",
        "js" => "application/javascript",
        "json" => "application/json",
        "png" => "image/png",
        "jpg" | "jpeg" => "image/jpeg",
        "gif" => "image/gif",
        "svg" => "image/svg+xml",
        "woff" | "woff2" => "font/woff2",
        "ico" => "image/x-icon",
        "txt" => "text/plain; charset=utf-8",
        _ => "application/octet-stream",
    }
}

/// Loads every file under `root` into a [`SiteStore`]: `.html`/`.htm`
/// files become pages (served through the Oak rewriter), everything else
/// becomes a static object. Paths are the `/`-joined relative paths;
/// `index.html` files are additionally reachable at their directory path.
///
/// # Errors
///
/// Propagates filesystem errors; non-UTF-8 HTML is an
/// [`io::ErrorKind::InvalidData`] error.
pub fn load_root(root: &Path) -> io::Result<SiteStore> {
    let mut store = SiteStore::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .expect("entries live under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let url_path = format!("/{rel}");
            let bytes = fs::read(&path)?;
            if url_path.ends_with(".html") || url_path.ends_with(".htm") {
                let html = String::from_utf8(bytes).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{url_path} is not UTF-8"),
                    )
                })?;
                if let Some(dir_path) = url_path.strip_suffix("index.html") {
                    store.add_page(dir_path.to_owned(), html.clone());
                }
                store.add_page(url_path, html);
            } else {
                store.add_object(url_path, content_type_for(&rel), bytes);
            }
        }
    }
    Ok(store)
}

/// Loads a rules file in the §4.1 spec format into a fresh engine.
///
/// # Errors
///
/// Propagates I/O errors; spec errors are converted to
/// [`io::ErrorKind::InvalidData`] with the line number preserved in the
/// message.
pub fn load_rules(path: &Path, config: OakConfig) -> io::Result<Oak> {
    let oak = Oak::new(config);
    load_rules_into(&oak, path)?;
    Ok(oak)
}

/// Loads a rules file into an existing engine — the recovery-aware
/// variant: a durable server boots its engine from the store first
/// ([`oak_store::OakStore::boot`]) and only then registers any rules the
/// operator's file adds. Returns how many rules were registered.
///
/// # Errors
///
/// Same as [`load_rules`].
pub fn load_rules_into(oak: &Oak, path: &Path) -> io::Result<usize> {
    let text = fs::read_to_string(path)?;
    let rules = parse_rules(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let count = rules.len();
    for rule in rules {
        oak.add_rule(rule)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    }
    Ok(count)
}
