//! Tests for the Oak HTTP service.

use std::sync::Arc;

use oak_core::engine::{Oak, OakConfig};
use oak_core::report::{ObjectTiming, PerfReport};
use oak_core::rule::Rule;
use oak_core::{Instant, OAK_ALTERNATE_HEADER};
use oak_http::cookie::{get_cookie, OAK_USER_COOKIE};
use oak_http::{fetch_tcp, Handler, Method, Request, Response, StatusCode, TcpServer};

use crate::{OakService, SiteStore, REPORT_PATH};

const JQ_DEFAULT: &str = r#"<script src="http://cdn-a.example/jquery.js">"#;
const JQ_ALT: &str = r#"<script src="http://cdn-b.example/jquery.js">"#;
const PAGE: &str = r#"<html><head><script src="http://cdn-a.example/jquery.js"></script></head><body>shop</body></html>"#;

fn service_with_rule() -> OakService {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT]))
        .unwrap();
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    store.add_object("/logo.png", "image/png", vec![0x89, 0x50, 0x4e, 0x47]);
    OakService::new(oak, store)
}

/// A report that makes cdn-a.example the clear violator.
fn violating_report(user: &str) -> PerfReport {
    let mut r = PerfReport::new(user, "/index.html");
    r.push(ObjectTiming::new(
        "http://cdn-a.example/jquery.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.2",
        30_000,
        80.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        30_000,
        95.0,
    ));
    r.push(ObjectTiming::new(
        "http://fonts.example/f.woff",
        "10.0.0.3",
        30_000,
        70.0,
    ));
    r.push(ObjectTiming::new(
        "http://api.example/d.js",
        "10.0.0.4",
        30_000,
        90.0,
    ));
    r
}

fn get(service: &OakService, path: &str, cookie: Option<&str>) -> Response {
    let mut req = Request::new(Method::Get, path);
    if let Some(c) = cookie {
        req.headers.set("Cookie", format!("{OAK_USER_COOKIE}={c}"));
    }
    service.handle(&req)
}

fn post_report(service: &OakService, report: &PerfReport, cookie: Option<&str>) -> Response {
    let mut req = Request::new(Method::Post, REPORT_PATH)
        .with_body(report.to_json().into_bytes(), "application/json");
    if let Some(c) = cookie {
        req.headers.set("Cookie", format!("{OAK_USER_COOKIE}={c}"));
    }
    service.handle(&req)
}

#[test]
fn first_visit_mints_a_cookie() {
    let service = service_with_rule();
    let resp = get(&service, "/index.html", None);
    assert_eq!(resp.status, StatusCode::OK);
    let cookie = resp.header("set-cookie").expect("cookie set");
    let user = get_cookie(cookie, OAK_USER_COOKIE).expect("oak_uid present");
    assert!(user.starts_with("u-"));
    // A returning visitor keeps their cookie: no Set-Cookie again.
    let resp2 = get(&service, "/index.html", Some(user));
    assert!(resp2.header("set-cookie").is_none());
}

#[test]
fn report_then_page_applies_rule_for_that_user_only() {
    let service = service_with_rule();
    let resp = post_report(&service, &violating_report("u-7"), Some("u-7"));
    assert_eq!(resp.status, StatusCode::NO_CONTENT);

    let page_for_u7 = get(&service, "/index.html", Some("u-7"));
    assert!(page_for_u7.body_text().contains("cdn-b.example"));
    assert_eq!(
        page_for_u7.header(OAK_ALTERNATE_HEADER),
        Some("cdn-a.example=cdn-b.example")
    );

    let page_for_other = get(&service, "/index.html", Some("u-8"));
    assert!(page_for_other.body_text().contains("cdn-a.example"));
    assert!(page_for_other.header(OAK_ALTERNATE_HEADER).is_none());
}

#[test]
fn cookie_overrides_report_body_user() {
    let service = service_with_rule();
    // Body claims u-fake; the cookie says u-real. Cookie wins.
    post_report(&service, &violating_report("u-fake"), Some("u-real"));
    let page = get(&service, "/index.html", Some("u-real"));
    assert!(page.body_text().contains("cdn-b.example"));
    let fake = get(&service, "/index.html", Some("u-fake"));
    assert!(fake.body_text().contains("cdn-a.example"));
}

#[test]
fn malformed_reports_are_rejected() {
    let service = service_with_rule();
    let req = Request::new(Method::Post, REPORT_PATH)
        .with_body(b"{bad json".to_vec(), "application/json");
    let resp = service.handle(&req);
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    let stats = service.stats();
    assert_eq!(stats.reports_rejected, 1);
    assert_eq!(stats.reports_accepted, 0);
}

#[test]
fn serves_static_objects_and_404s() {
    let service = service_with_rule();
    let obj = get(&service, "/logo.png", None);
    assert_eq!(obj.status, StatusCode::OK);
    assert_eq!(obj.header("content-type"), Some("image/png"));
    assert_eq!(
        get(&service, "/missing", None).status,
        StatusCode::NOT_FOUND
    );
    let put = service.handle(&Request::new(Method::Put, "/index.html"));
    assert_eq!(put.status, StatusCode(405));
}

#[test]
fn stats_count_all_traffic() {
    let service = service_with_rule();
    get(&service, "/index.html", Some("u-1"));
    get(&service, "/index.html", Some("u-1"));
    get(&service, "/logo.png", None);
    post_report(&service, &violating_report("u-1"), Some("u-1"));
    let stats = service.stats();
    assert_eq!(stats.pages_served, 2);
    assert_eq!(stats.objects_served, 1);
    assert_eq!(stats.reports_accepted, 1);
}

#[test]
fn clock_drives_ttl_expiry() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT]).with_ttl_ms(Some(60_000)))
        .unwrap();
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    let now = Arc::new(AtomicU64::new(0));
    let clock_now = Arc::clone(&now);
    let service =
        OakService::new(oak, store).with_clock(move || Instant(clock_now.load(Ordering::SeqCst)));

    post_report(&service, &violating_report("u-1"), Some("u-1"));
    assert!(get(&service, "/index.html", Some("u-1"))
        .body_text()
        .contains("cdn-b.example"));

    now.store(120_000, Ordering::SeqCst);
    assert!(
        get(&service, "/index.html", Some("u-1"))
            .body_text()
            .contains("cdn-a.example"),
        "rule expired after TTL"
    );
}

#[test]
fn full_loop_over_real_tcp() {
    let service = service_with_rule().into_shared();
    let mut server = TcpServer::start(0, service.clone()).unwrap();
    let addr = server.addr();

    // 1. First page fetch: default content + cookie.
    let resp = fetch_tcp(addr, &Request::new(Method::Get, "/index.html")).unwrap();
    let cookie_header = resp.header("set-cookie").unwrap().to_owned();
    let user = get_cookie(&cookie_header, OAK_USER_COOKIE)
        .unwrap()
        .to_owned();
    assert!(resp.body_text().contains("cdn-a.example"));

    // 2. POST a violating report with the cookie.
    let report = violating_report(&user);
    let req = Request::new(Method::Post, REPORT_PATH)
        .with_body(report.to_json().into_bytes(), "application/json")
        .with_header("Cookie", &format!("{OAK_USER_COOKIE}={user}"));
    let resp = fetch_tcp(addr, &req).unwrap();
    assert_eq!(resp.status, StatusCode::NO_CONTENT);

    // 3. Reload: the page now routes around the violator.
    let req = Request::new(Method::Get, "/index.html")
        .with_header("Cookie", &format!("{OAK_USER_COOKIE}={user}"));
    let resp = fetch_tcp(addr, &req).unwrap();
    assert!(resp.body_text().contains("cdn-b.example"));
    assert_eq!(
        resp.header(OAK_ALTERNATE_HEADER),
        Some("cdn-a.example=cdn-b.example")
    );
    server.shutdown();
}

#[test]
fn admin_endpoints_render_audit_and_stats() {
    let service = service_with_rule();
    get(&service, "/index.html", Some("u-1"));
    post_report(&service, &violating_report("u-1"), Some("u-1"));

    let audit = get(&service, crate::AUDIT_PATH, None);
    assert_eq!(audit.status, StatusCode::OK);
    assert!(audit.body_text().contains("oak audit"));
    assert!(audit.body_text().contains("rule0"));

    let stats = get(&service, crate::STATS_PATH, None);
    assert_eq!(stats.status, StatusCode::OK);
    let doc = oak_json::parse(&stats.body_text()).expect("stats is valid JSON");
    assert_eq!(
        doc.get("reports_accepted").and_then(|v| v.as_u64()),
        Some(1)
    );
    assert_eq!(doc.get("pages_served").and_then(|v| v.as_u64()), Some(1));
    let domains = doc.get("domains").and_then(|d| d.as_array()).unwrap();
    assert!(!domains.is_empty());
    // The violator tops the worst-domains list.
    assert_eq!(
        domains[0].get("domain").and_then(|v| v.as_str()),
        Some("cdn-a.example")
    );
    assert_eq!(
        domains[0].get("violations").and_then(|v| v.as_u64()),
        Some(1)
    );
}

#[test]
fn fileroot_loads_pages_objects_and_rules() {
    use crate::{content_type_for, load_root, load_rules};
    use oak_core::engine::OakConfig;

    let dir = std::env::temp_dir().join(format!("oak-fileroot-{}", std::process::id()));
    let sub = dir.join("shop");
    std::fs::create_dir_all(&sub).unwrap();
    std::fs::write(dir.join("index.html"), "<html>home</html>").unwrap();
    std::fs::write(sub.join("item.html"), "<html>item</html>").unwrap();
    std::fs::write(dir.join("logo.png"), [0x89, 0x50]).unwrap();
    std::fs::write(
        dir.join("site.oakrules"),
        r#"(2, "http://a.example/", "http://b.example/a.example/", 0, *)"#,
    )
    .unwrap();

    let store = load_root(&dir).unwrap();
    assert_eq!(store.page("/index.html"), Some("<html>home</html>"));
    assert_eq!(store.page("/"), Some("<html>home</html>"), "index alias");
    assert_eq!(store.page("/shop/item.html"), Some("<html>item</html>"));
    let (ct, bytes) = store.object("/logo.png").unwrap();
    assert_eq!(ct, "image/png");
    assert_eq!(bytes, [0x89, 0x50]);
    // The rules file is loaded as an object too (it is not HTML) — fine;
    // operators usually keep it outside the root.
    let oak = load_rules(&dir.join("site.oakrules"), OakConfig::default()).unwrap();
    assert_eq!(oak.rules().count(), 1);

    assert_eq!(content_type_for("a/b/app.js"), "application/javascript");
    assert_eq!(content_type_for("x.unknownext"), "application/octet-stream");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fileroot_rejects_bad_rules() {
    use crate::load_rules;
    use oak_core::engine::OakConfig;
    let dir = std::env::temp_dir().join(format!("oak-badrules-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.oakrules");
    std::fs::write(&path, "(9, \"x\", \"y\", 0, *)").unwrap();
    let err = load_rules(&path, OakConfig::default()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn subnet_scoped_rule_over_tcp_uses_peer_address() {
    use oak_core::rule::Rule;
    // A rule restricted to localhost's 127.0.0.x: the TCP peer address
    // stamped by the server admits it; a spoofed header could not.
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT]).with_client_prefix("127.0.0."))
        .unwrap();
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    let service = OakService::new(oak, store).into_shared();
    let mut server = TcpServer::start(0, service).unwrap();
    let addr = server.addr();

    let post = Request::new(Method::Post, REPORT_PATH)
        .with_body(
            violating_report("u-local").to_json().into_bytes(),
            "application/json",
        )
        .with_header("Cookie", &format!("{OAK_USER_COOKIE}=u-local"));
    assert_eq!(fetch_tcp(addr, &post).unwrap().status.0, 204);

    let reload = Request::new(Method::Get, "/index.html")
        .with_header("Cookie", &format!("{OAK_USER_COOKIE}=u-local"));
    let resp = fetch_tcp(addr, &reload).unwrap();
    assert!(
        resp.body_text().contains("cdn-b.example"),
        "rule for 127.0.0.* should activate when reported over loopback"
    );
    server.shutdown();
}

#[test]
fn concurrent_reports_do_not_lose_updates() {
    let service = service_with_rule().into_shared();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let user = format!("u-{i}");
                post_report(&service, &violating_report(&user), Some(&user));
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(service.stats().reports_accepted, 8);
    service.with_oak(|oak| {
        for i in 0..8 {
            assert_eq!(oak.active_rules(&format!("u-{i}")).len(), 1, "user u-{i}");
        }
    });
}

#[test]
fn pruning_sweep_evicts_idle_users_and_counts_them() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let clock = Arc::new(AtomicU64::new(0));
    let clock_ref = Arc::clone(&clock);
    let service = service_with_rule()
        .with_clock(move || Instant(clock_ref.load(Ordering::Relaxed)))
        .with_pruning(crate::PrunePolicy {
            idle_ms: 1_000,
            every_requests: 4,
        });

    // Two users report at t=0; both hold per-user state.
    assert_eq!(
        post_report(&service, &violating_report("u-old"), Some("u-old"))
            .status
            .0,
        204
    );
    assert_eq!(
        post_report(&service, &violating_report("u-new"), Some("u-new"))
            .status
            .0,
        204
    );
    service.with_oak(|oak| assert_eq!(oak.user_count(), 2));

    // u-new stays active; u-old goes idle. The 4th request lands on the
    // sweep cadence with the clock far past u-old's horizon.
    clock.store(5_000, Ordering::Relaxed);
    assert_eq!(
        post_report(&service, &violating_report("u-new"), Some("u-new"))
            .status
            .0,
        204
    );
    get(&service, "/index.html", Some("u-new"));

    assert_eq!(service.stats().users_pruned, 1, "idle u-old swept");
    service.with_oak(|oak| {
        assert_eq!(oak.user_count(), 1);
        assert!(oak.active_rules("u-old").is_empty());
        assert!(!oak.active_rules("u-new").is_empty());
    });
}

#[test]
fn log_retention_bounds_the_audit_window() {
    let oak = Oak::new(OakConfig {
        log_retention: Some(3),
        ..OakConfig::default()
    });
    oak.add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT]))
        .unwrap();
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    let service = OakService::new(oak, store);

    // One user cycling activate → deactivate appends two log entries per
    // round, all in the same shard (retention is per shard — the
    // worst-case memory bound is `cap × SHARD_COUNT`).
    let alt_violating = |user: &str| {
        let mut r = violating_report(user);
        r.entries[0] =
            ObjectTiming::new("http://cdn-b.example/jquery.js", "10.0.9.9", 30_000, 900.0);
        r
    };
    for _ in 0..4 {
        post_report(&service, &violating_report("u-r"), Some("u-r"));
        post_report(&service, &alt_violating("u-r"), Some("u-r"));
    }
    service.with_oak(|oak| {
        let log = oak.log();
        assert_eq!(log.len(), 3, "retention caps the in-memory log");
    });
}

#[test]
fn oversized_reports_get_413_before_parsing() {
    let service = service_with_rule().with_admission(crate::AdmissionPolicy {
        max_report_bytes: 64,
        ..crate::AdmissionPolicy::default()
    });
    let resp = post_report(&service, &violating_report("u-big"), Some("u-big"));
    assert_eq!(resp.status, StatusCode::PAYLOAD_TOO_LARGE);
    let stats = service.stats();
    assert_eq!(stats.reports_rejected, 1);
    assert_eq!(stats.reports_accepted, 0);
}

#[test]
fn report_rate_limit_throttles_per_user_and_refills_with_the_clock() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let clock = Arc::new(AtomicU64::new(0));
    let clock_ref = Arc::clone(&clock);
    let service = service_with_rule()
        .with_clock(move || Instant(clock_ref.load(Ordering::SeqCst)))
        .with_admission(crate::AdmissionPolicy {
            report_rate: 1.0, // one sustained report per second
            report_burst: 2.0,
            ..crate::AdmissionPolicy::default()
        });

    // The burst admits two; the third is throttled.
    assert_eq!(
        post_report(&service, &violating_report("u-spam"), Some("u-spam"))
            .status
            .0,
        204
    );
    assert_eq!(
        post_report(&service, &violating_report("u-spam"), Some("u-spam"))
            .status
            .0,
        204
    );
    let throttled = post_report(&service, &violating_report("u-spam"), Some("u-spam"));
    assert_eq!(throttled.status, StatusCode::TOO_MANY_REQUESTS);

    // Buckets are per user: a different cookie still gets through.
    assert_eq!(
        post_report(&service, &violating_report("u-calm"), Some("u-calm"))
            .status
            .0,
        204
    );

    // One simulated second refills one token for the noisy user.
    clock.store(1_000, Ordering::SeqCst);
    assert_eq!(
        post_report(&service, &violating_report("u-spam"), Some("u-spam"))
            .status
            .0,
        204
    );
    assert_eq!(
        post_report(&service, &violating_report("u-spam"), Some("u-spam")).status,
        StatusCode::TOO_MANY_REQUESTS
    );

    let stats = service.stats();
    assert_eq!(stats.reports_throttled, 2);
    assert_eq!(stats.reports_accepted, 4);
    assert_eq!(stats.reports_rejected, 0, "throttled is not rejected");
}

#[test]
fn stats_view_exports_admission_transport_and_fetch_counters() {
    use oak_core::fetch::{FetchPolicy, FetchStep, FlakyFetcher, ResilientFetcher};
    use oak_http::TransportStats;

    let transport = Arc::new(TransportStats::default());
    let fetcher = ResilientFetcher::new(
        FlakyFetcher::new([FetchStep::Ok("x".into())]),
        FetchPolicy {
            deadline: None,
            ..FetchPolicy::default()
        },
    );
    let fetch_stats = fetcher.stats_handle();
    let service = service_with_rule()
        .with_admission(crate::AdmissionPolicy {
            report_rate: 1.0,
            report_burst: 1.0,
            ..crate::AdmissionPolicy::default()
        })
        .with_transport_stats(Arc::clone(&transport))
        .with_fetch_stats(fetch_stats)
        .with_fetcher(fetcher)
        .into_shared();

    let mut server = TcpServer::start_with(
        0,
        service.clone(),
        oak_http::ServerLimits::default(),
        Arc::clone(&transport),
    )
    .unwrap();
    let addr = server.addr();

    // One accepted report, one throttled.
    let post = |user: &str| {
        Request::new(Method::Post, REPORT_PATH)
            .with_body(
                violating_report(user).to_json().into_bytes(),
                "application/json",
            )
            .with_header("Cookie", &format!("{OAK_USER_COOKIE}={user}"))
    };
    assert_eq!(fetch_tcp(addr, &post("u-1")).unwrap().status.0, 204);
    assert_eq!(fetch_tcp(addr, &post("u-1")).unwrap().status.0, 429);

    let resp = fetch_tcp(addr, &Request::new(Method::Get, crate::STATS_PATH)).unwrap();
    let doc = oak_json::parse(&resp.body_text()).expect("stats is valid JSON");
    assert_eq!(
        doc.get("reports_throttled").and_then(|v| v.as_u64()),
        Some(1)
    );
    let transport_doc = doc.get("transport").expect("transport block");
    assert!(
        transport_doc
            .get("requests_served")
            .and_then(|v| v.as_u64())
            .is_some_and(|n| n >= 2),
        "transport counters track the served requests"
    );
    assert_eq!(
        transport_doc.get("panics").and_then(|v| v.as_u64()),
        Some(0)
    );
    let fetch_doc = doc.get("fetch").expect("fetch block");
    assert!(fetch_doc.get("attempts").and_then(|v| v.as_u64()).is_some());
    server.shutdown();
}

#[test]
fn durable_service_recovers_state_across_boots() {
    let dir = std::env::temp_dir().join(format!("oak-server-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = oak_store::StoreOptions {
        fsync: oak_store::FsyncPolicy::Always,
        ..oak_store::StoreOptions::default()
    };

    // First life: a rule, a violating report, an activation.
    {
        let boot = oak_store::OakStore::boot(&dir, OakConfig::default(), options).unwrap();
        boot.oak
            .add_rule(Rule::replace_identical(JQ_DEFAULT, [JQ_ALT]))
            .unwrap();
        let mut store = SiteStore::new();
        store.add_page("/index.html", PAGE);
        let service = OakService::new(boot.oak, store).with_durability(boot.store);
        assert_eq!(
            post_report(&service, &violating_report("u-d"), Some("u-d"))
                .status
                .0,
            204
        );
        service.with_oak(|oak| assert_eq!(oak.active_rules("u-d").len(), 1));
    } // crash: everything in memory dropped

    // Second life: state is back and the page is personalized.
    let boot = oak_store::OakStore::boot(&dir, OakConfig::default(), options).unwrap();
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    let service = OakService::new(boot.oak, store).with_durability(boot.store);
    service.with_oak(|oak| {
        assert_eq!(oak.rules().count(), 1);
        assert_eq!(oak.active_rules("u-d").len(), 1);
        assert_eq!(oak.aggregates().report_count(), 1);
    });
    let resp = get(&service, "/index.html", Some("u-d"));
    assert!(
        resp.body_text().contains("cdn-b.example"),
        "recovered activation still rewrites the page"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn health_endpoint_reflects_lifecycle_states() {
    let service = service_with_rule().with_health(crate::HealthState::Booting);

    // Not serving yet: load balancers must see 503, with the state named.
    let resp = get(&service, crate::HEALTH_PATH, None);
    assert_eq!(resp.status, StatusCode::UNAVAILABLE);
    assert!(resp.body_text().contains("booting"));

    service.set_health(crate::HealthState::Recovering);
    let resp = get(&service, crate::HEALTH_PATH, None);
    assert_eq!(resp.status, StatusCode::UNAVAILABLE);
    assert!(resp.body_text().contains("recovering"));

    // Recovery done: only Serving answers 200.
    service.set_health(crate::HealthState::Serving);
    let resp = get(&service, crate::HEALTH_PATH, None);
    assert_eq!(resp.status, StatusCode::OK);
    assert!(resp.body_text().contains("serving"));
    assert_eq!(resp.header("content-type"), Some("application/json"));

    service.set_health(crate::HealthState::Draining);
    let resp = get(&service, crate::HEALTH_PATH, None);
    assert_eq!(resp.status, StatusCode::UNAVAILABLE);
    assert!(resp.body_text().contains("draining"));
}

#[test]
fn health_defaults_to_serving_and_other_routes_ignore_it() {
    let service = service_with_rule();
    assert_eq!(service.health(), crate::HealthState::Serving);
    assert_eq!(
        get(&service, crate::HEALTH_PATH, None).status,
        StatusCode::OK
    );

    // Health gates nothing but its own endpoint: a draining node still
    // finishes the traffic already routed to it.
    service.set_health(crate::HealthState::Draining);
    assert!(get(&service, "/index.html", None).status.is_success());
    assert_eq!(
        post_report(&service, &violating_report("u-h"), None)
            .status
            .0,
        204
    );
}

#[test]
fn edge_gauges_surface_only_when_attached() {
    let obs = crate::ServiceObs::wall(16, 500);
    let service = service_with_rule().with_obs(Arc::clone(&obs)).into_shared();

    // Unattached (threads backend, or epoll before start): none of the
    // operator surfaces mention the reactor, so exposition goldens and
    // existing scrapers see byte-identical output.
    let doc = oak_json::parse(&get(&service, crate::STATS_PATH, None).body_text()).unwrap();
    assert!(doc.get("backend").is_none());
    assert!(doc.get("edge").is_none());
    let health = oak_json::parse(&get(&service, crate::HEALTH_PATH, None).body_text()).unwrap();
    assert!(health.get("edge").is_none());
    let metrics = get(&service, crate::METRICS_PATH, None).body_text();
    assert!(!metrics.contains("oak_edge_gauge"));

    // Attached: every surface names the backend and renders the gauges.
    service.set_edge_backend(oak_edge::Backend::Epoll);
    let edge = Arc::new(oak_edge::EdgeStats::default());
    service.set_edge_stats(Arc::clone(&edge));

    let doc = oak_json::parse(&get(&service, crate::STATS_PATH, None).body_text()).unwrap();
    assert_eq!(doc.get("backend").and_then(|v| v.as_str()), Some("epoll"));
    let block = doc.get("edge").expect("edge block in /oak/stats");
    assert_eq!(
        block.get("connections_open").and_then(|v| v.as_u64()),
        Some(0)
    );
    assert!(block.get("loop_lag_us").is_some());
    assert!(block.get("worker_queue_depth").is_some());

    let health = oak_json::parse(&get(&service, crate::HEALTH_PATH, None).body_text()).unwrap();
    assert_eq!(
        health.get("backend").and_then(|v| v.as_str()),
        Some("epoll")
    );
    let vitals = health.get("edge").expect("edge vitals in /oak/health");
    assert!(vitals.get("loop_lag_us").is_some());
    assert!(vitals.get("ready_batch").is_some());
    assert!(vitals.get("worker_queue_depth").is_some());

    let metrics = get(&service, crate::METRICS_PATH, None).body_text();
    assert!(metrics.contains("# TYPE oak_edge_gauge gauge"));
    assert!(metrics.contains("oak_edge_gauge{gauge=\"loop_lag_us\"}"));
    assert!(metrics.contains("oak_edge_gauge{gauge=\"connections_open\"}"));

    // First call wins: a second attach cannot swap the gauges out from
    // under a scraper.
    service.set_edge_backend(oak_edge::Backend::Threads);
    let doc = oak_json::parse(&get(&service, crate::STATS_PATH, None).body_text()).unwrap();
    assert_eq!(doc.get("backend").and_then(|v| v.as_str()), Some("epoll"));
}

/// A fixed two-partition replication view: primary of partition 0,
/// lagging follower of partition 1, and anything named `u-remote` lives
/// on some other node.
struct FakeCluster;

impl crate::ClusterStatusSource for FakeCluster {
    fn partitions(&self) -> Vec<oak_cluster::PartitionStatus> {
        vec![
            oak_cluster::PartitionStatus {
                partition: 0,
                role: oak_cluster::Role::Primary,
                epoch: 3,
                head: 12,
                commit: 12,
                lag: 0,
            },
            oak_cluster::PartitionStatus {
                partition: 1,
                role: oak_cluster::Role::Follower,
                epoch: 2,
                head: 5,
                commit: 8,
                lag: 3,
            },
        ]
    }

    fn is_primary_for(&self, user: &str) -> bool {
        user != "u-remote"
    }
}

/// Primary for everyone, but the replication watermark never advances —
/// the majority-unreachable case the ingest ack must not paper over.
struct StalledCluster;

impl crate::ClusterStatusSource for StalledCluster {
    fn partitions(&self) -> Vec<oak_cluster::PartitionStatus> {
        Vec::new()
    }

    fn is_primary_for(&self, _user: &str) -> bool {
        true
    }

    fn wait_for_commit(&self, _user: &str, _seq: u64) -> bool {
        false
    }
}

#[test]
fn ingest_withholds_204_until_the_watermark_covers_it() {
    let service = service_with_rule().into_shared();
    service.set_cluster_status(Arc::new(StalledCluster));

    // The node holds the lease, so the report is admitted and applied —
    // but the watermark never covers it, so the 204 must not be
    // released: 503 + Retry-After and the client retries.
    let refused = post_report(&service, &violating_report("u-1"), Some("u-1"));
    assert_eq!(refused.status, StatusCode::UNAVAILABLE);
    assert!(refused.header("retry-after").is_some());
    assert_eq!(service.stats().cluster_refused, 1);
    // Applied locally regardless: the retry is at-least-once by design.
    assert_eq!(service.stats().reports_accepted, 1);
}

#[test]
fn cluster_surfaces_appear_only_when_attached_and_followers_refuse() {
    let obs = crate::ServiceObs::wall(16, 500);
    let service = service_with_rule().with_obs(Arc::clone(&obs)).into_shared();

    // Single-node: no surface mentions the cluster and nothing is
    // gated, so pre-cluster scrapers and goldens see identical bytes.
    let doc = oak_json::parse(&get(&service, crate::STATS_PATH, None).body_text()).unwrap();
    assert!(doc.get("cluster").is_none());
    let health = oak_json::parse(&get(&service, crate::HEALTH_PATH, None).body_text()).unwrap();
    assert!(health.get("cluster").is_none());
    let metrics = get(&service, crate::METRICS_PATH, None).body_text();
    assert!(!metrics.contains("oak_cluster_"));
    assert_eq!(
        post_report(&service, &violating_report("u-remote"), Some("u-remote"))
            .status
            .0,
        204,
        "without a cluster source every user is local"
    );

    service.set_cluster_status(Arc::new(FakeCluster));

    // Locally led partition: traffic flows exactly as before.
    assert_eq!(
        post_report(&service, &violating_report("u-local"), Some("u-local"))
            .status
            .0,
        204
    );
    assert!(get(&service, "/index.html", Some("u-local"))
        .status
        .is_success());

    // Remote partition: 503 + Retry-After for both ingest and serving.
    let refused = post_report(&service, &violating_report("u-remote"), Some("u-remote"));
    assert_eq!(refused.status, StatusCode::UNAVAILABLE);
    assert_eq!(
        refused.header("retry-after"),
        Some(oak_cluster::RETRY_AFTER_HINT_SECS.to_string().as_str())
    );
    let refused_page = get(&service, "/index.html", Some("u-remote"));
    assert_eq!(refused_page.status, StatusCode::UNAVAILABLE);
    assert!(refused_page.header("retry-after").is_some());
    assert_eq!(service.stats().cluster_refused, 2);

    // /oak/stats carries the full per-partition replication picture.
    let doc = oak_json::parse(&get(&service, crate::STATS_PATH, None).body_text()).unwrap();
    let cluster = doc.get("cluster").expect("cluster block in /oak/stats");
    assert_eq!(cluster.get("refused").and_then(|v| v.as_u64()), Some(2));
    let parts = cluster.get("partitions").expect("partitions array");
    let p0 = parts.at(0).expect("partition 0 row");
    assert_eq!(p0.get("role").and_then(|v| v.as_str()), Some("primary"));
    assert_eq!(p0.get("epoch").and_then(|v| v.as_u64()), Some(3));
    let p1 = parts.at(1).expect("partition 1 row");
    assert_eq!(p1.get("role").and_then(|v| v.as_str()), Some("follower"));
    assert_eq!(p1.get("lag").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(p1.get("commit").and_then(|v| v.as_u64()), Some(8));

    // /oak/health carries the load-bearing subset: role and lag.
    let health = oak_json::parse(&get(&service, crate::HEALTH_PATH, None).body_text()).unwrap();
    let rows = health.get("cluster").expect("cluster rows in /oak/health");
    assert_eq!(
        rows.at(1)
            .and_then(|r| r.get("lag"))
            .and_then(|v| v.as_u64()),
        Some(3)
    );

    // /oak/metrics grows the gauge families, well-formed for Prometheus.
    let metrics = get(&service, crate::METRICS_PATH, None).body_text();
    assert!(metrics.contains("# TYPE oak_cluster_role gauge"));
    assert!(metrics.contains("oak_cluster_role{partition=\"0\",role=\"primary\"} 1"));
    assert!(metrics.contains("oak_cluster_role{partition=\"1\",role=\"follower\"} 1"));
    assert!(metrics.contains("# TYPE oak_cluster_replication_lag gauge"));
    assert!(metrics.contains("oak_cluster_replication_lag{partition=\"1\"} 3"));
    assert!(metrics.contains("oak_cluster_refused_total 2"));
}

// ---------------------------------------------------------------------------
// Overload control: brownout degradation and priority shedding.
// ---------------------------------------------------------------------------

/// A service with the jQuery rule and a driven overload controller the
/// test moves between states by feeding samples directly.
fn overloaded_service() -> (OakService, Arc<crate::OverloadController>) {
    let controller = crate::OverloadController::driven(crate::OverloadPolicy::default());
    let service = service_with_rule().with_overload(Arc::clone(&controller));
    (service, controller)
}

fn pressure(queue_depth: u64) -> crate::PressureSample {
    crate::PressureSample {
        queue_depth,
        ..crate::PressureSample::default()
    }
}

#[test]
fn brownout_serves_pages_unrewritten_but_still_ingests() {
    let (service, controller) = overloaded_service();
    // The user's report makes cdn-a a violator; nominal serving rewrites.
    post_report(&service, &violating_report("u-7"), Some("u-7"));
    assert!(get(&service, "/index.html", Some("u-7"))
        .body_text()
        .contains("cdn-b.example"));

    // Brownout (queue at the brownout threshold): same page, raw.
    controller.observe(&pressure(16), 0);
    assert_eq!(controller.state(), crate::OverloadState::Brownout);
    let browned = get(&service, "/index.html", Some("u-7"));
    assert_eq!(browned.status, StatusCode::OK);
    assert!(browned.body_text().contains("cdn-a.example"));
    assert!(browned.header(OAK_ALTERNATE_HEADER).is_none());
    // First contact still mints a cookie — identity survives brownout.
    assert!(get(&service, "/index.html", None)
        .header("set-cookie")
        .is_some());
    // Ingest is untouched: the 204 contract holds and state applies.
    let accepted = post_report(&service, &violating_report("u-9"), Some("u-9"));
    assert_eq!(accepted.status, StatusCode::NO_CONTENT);
    assert!(controller.snapshot().pages_browned >= 1);

    // Recovery: calm samples walk back to Nominal and rewriting resumes.
    for i in 0..service.overload().unwrap().policy().cooldown_samples {
        controller.observe(&crate::PressureSample::default(), u64::from(i) + 1);
    }
    assert_eq!(controller.state(), crate::OverloadState::Nominal);
    assert!(get(&service, "/index.html", Some("u-7"))
        .body_text()
        .contains("cdn-b.example"));
}

#[test]
fn shedding_refuses_by_priority_class_and_never_health() {
    let (service, controller) = overloaded_service();
    post_report(&service, &violating_report("u-7"), Some("u-7"));

    // Severity 1 (queue at 1× the shed threshold): pages only.
    controller.observe(&pressure(64), 0);
    let shed = get(&service, "/index.html", Some("u-7"));
    assert_eq!(shed.status, StatusCode::UNAVAILABLE);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert_eq!(
        get(&service, crate::STATS_PATH, None).status,
        StatusCode::OK
    );
    assert_eq!(
        post_report(&service, &violating_report("u-7"), Some("u-7")).status,
        StatusCode::NO_CONTENT
    );

    // Severity 2 (1.5×): scrapes go too; reports still land.
    controller.observe(&pressure(96), 1);
    assert_eq!(
        get(&service, crate::STATS_PATH, None).status,
        StatusCode::UNAVAILABLE
    );
    assert_eq!(
        post_report(&service, &violating_report("u-7"), Some("u-7")).status,
        StatusCode::NO_CONTENT
    );

    // Severity 3 (2×): reports shed — and the transport admit hook
    // refuses them before the body would be read.
    controller.observe(&pressure(128), 2);
    let refused = post_report(&service, &violating_report("u-7"), Some("u-7"));
    assert_eq!(refused.status, StatusCode::UNAVAILABLE);
    assert_eq!(refused.header("retry-after"), Some("1"));
    let admitted = Handler::admit(&service, Method::Post, REPORT_PATH);
    let pre_body = admitted.expect("admit hook sheds report POSTs at severity 3");
    assert_eq!(pre_body.status, StatusCode::UNAVAILABLE);
    assert_eq!(pre_body.header("retry-after"), Some("1"));
    // GETs are never shed at the admit hook (they shed at dispatch,
    // keeping the connection alive).
    assert!(Handler::admit(&service, Method::Get, "/index.html").is_none());

    // Health answers 200 at every severity, and is queue-deadline exempt.
    let health = get(&service, crate::HEALTH_PATH, None);
    assert_eq!(health.status, StatusCode::OK);
    assert!(Handler::shed_exempt(&service, crate::HEALTH_PATH));
    assert!(!Handler::shed_exempt(&service, "/index.html"));
    let doc = oak_json::parse(&health.body_text()).unwrap();
    assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        doc.get("overload").and_then(|v| v.as_str()),
        Some("shedding")
    );

    let snap = controller.snapshot();
    assert!(snap.shed_pages >= 1);
    assert!(snap.shed_scrapes >= 1);
    assert!(snap.shed_reports >= 2);
}

#[test]
fn overload_surfaces_in_stats_and_metrics_only_when_attached() {
    // Without a controller: no overload block, no overload families.
    let bare = service_with_rule();
    let doc = oak_json::parse(&get(&bare, crate::STATS_PATH, None).body_text()).unwrap();
    assert!(doc.get("overload").is_none());

    let (service, controller) = overloaded_service();
    controller.observe(&pressure(64), 0);
    controller.observe(&pressure(0), 1); // calm sample; still shedding
    get(&service, "/index.html", None); // one shed page
    let doc = oak_json::parse(&get(&service, crate::STATS_PATH, None).body_text()).unwrap();
    let row = doc.get("overload").expect("overload block in /oak/stats");
    assert_eq!(row.get("state").and_then(|v| v.as_str()), Some("shedding"));
    assert_eq!(row.get("severity").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(row.get("shed_pages").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        row.get("shedding_entries").and_then(|v| v.as_u64()),
        Some(1)
    );

    // /oak/metrics needs obs; build one with both attached.
    let obs = crate::ServiceObs::new(Arc::new(|| 0), 8, 0);
    let controller = crate::OverloadController::driven(crate::OverloadPolicy::default());
    let service = service_with_rule()
        .with_obs(Arc::clone(&obs))
        .with_overload(Arc::clone(&controller));
    controller.observe(&pressure(64), 0);
    get(&service, "/index.html", None);
    let metrics = get(&service, crate::METRICS_PATH, None).body_text();
    assert!(metrics.contains("# TYPE oak_overload_state gauge"));
    assert!(metrics.contains("oak_overload_state 2"));
    assert!(metrics.contains("# TYPE oak_requests_shed_total counter"));
    assert!(metrics.contains("oak_requests_shed_total{class=\"page\"} 1"));
    assert!(metrics.contains("oak_requests_shed_total{class=\"report\"} 0"));
    assert!(metrics.contains("# TYPE oak_pages_browned_total counter"));
    assert!(
        oak_obs::validate::validate_exposition(&metrics).is_empty(),
        "exposition stays conformant"
    );
}

#[test]
fn throttled_reports_carry_retry_after() {
    let service = service_with_rule().with_admission(crate::AdmissionPolicy {
        report_rate: 1.0,
        report_burst: 1.0,
        ..crate::AdmissionPolicy::default()
    });
    assert_eq!(
        post_report(&service, &violating_report("u-1"), Some("u-1")).status,
        StatusCode::NO_CONTENT
    );
    let throttled = post_report(&service, &violating_report("u-1"), Some("u-1"));
    assert_eq!(throttled.status, StatusCode::TOO_MANY_REQUESTS);
    assert_eq!(throttled.header("retry-after"), Some("1"));
}

// ---------------------------------------------------------------------------
// Admission token bucket: property coverage.
// ---------------------------------------------------------------------------

mod admission_props {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use proptest::prelude::*;

    use oak_core::engine::{Oak, OakConfig};
    use oak_core::Instant;

    use crate::{AdmissionPolicy, OakService, SiteStore};

    fn bucketed(rate: f64, burst: f64) -> OakService {
        OakService::new(Oak::new(OakConfig::default()), SiteStore::new()).with_admission(
            AdmissionPolicy {
                report_rate: rate,
                report_burst: burst,
                ..AdmissionPolicy::default()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The bucket's one law: over any schedule of attempts it never
        /// admits more than `burst + rate · elapsed` reports, where
        /// elapsed is the clock's total forward travel.
        #[test]
        fn never_admits_more_than_burst_plus_refill(
            rate in 0.5f64..50.0,
            burst in 1.0f64..32.0,
            steps in prop::collection::vec((0u64..5_000, 1usize..8), 1..64),
        ) {
            let service = bucketed(rate, burst);
            let mut now = 0u64;
            let mut admitted = 0u64;
            for &(advance, attempts) in &steps {
                now += advance;
                for _ in 0..attempts {
                    if service.admit_report("user", Instant(now)) {
                        admitted += 1;
                    }
                }
            }
            let bound = burst.max(1.0) + rate * now as f64 / 1_000.0;
            prop_assert!(
                admitted as f64 <= bound + 1e-6,
                "admitted {admitted} over bound {bound} (rate {rate}, burst {burst})"
            );
        }

        /// A clock that jumps backwards must not mint tokens: refill is
        /// bounded by the clock's *forward* travel alone, and re-walking
        /// a span the bucket already saw cannot beat that bound.
        #[test]
        fn clock_going_backwards_never_mints_tokens(
            rate in 0.5f64..50.0,
            burst in 1.0f64..32.0,
            jumps in prop::collection::vec((0u64..10_000, any::<bool>()), 1..64),
        ) {
            let service = bucketed(rate, burst);
            let mut clock = 10_000u64;
            let mut forward = 0u64;
            let mut admitted = 0u64;
            for &(delta, backwards) in &jumps {
                if backwards {
                    clock = clock.saturating_sub(delta);
                } else {
                    clock += delta;
                    forward += delta;
                }
                if service.admit_report("user", Instant(clock)) {
                    admitted += 1;
                }
            }
            let bound = burst.max(1.0) + rate * forward as f64 / 1_000.0;
            prop_assert!(
                admitted as f64 <= bound + 1e-6,
                "admitted {admitted} over bound {bound} with backwards clock"
            );
        }

        /// Concurrent drains of one user's bucket at a frozen clock:
        /// the burst is a hard cap however the threads interleave.
        #[test]
        fn concurrent_drains_never_exceed_burst(
            burst in 1.0f64..16.0,
            threads in 2usize..6,
            attempts in 1usize..40,
        ) {
            let service = Arc::new(bucketed(10.0, burst));
            let admitted = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let admitted = Arc::clone(&admitted);
                    std::thread::spawn(move || {
                        for _ in 0..attempts {
                            if service.admit_report("shared", Instant(0)) {
                                admitted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            prop_assert!(
                admitted.load(Ordering::Relaxed) as f64 <= burst,
                "{} admits exceeded the {burst} burst",
                admitted.load(Ordering::Relaxed)
            );
        }

        /// Rate 0 disables the limiter entirely — every attempt admits.
        #[test]
        fn zero_rate_admits_everything(attempts in 1usize..200) {
            let service = bucketed(0.0, 1.0);
            for i in 0..attempts {
                prop_assert!(service.admit_report("user", Instant(i as u64)));
            }
        }
    }
}
