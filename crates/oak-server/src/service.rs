//! The HTTP-facing Oak service.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use oak_core::engine::Oak;
use oak_core::matching::{NoFetch, ScriptFetcher};
use oak_core::report::PerfReport;
use oak_core::Instant;
use oak_http::cookie::{format_set_cookie, get_cookie, OAK_USER_COOKIE};
use oak_http::{Handler, Method, Request, Response, StatusCode};

use crate::store::SiteStore;
use crate::REPORT_PATH;

/// Counters the service maintains, for the operator's dashboard and the
/// integration tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Pages served (through the rewriter).
    pub pages_served: u64,
    /// Static objects served.
    pub objects_served: u64,
    /// Reports accepted.
    pub reports_accepted: u64,
    /// Reports rejected (malformed or cookie-less).
    pub reports_rejected: u64,
    /// Users evicted by the idle-pruning sweep (see
    /// [`OakService::with_pruning`]).
    pub users_pruned: u64,
}

/// Lock-free service counters; [`ServiceStats`] is the read snapshot.
#[derive(Debug, Default)]
struct ServiceCounters {
    pages_served: AtomicU64,
    objects_served: AtomicU64,
    reports_accepted: AtomicU64,
    reports_rejected: AtomicU64,
    users_pruned: AtomicU64,
}

impl ServiceCounters {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            pages_served: self.pages_served.load(Ordering::Relaxed),
            objects_served: self.objects_served.load(Ordering::Relaxed),
            reports_accepted: self.reports_accepted.load(Ordering::Relaxed),
            reports_rejected: self.reports_rejected.load(Ordering::Relaxed),
            users_pruned: self.users_pruned.load(Ordering::Relaxed),
        }
    }
}

/// When and how aggressively [`OakService`] evicts idle per-user state
/// (see [`OakService::with_pruning`]).
#[derive(Clone, Copy, Debug)]
pub struct PrunePolicy {
    /// A user whose last report or serve is older than this is evicted.
    pub idle_ms: u64,
    /// The sweep runs once every this many requests (any method).
    pub every_requests: u64,
}

/// The Oak proxy: serves a [`SiteStore`] through the per-user rewriting
/// engine and ingests client performance reports.
///
/// Thread-safe without an outer lock: the engine is internally sharded
/// (see [`oak_core::engine::Oak`]'s concurrency docs) and the counters
/// are atomics, so one service instance backs a multi-threaded
/// [`oak_http::TcpServer`] directly and requests for different users
/// proceed in parallel.
pub struct OakService {
    oak: Oak,
    store: SiteStore,
    clock: Box<dyn Fn() -> Instant + Send + Sync>,
    fetcher: Box<dyn ScriptFetcher + Send + Sync>,
    next_user: AtomicU64,
    stats: ServiceCounters,
    durable: Option<Arc<oak_store::OakStore>>,
    prune: Option<PrunePolicy>,
    requests: AtomicU64,
}

impl OakService {
    /// A service with a zero clock and no external-script fetching.
    /// Use the builder methods to attach either.
    pub fn new(oak: Oak, store: SiteStore) -> OakService {
        OakService {
            oak,
            store,
            clock: Box::new(|| Instant::ZERO),
            fetcher: Box::new(NoFetch),
            next_user: AtomicU64::new(1),
            stats: ServiceCounters::default(),
            durable: None,
            prune: None,
            requests: AtomicU64::new(0),
        }
    }

    /// Installs the clock the engine sees (wall time for live deployments,
    /// simulated time for experiments).
    pub fn with_clock(mut self, clock: impl Fn() -> Instant + Send + Sync + 'static) -> OakService {
        self.clock = Box::new(clock);
        self
    }

    /// Installs the external-script fetcher used by level-3 rule matching.
    pub fn with_fetcher(
        mut self,
        fetcher: impl ScriptFetcher + Send + Sync + 'static,
    ) -> OakService {
        self.fetcher = Box::new(fetcher);
        self
    }

    /// Attaches the durability store so ingest triggers snapshot
    /// compaction ([`oak_store::OakStore::maybe_snapshot`]) once enough
    /// events accumulate. The store must already be the engine's event
    /// sink — [`oak_store::OakStore::boot`] wires both and recovers prior
    /// state, so the typical durable service is
    /// `OakService::new(boot.oak, site).with_durability(boot.store)`.
    pub fn with_durability(mut self, store: Arc<oak_store::OakStore>) -> OakService {
        self.durable = Some(store);
        self
    }

    /// Enables the idle-user sweep: every `every_requests` requests,
    /// users idle longer than `idle_ms` are evicted via
    /// [`Oak::prune_inactive_users`] (their audit history stays in the
    /// log and, when durability is on, in the WAL). Evictions land in
    /// [`ServiceStats::users_pruned`].
    pub fn with_pruning(mut self, policy: PrunePolicy) -> OakService {
        self.prune = Some(policy);
        self
    }

    /// Runs `f` against the engine (experiments add rules and read logs
    /// this way). The engine synchronizes internally, so `f` gets a
    /// shared reference and no service-wide lock is held.
    pub fn with_oak<T>(&self, f: impl FnOnce(&Oak) -> T) -> T {
        f(&self.oak)
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// Wraps the service in an [`Arc`] ready for
    /// [`oak_http::TcpServer::start`].
    pub fn into_shared(self) -> Arc<OakService> {
        Arc::new(self)
    }

    fn serve_page(&self, request: &Request, path: &str, html: &str) -> Response {
        let now = (self.clock)();
        // Identify the user by cookie; first contact mints a fresh id.
        let (user, minted) = match request
            .header("cookie")
            .and_then(|v| get_cookie(v, OAK_USER_COOKIE))
        {
            Some(user) => (user.to_owned(), false),
            None => {
                let id = self.next_user.fetch_add(1, Ordering::Relaxed);
                (format!("u-{id}"), true)
            }
        };

        let modified = self.oak.modify_page(now, &user, path, html);
        let alternate = modified.alternate_header_entry();
        let mut response = Response::html(modified.html);
        if minted {
            response
                .headers
                .set("Set-Cookie", format_set_cookie(OAK_USER_COOKIE, &user));
        }
        if let Some((name, value)) = alternate {
            response.headers.set(name, value);
        }
        self.stats.pages_served.fetch_add(1, Ordering::Relaxed);
        response
    }

    /// Renders the §6 offline audit as plain text (`GET /oak/audit`).
    ///
    /// The audit covers the engine's in-memory log window. With
    /// [`oak_core::engine::OakConfig::log_retention`] set, older entries
    /// rotate out of memory; when durability is on they remain in the
    /// WAL and snapshots for offline analysis.
    fn audit_view(&self) -> Response {
        let summary = oak_core::audit::audit(&self.oak.log());
        Response::new(StatusCode::OK).with_body(
            summary.to_string().into_bytes(),
            "text/plain; charset=utf-8",
        )
    }

    /// Serves service counters and aggregate site performance as JSON
    /// (`GET /oak/stats`) — the §5 "aggregate site performance" record.
    fn stats_view(&self) -> Response {
        let stats = self.stats();
        let mut doc = oak_json::Value::object();
        doc.set("pages_served", stats.pages_served);
        doc.set("objects_served", stats.objects_served);
        doc.set("reports_accepted", stats.reports_accepted);
        doc.set("reports_rejected", stats.reports_rejected);
        doc.set("users_pruned", stats.users_pruned);

        let agg = self.oak.aggregates();
        doc.set("reports", agg.report_count());
        doc.set("users", agg.user_count());
        let mut domains = oak_json::Value::array();
        for (domain, entry) in agg.worst_domains().into_iter().take(50) {
            let mut row = oak_json::Value::object();
            row.set("domain", domain);
            row.set("objects", entry.objects);
            row.set("bytes", entry.bytes);
            row.set("violations", entry.violations);
            row.set("users_seen", entry.users_seen);
            row.set(
                "avg_small_time_ms",
                entry
                    .small_time_ms
                    .mean()
                    .map(|m| (m * 100.0).round() / 100.0),
            );
            row.set(
                "avg_large_tput_kbps",
                entry
                    .large_tput_kbps
                    .mean()
                    .map(|m| (m * 100.0).round() / 100.0),
            );
            domains.push(row);
        }
        doc.set("domains", domains);
        Response::new(StatusCode::OK).with_body(doc.to_string().into_bytes(), "application/json")
    }

    fn accept_report(&self, request: &Request) -> Response {
        let now = (self.clock)();
        let body = String::from_utf8_lossy(&request.body);
        let mut report = match PerfReport::from_json(&body) {
            Ok(r) => r,
            Err(e) => {
                self.stats.reports_rejected.fetch_add(1, Ordering::Relaxed);
                return Response::new(StatusCode::BAD_REQUEST)
                    .with_body(e.to_string().into_bytes(), "text/plain");
            }
        };
        // The identifying cookie is authoritative for the user id (§4:
        // the cookie lets the server connect performance to the client).
        if let Some(user) = request
            .header("cookie")
            .and_then(|v| get_cookie(v, OAK_USER_COOKIE))
        {
            report.user = user.to_owned();
        }
        // The transport-observed peer address (set by the TCP server,
        // never client-forgeable) feeds subnet-scoped rule policies.
        let client_ip = request.header(oak_http::PEER_ADDR_HEADER);
        self.oak
            .ingest_report_from(now, &report, &*self.fetcher, client_ip);
        self.stats.reports_accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.durable {
            // Compaction errors must not fail the client's report; the
            // store's write_errors counter carries them to the operator.
            let _ = store.maybe_snapshot(&self.oak);
        }
        Response::new(StatusCode::NO_CONTENT)
    }

    /// The request-cadence idle-user sweep (no-op unless configured).
    fn maybe_prune(&self) {
        let Some(policy) = &self.prune else { return };
        let count = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if !count.is_multiple_of(policy.every_requests.max(1)) {
            return;
        }
        let now = (self.clock)();
        let cutoff = Instant(now.as_millis().saturating_sub(policy.idle_ms));
        let pruned = self.oak.prune_inactive_users(cutoff) as u64;
        if pruned > 0 {
            self.stats.users_pruned.fetch_add(pruned, Ordering::Relaxed);
        }
    }
}

impl Handler for OakService {
    fn handle(&self, request: &Request) -> Response {
        self.maybe_prune();
        let path = request.path().to_owned();
        match (request.method, path.as_str()) {
            (Method::Post, REPORT_PATH) => self.accept_report(request),
            (Method::Get, crate::AUDIT_PATH) => self.audit_view(),
            (Method::Get, crate::STATS_PATH) => self.stats_view(),
            (Method::Get | Method::Head, _) => {
                if let Some(html) = self.store.page(&path) {
                    return self.serve_page(request, &path, html);
                }
                if let Some((content_type, bytes)) = self.store.object(&path) {
                    self.stats.objects_served.fetch_add(1, Ordering::Relaxed);
                    return Response::new(StatusCode::OK).with_body(bytes.to_vec(), content_type);
                }
                Response::not_found()
            }
            _ => Response::new(StatusCode(405))
                .with_body(b"method not allowed".to_vec(), "text/plain"),
        }
    }
}
