//! The HTTP-facing Oak service.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use oak_cluster::{PartitionStatus, RETRY_AFTER_HINT_SECS};
use oak_core::engine::Oak;
use oak_core::fetch::FetchStats;
use oak_core::matching::{NoFetch, ScriptFetcher};
use oak_core::report::PerfReport;
use oak_core::Instant;
use oak_edge::{Backend, EdgeStats};
use oak_http::cookie::{format_set_cookie, get_cookie, OAK_USER_COOKIE};
use oak_http::{
    Handler, Method, Request, Response, StatusCode, TransportStats, SHED_RETRY_AFTER_SECS,
};
use oak_obs::{Family, FamilyKind, Series, SeriesValue};

use crate::obs::ServiceObs;
use crate::overload::{OverloadController, RequestClass};
use crate::store::SiteStore;
use crate::REPORT_PATH;

/// Counters the service maintains, for the operator's dashboard and the
/// integration tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Pages served (through the rewriter).
    pub pages_served: u64,
    /// Static objects served.
    pub objects_served: u64,
    /// Reports accepted.
    pub reports_accepted: u64,
    /// Reports rejected (malformed, oversized, or cookie-less).
    pub reports_rejected: u64,
    /// Reports turned away with 429 by the per-user rate limit (see
    /// [`OakService::with_admission`]).
    pub reports_throttled: u64,
    /// Users evicted by the idle-pruning sweep (see
    /// [`OakService::with_pruning`]).
    pub users_pruned: u64,
    /// Requests refused with 503 + Retry-After by the cluster layer:
    /// either this node does not hold the primary lease for the user's
    /// partition, or an ingested report's replication watermark failed
    /// to cover it in time (see [`OakService::set_cluster_status`]).
    /// Always zero on a single-node deployment.
    pub cluster_refused: u64,
}

/// Lock-free service counters; [`ServiceStats`] is the read snapshot.
#[derive(Debug, Default)]
struct ServiceCounters {
    pages_served: AtomicU64,
    objects_served: AtomicU64,
    reports_accepted: AtomicU64,
    reports_rejected: AtomicU64,
    reports_throttled: AtomicU64,
    users_pruned: AtomicU64,
    cluster_refused: AtomicU64,
}

impl ServiceCounters {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            pages_served: self.pages_served.load(Ordering::Relaxed),
            objects_served: self.objects_served.load(Ordering::Relaxed),
            reports_accepted: self.reports_accepted.load(Ordering::Relaxed),
            reports_rejected: self.reports_rejected.load(Ordering::Relaxed),
            reports_throttled: self.reports_throttled.load(Ordering::Relaxed),
            users_pruned: self.users_pruned.load(Ordering::Relaxed),
            cluster_refused: self.cluster_refused.load(Ordering::Relaxed),
        }
    }
}

/// What the service needs to know about local replication when the
/// node is one of several in an `oak-cluster` deployment. Implemented
/// by the serving edge's cluster runtime and attached with
/// [`OakService::set_cluster_status`]; absent on single-node
/// deployments, where every operator surface stays byte-identical to
/// the pre-cluster wire format.
pub trait ClusterStatusSource: Send + Sync {
    /// Point-in-time status of every partition this node hosts.
    fn partitions(&self) -> Vec<PartitionStatus>;
    /// Whether this node currently holds the primary lease for `user`'s
    /// partition. `false` turns the request away with 503 +
    /// `Retry-After` — briefly refusing a report beats acking it into a
    /// replica whose write would be silently discarded.
    fn is_primary_for(&self, user: &str) -> bool;

    /// The replicated engine the service should serve from, when the
    /// cluster runtime owns it. A snapshot install during failover can
    /// replace the engine object wholesale, so the service resolves it
    /// per request instead of capturing an `Arc` at boot. `None` (the
    /// default) keeps the service on its own engine.
    fn live_engine(&self) -> Option<Arc<Oak>> {
        None
    }

    /// Whether this node currently leads the replica group behind
    /// [`ClusterStatusSource::live_engine`]. Node-local maintenance
    /// mutations (idle-user pruning) run only then: pruning emits a
    /// journaled `Pruned` event, which must originate on the primary
    /// and ship through the WAL rather than diverge a follower.
    fn leads_maintenance(&self) -> bool {
        true
    }

    /// Blocks until the replication watermark for `user`'s partition
    /// covers `seq` — the point at which a client ack may be released
    /// (DESIGN.md §14: a `204` *means* durable on a majority) — or
    /// until the implementation's bounded wait expires. `false` means
    /// the ack must be withheld: the service answers 503 + Retry-After
    /// and the client retries, making ingest at-least-once across a
    /// stalled majority. The default is immediate `true`: on a single
    /// node the local WAL append *is* the durability point.
    fn wait_for_commit(&self, user: &str, seq: u64) -> bool {
        let _ = (user, seq);
        true
    }
}

/// Report admission limits (see [`OakService::with_admission`]).
///
/// Reports are client-supplied input on an unauthenticated endpoint, so
/// one misbehaving client must not be able to inflate per-user state or
/// monopolize ingest. Oversized bodies get 413 before parsing; clients
/// reporting faster than the token bucket refills get 429.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Largest report body accepted, in bytes (Fig. 15 sizes the median
    /// real report under 10 KB; the default leaves two orders of margin).
    pub max_report_bytes: usize,
    /// Sustained reports per second allowed per user; 0 disables the
    /// rate limit.
    pub report_rate: f64,
    /// Bucket capacity — how many reports a user may burst before the
    /// sustained rate applies.
    pub report_burst: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            max_report_bytes: 1 << 20,
            report_rate: 0.0,
            report_burst: 10.0,
        }
    }
}

/// One user's token bucket.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Bound on tracked buckets; at capacity, idle (full) buckets are shed
/// first, and if every bucket is mid-burst new users are admitted
/// without tracking rather than evicting an active limiter.
const BUCKET_CAPACITY: usize = 65_536;

/// Where a node is in its lifecycle, as reported by `GET /oak/health`.
///
/// A replaying node answers requests correctly but from *stale* state —
/// activations it has not yet replayed look inactive — so load balancers
/// must not send it traffic until it reports [`HealthState::Serving`].
/// The endpoint returns 200 only then; every other state is a 503 whose
/// body still names the state, so an operator can tell a booting node
/// from a draining one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Process is up; recovery has not started.
    Booting,
    /// Replaying the snapshot + WAL tail.
    Recovering,
    /// Fully caught up and accepting traffic.
    Serving,
    /// Shutting down gracefully; finish in-flight work, send no more.
    Draining,
}

impl HealthState {
    /// The wire name used in the health body.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Booting => "booting",
            HealthState::Recovering => "recovering",
            HealthState::Serving => "serving",
            HealthState::Draining => "draining",
        }
    }

    fn from_u8(raw: u8) -> HealthState {
        match raw {
            0 => HealthState::Booting,
            1 => HealthState::Recovering,
            3 => HealthState::Draining,
            _ => HealthState::Serving,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            HealthState::Booting => 0,
            HealthState::Recovering => 1,
            HealthState::Serving => 2,
            HealthState::Draining => 3,
        }
    }
}

/// When and how aggressively [`OakService`] evicts idle per-user state
/// (see [`OakService::with_pruning`]).
#[derive(Clone, Copy, Debug)]
pub struct PrunePolicy {
    /// A user whose last report or serve is older than this is evicted.
    pub idle_ms: u64,
    /// The sweep runs once every this many requests (any method).
    pub every_requests: u64,
}

/// The Oak proxy: serves a [`SiteStore`] through the per-user rewriting
/// engine and ingests client performance reports.
///
/// Thread-safe without an outer lock: the engine is internally sharded
/// (see [`oak_core::engine::Oak`]'s concurrency docs) and the counters
/// are atomics, so one service instance backs a multi-threaded
/// [`oak_http::TcpServer`] directly and requests for different users
/// proceed in parallel.
pub struct OakService {
    oak: Oak,
    store: SiteStore,
    clock: Box<dyn Fn() -> Instant + Send + Sync>,
    fetcher: Box<dyn ScriptFetcher + Send + Sync>,
    next_user: AtomicU64,
    stats: ServiceCounters,
    durable: Option<Arc<oak_store::OakStore>>,
    prune: Option<PrunePolicy>,
    requests: AtomicU64,
    admission: AdmissionPolicy,
    buckets: Mutex<HashMap<String, Bucket>>,
    transport: Option<Arc<TransportStats>>,
    fetch: Option<Arc<FetchStats>>,
    /// Which transport backend fronts the service (named by `/oak/health`
    /// and `/oak/stats` so an operator can tell an epoll node from a
    /// threads node at a glance).
    edge_backend: OnceLock<Backend>,
    /// Reactor gauges, present only when the epoll backend serves. Set
    /// after the server starts (the reactor owns its gauges), hence a
    /// `OnceLock` rather than a builder field.
    edge: OnceLock<Arc<EdgeStats>>,
    /// The node's replication status source, present only in a cluster
    /// deployment. Set after the cluster runtime boots (it owns the
    /// leases), hence a `OnceLock` like the edge gauges.
    cluster: OnceLock<Arc<dyn ClusterStatusSource>>,
    health: AtomicU8,
    /// The overload controller, when overload control is enabled (see
    /// [`OakService::with_overload`]). Shared with the transport's
    /// admission hook and the operator surfaces.
    overload: Option<Arc<OverloadController>>,
    obs: Option<Arc<ServiceObs>>,
    /// One aggregates pass shared by `/oak/stats` and `/oak/metrics`:
    /// the folded [`oak_core::aggregates::SiteOverview`] is cached
    /// against the ingest generation (reports accepted + users pruned),
    /// so back-to-back scrapes reuse the same snapshot instead of
    /// re-folding every engine shard per endpoint.
    aggregates_cache: Mutex<Option<(u64, Arc<oak_core::aggregates::SiteOverview>)>>,
}

impl OakService {
    /// A service with a zero clock and no external-script fetching.
    /// Use the builder methods to attach either.
    pub fn new(oak: Oak, store: SiteStore) -> OakService {
        OakService {
            oak,
            store,
            clock: Box::new(|| Instant::ZERO),
            fetcher: Box::new(NoFetch),
            next_user: AtomicU64::new(1),
            stats: ServiceCounters::default(),
            durable: None,
            prune: None,
            requests: AtomicU64::new(0),
            admission: AdmissionPolicy::default(),
            buckets: Mutex::new(HashMap::new()),
            transport: None,
            fetch: None,
            edge_backend: OnceLock::new(),
            edge: OnceLock::new(),
            cluster: OnceLock::new(),
            // Serving by default: a service constructed without a boot
            // sequence (tests, experiments) is ready the moment it exists.
            health: AtomicU8::new(HealthState::Serving.as_u8()),
            overload: None,
            obs: None,
            aggregates_cache: Mutex::new(None),
        }
    }

    /// Installs the clock the engine sees (wall time for live deployments,
    /// simulated time for experiments).
    pub fn with_clock(mut self, clock: impl Fn() -> Instant + Send + Sync + 'static) -> OakService {
        self.clock = Box::new(clock);
        self
    }

    /// Installs the external-script fetcher used by level-3 rule matching.
    pub fn with_fetcher(
        mut self,
        fetcher: impl ScriptFetcher + Send + Sync + 'static,
    ) -> OakService {
        self.fetcher = Box::new(fetcher);
        self
    }

    /// Attaches the durability store so ingest triggers snapshot
    /// compaction ([`oak_store::OakStore::maybe_snapshot`]) once enough
    /// events accumulate. The store must already be the engine's event
    /// sink — [`oak_store::OakStore::boot`] wires both and recovers prior
    /// state, so the typical durable service is
    /// `OakService::new(boot.oak, site).with_durability(boot.store)`.
    pub fn with_durability(mut self, store: Arc<oak_store::OakStore>) -> OakService {
        self.durable = Some(store);
        self
    }

    /// Installs report admission limits (body-size cap and per-user
    /// token-bucket rate limit). The bucket clock is the service clock,
    /// so throttling is deterministic under a fake clock.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> OakService {
        self.admission = policy;
        self
    }

    /// Attaches the transport counters of the [`oak_http::TcpServer`]
    /// fronting this service, so `/oak/stats` exports them under
    /// `"transport"`. Create the [`TransportStats`] first, hand one clone
    /// here and one to [`oak_http::TcpServer::start_with`].
    pub fn with_transport_stats(mut self, stats: Arc<TransportStats>) -> OakService {
        if let Some(overload) = &self.overload {
            overload.attach_transport(Arc::clone(&stats));
        }
        self.transport = Some(stats);
        self
    }

    /// Enables overload control: the controller samples the signal
    /// sources already attached (transport counters, reactor gauges,
    /// the engine's ingest histogram — whichever exist now or arrive
    /// through the later setters) and the service starts degrading by
    /// state — Brownout bypasses the rewriter and throttles background
    /// work; Shedding refuses requests by [`RequestClass`] priority,
    /// reports last and health probes never. The same controller is
    /// consulted by the transport's pre-body admission hook
    /// ([`oak_http::Handler::admit`]), so shed reports cost a request
    /// line, not a body read.
    pub fn with_overload(mut self, overload: Arc<OverloadController>) -> OakService {
        if let Some(transport) = &self.transport {
            overload.attach_transport(Arc::clone(transport));
        }
        if let Some(edge) = self.edge.get() {
            overload.attach_edge(Arc::clone(edge));
        }
        if let Some(obs) = &self.obs {
            overload.attach_ingest(Arc::clone(&obs.core.ingest));
        }
        self.overload = Some(overload);
        self
    }

    /// The attached overload controller, if any.
    pub fn overload(&self) -> Option<&Arc<OverloadController>> {
        self.overload.as_ref()
    }

    /// Names the transport backend fronting this service; `/oak/health`
    /// and `/oak/stats` report it. First call wins (the backend cannot
    /// change while the process lives).
    pub fn set_edge_backend(&self, backend: Backend) {
        let _ = self.edge_backend.set(backend);
    }

    /// Attaches the reactor gauges of the [`oak_edge::EdgeServer`]
    /// fronting this service, so `/oak/stats` exports them under
    /// `"edge"`, `/oak/health` carries the load-bearing ones (loop lag,
    /// ready batch, worker-queue depth), and `/oak/metrics` grows an
    /// `oak_edge_gauge` family. The gauges belong to the server, which
    /// starts *after* the service is built and shared — so this is a
    /// post-start setter, not a builder: first call wins.
    pub fn set_edge_stats(&self, stats: Arc<EdgeStats>) {
        if let Some(overload) = &self.overload {
            overload.attach_edge(Arc::clone(&stats));
        }
        let _ = self.edge.set(stats);
    }

    /// Attaches the node's replication status source, so `/oak/stats`
    /// and `/oak/health` report per-partition role, epoch, and
    /// replication lag, `/oak/metrics` grows `oak_cluster_role` and
    /// `oak_cluster_replication_lag` gauge families, and user-scoped
    /// traffic (page serves, report ingest) for partitions this node
    /// does not lead is refused with 503 + `Retry-After`. The cluster
    /// runtime boots after the service is built and shared, so this is
    /// a post-start setter like [`OakService::set_edge_stats`]: first
    /// call wins.
    pub fn set_cluster_status(&self, source: Arc<dyn ClusterStatusSource>) {
        let _ = self.cluster.set(source);
    }

    /// Attaches the fetch-outcome counters of a
    /// [`oak_core::fetch::ResilientFetcher`] (its
    /// [`stats_handle`](oak_core::fetch::ResilientFetcher::stats_handle)),
    /// so `/oak/stats` exports them under `"fetch"`.
    pub fn with_fetch_stats(mut self, stats: Arc<FetchStats>) -> OakService {
        self.fetch = Some(stats);
        self
    }

    /// Attaches the observability bundle: every request runs under a
    /// trace, responses are counted by status, `GET /oak/metrics`
    /// serves the registry in Prometheus text exposition format, and
    /// `GET /oak/trace/recent` serves the trace ring as JSON. The
    /// engine's stage metrics ([`ServiceObs::core`]) are wired into the
    /// engine here; the HTTP and store handles must still be handed to
    /// their owners ([`oak_http::TcpServer::start_with_obs`],
    /// [`oak_store::OakStore::set_obs`]).
    pub fn with_obs(mut self, obs: Arc<ServiceObs>) -> OakService {
        self.oak.set_obs(Arc::clone(&obs.core));
        if let Some(overload) = &self.overload {
            overload.attach_ingest(Arc::clone(&obs.core.ingest));
        }
        self.obs = Some(obs);
        self
    }

    /// The attached observability bundle, if any.
    pub fn obs(&self) -> Option<&Arc<ServiceObs>> {
        self.obs.as_ref()
    }

    /// Enables the idle-user sweep: every `every_requests` requests,
    /// users idle longer than `idle_ms` are evicted via
    /// [`Oak::prune_inactive_users`] (their audit history stays in the
    /// log and, when durability is on, in the WAL). Evictions land in
    /// [`ServiceStats::users_pruned`].
    pub fn with_pruning(mut self, policy: PrunePolicy) -> OakService {
        self.prune = Some(policy);
        self
    }

    /// Sets the initial lifecycle state (builder form of
    /// [`OakService::set_health`]). A daemon that recovers before its
    /// listener opens starts at [`HealthState::Booting`] and advances as
    /// the boot sequence does.
    pub fn with_health(self, state: HealthState) -> OakService {
        self.set_health(state);
        self
    }

    /// Moves the node to `state`; `GET /oak/health` reflects it on the
    /// next request.
    pub fn set_health(&self, state: HealthState) {
        self.health.store(state.as_u8(), Ordering::Relaxed);
    }

    /// The node's current lifecycle state.
    pub fn health(&self) -> HealthState {
        HealthState::from_u8(self.health.load(Ordering::Relaxed))
    }

    /// Runs `f` against the engine (experiments add rules and read logs
    /// this way). The engine synchronizes internally, so `f` gets a
    /// shared reference and no service-wide lock is held.
    pub fn with_oak<T>(&self, f: impl FnOnce(&Oak) -> T) -> T {
        f(&self.oak)
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// Wraps the service in an [`Arc`] ready for
    /// [`oak_http::TcpServer::start`].
    pub fn into_shared(self) -> Arc<OakService> {
        Arc::new(self)
    }

    /// The engine this request should run against: the cluster
    /// runtime's live replica when one is attached (resolved per
    /// request — failover can swap the engine object), the service's
    /// own engine otherwise.
    fn live_engine(&self) -> Option<Arc<Oak>> {
        self.cluster.get().and_then(|c| c.live_engine())
    }

    /// Refuses `user`'s request when a cluster status source is
    /// attached and this node does not hold the lease for the user's
    /// partition: 503 + `Retry-After`, so a polite client retries after
    /// the failover window instead of writing into a replica.
    fn cluster_gate(&self, user: &str) -> Option<Response> {
        let source = self.cluster.get()?;
        if source.is_primary_for(user) {
            return None;
        }
        Some(self.cluster_refusal(b"partition is failing over or served elsewhere; retry"))
    }

    /// A counted 503 + Retry-After from the cluster layer.
    fn cluster_refusal(&self, body: &'static [u8]) -> Response {
        self.stats.cluster_refused.fetch_add(1, Ordering::Relaxed);
        let mut response =
            Response::new(StatusCode::UNAVAILABLE).with_body(body.to_vec(), "text/plain");
        response
            .headers
            .set("Retry-After", RETRY_AFTER_HINT_SECS.to_string());
        response
    }

    fn serve_page(&self, request: &Request, path: &str, html: &str) -> Response {
        let now = (self.clock)();
        // Identify the user by cookie; first contact mints a fresh id.
        let (user, minted) = match request
            .header("cookie")
            .and_then(|v| get_cookie(v, OAK_USER_COOKIE))
        {
            Some(user) => (user.to_owned(), false),
            None => {
                let id = self.next_user.fetch_add(1, Ordering::Relaxed);
                (format!("u-{id}"), true)
            }
        };

        // Per-user rewriting state lives on the partition's primary;
        // serving (and mutating) it here on a follower would diverge
        // the replicas outside the WAL stream.
        if let Some(refusal) = self.cluster_gate(&user) {
            return refusal;
        }

        // Brownout: serve the page as-is. The paper's fallback is
        // explicit — an Oak outage "silently result[s] in pages being
        // served as-is" — so under pressure the rewriter (the most
        // expensive per-request stage) is the first thing to go. The
        // cookie is still minted: identification is cheap and losing it
        // would orphan the user's later reports.
        if self
            .overload
            .as_ref()
            .is_some_and(|overload| overload.brownout_active())
        {
            let mut response = Response::html(html.to_owned());
            if minted {
                response
                    .headers
                    .set("Set-Cookie", format_set_cookie(OAK_USER_COOKIE, &user));
            }
            if let Some(overload) = &self.overload {
                overload.note_browned_page();
            }
            self.stats.pages_served.fetch_add(1, Ordering::Relaxed);
            return response;
        }

        let live = self.live_engine();
        let oak = live.as_deref().unwrap_or(&self.oak);
        let modified = oak.modify_page_cow(now, &user, path, html);
        let alternate = modified.alternate_header_entry();
        let mut response = Response::html(modified.html.into_owned());
        if minted {
            response
                .headers
                .set("Set-Cookie", format_set_cookie(OAK_USER_COOKIE, &user));
        }
        if let Some((name, value)) = alternate {
            response.headers.set(name, value);
        }
        self.stats.pages_served.fetch_add(1, Ordering::Relaxed);
        response
    }

    /// Renders the §6 offline audit as plain text (`GET /oak/audit`).
    ///
    /// The audit covers the engine's in-memory log window. With
    /// [`oak_core::engine::OakConfig::log_retention`] set, older entries
    /// rotate out of memory; when durability is on they remain in the
    /// WAL and snapshots for offline analysis.
    fn audit_view(&self) -> Response {
        let live = self.live_engine();
        let oak = live.as_deref().unwrap_or(&self.oak);
        let summary = oak_core::audit::audit(&oak.log());
        Response::new(StatusCode::OK).with_body(
            summary.to_string().into_bytes(),
            "text/plain; charset=utf-8",
        )
    }

    /// Serves service counters and aggregate site performance as JSON
    /// (`GET /oak/stats`) — the §5 "aggregate site performance" record.
    fn stats_view(&self) -> Response {
        let stats = self.stats();
        let mut doc = oak_json::Value::object();
        doc.set("pages_served", stats.pages_served);
        doc.set("objects_served", stats.objects_served);
        doc.set("reports_accepted", stats.reports_accepted);
        doc.set("reports_rejected", stats.reports_rejected);
        doc.set("reports_throttled", stats.reports_throttled);
        doc.set("users_pruned", stats.users_pruned);

        if let Some(transport) = &self.transport {
            let t = transport.snapshot();
            let mut row = oak_json::Value::object();
            row.set("connections_accepted", t.connections_accepted);
            row.set("connections_rejected", t.connections_rejected);
            row.set("connections_closed", t.connections_closed);
            row.set("accepts_failed", t.accepts_failed);
            row.set("requests_served", t.requests_served);
            row.set("requests_shed", t.requests_shed);
            row.set("panics", t.panics);
            row.set("timeouts", t.timeouts);
            row.set("heads_too_large", t.heads_too_large);
            row.set("bodies_too_large", t.bodies_too_large);
            row.set("bad_requests", t.bad_requests);
            doc.set("transport", row);
        }
        if let Some(overload) = &self.overload {
            let o = overload.snapshot();
            let mut row = oak_json::Value::object();
            row.set("state", overload.state().as_str());
            row.set("severity", o.severity as u64);
            row.set("shed_pages", o.shed_pages);
            row.set("shed_scrapes", o.shed_scrapes);
            row.set("shed_reports", o.shed_reports);
            row.set("pages_browned", o.pages_browned);
            row.set("brownout_entries", o.brownout_entries);
            row.set("shedding_entries", o.shedding_entries);
            doc.set("overload", row);
        }
        if let Some(backend) = self.edge_backend.get() {
            doc.set("backend", backend.as_str());
        }
        if let Some(edge) = self.edge.get() {
            let e = edge.snapshot();
            let mut row = oak_json::Value::object();
            row.set("loop_lag_us", e.loop_lag_us);
            row.set("max_loop_lag_us", e.max_loop_lag_us);
            row.set("ready_batch", e.ready_batch);
            row.set("max_ready_batch", e.max_ready_batch);
            row.set("worker_queue_depth", e.worker_queue_depth);
            row.set("connections_open", e.connections_open);
            row.set("timers_pending", e.timers_pending);
            row.set("wakeups", e.wakeups);
            doc.set("edge", row);
        }
        if let Some(cluster) = self.cluster.get() {
            let mut row = oak_json::Value::object();
            row.set("refused", stats.cluster_refused);
            let mut partitions = oak_json::Value::array();
            for p in cluster.partitions() {
                let mut entry = oak_json::Value::object();
                entry.set("partition", p.partition as u64);
                entry.set("role", p.role.as_str());
                entry.set("epoch", p.epoch);
                entry.set("head", p.head);
                entry.set("commit", p.commit);
                entry.set("lag", p.lag);
                partitions.push(entry);
            }
            row.set("partitions", partitions);
            doc.set("cluster", row);
        }
        if let Some(fetch) = &self.fetch {
            let f = fetch.snapshot();
            let mut row = oak_json::Value::object();
            row.set("attempts", f.attempts);
            row.set("successes", f.successes);
            row.set("failures", f.failures);
            row.set("timeouts", f.timeouts);
            row.set("negative_cache_hits", f.negative_cache_hits);
            row.set("breaker_open_skips", f.breaker_open_skips);
            row.set("breaker_opens", f.breaker_opens);
            doc.set("fetch", row);
        }

        let agg = self.aggregates_snapshot();
        doc.set("reports", agg.reports);
        doc.set("users", agg.users);
        let mut domains = oak_json::Value::array();
        for (domain, entry) in agg.worst_domains().into_iter().take(50) {
            let mut row = oak_json::Value::object();
            row.set("domain", domain);
            row.set("objects", entry.objects);
            row.set("bytes", entry.bytes);
            row.set("violations", entry.violations);
            row.set("users_seen", entry.users_seen);
            row.set(
                "avg_small_time_ms",
                entry
                    .small_time_ms
                    .mean()
                    .map(|m| (m * 100.0).round() / 100.0),
            );
            row.set(
                "avg_large_tput_kbps",
                entry
                    .large_tput_kbps
                    .mean()
                    .map(|m| (m * 100.0).round() / 100.0),
            );
            domains.push(row);
        }
        doc.set("domains", domains);
        Response::new(StatusCode::OK).with_body(doc.to_string().into_bytes(), "application/json")
    }

    /// One folded [`oak_core::aggregates::SiteOverview`] pass shared
    /// by `/oak/stats` and `/oak/metrics`. The fold walks every engine
    /// shard, so the result is cached against an ingest generation —
    /// the engine's ingest counter when observability is attached, the
    /// service's otherwise — and back-to-back scrapes reuse it. The
    /// overview (unlike a full [`oak_core::aggregates::SiteAggregates`]
    /// merge) never clones per-user state, so a scrape stays cheap no
    /// matter how many distinct users the engine has ever seen — a
    /// stats endpoint whose cost grows with the user base is a
    /// self-inflicted overload vector.
    fn aggregates_snapshot(&self) -> Arc<oak_core::aggregates::SiteOverview> {
        let generation = match &self.obs {
            Some(obs) => obs.core.reports.get(),
            None => self.stats.reports_accepted.load(Ordering::Relaxed),
        }
        .wrapping_add(
            self.stats
                .users_pruned
                .load(Ordering::Relaxed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut cache = self.aggregates_cache.lock().expect("aggregates cache");
        if let Some((cached_generation, agg)) = cache.as_ref() {
            if *cached_generation == generation {
                return Arc::clone(agg);
            }
        }
        let live = self.live_engine();
        let oak = live.as_deref().unwrap_or(&self.oak);
        let agg = Arc::new(oak.aggregates_overview());
        *cache = Some((generation, Arc::clone(&agg)));
        agg
    }

    /// Serves every registered metric family — plus families synthesized
    /// from the transport, fetch, service, engine, and tracer snapshots —
    /// as Prometheus text exposition format v0.0.4 (`GET /oak/metrics`).
    fn metrics_view(&self) -> Response {
        let Some(obs) = &self.obs else {
            return Response::not_found();
        };
        let mut families = obs.registry.families();
        let stats = self.stats();
        families.push(scalar_family(
            "oak_server_served_total",
            "Pages and static objects served, by kind.",
            FamilyKind::Counter,
            vec![
                scalar_series(&[("kind", "page")], stats.pages_served as f64),
                scalar_series(&[("kind", "object")], stats.objects_served as f64),
            ],
        ));
        families.push(scalar_family(
            "oak_server_reports_total",
            "Client performance reports, by admission outcome.",
            FamilyKind::Counter,
            vec![
                scalar_series(&[("outcome", "accepted")], stats.reports_accepted as f64),
                scalar_series(&[("outcome", "rejected")], stats.reports_rejected as f64),
                scalar_series(&[("outcome", "throttled")], stats.reports_throttled as f64),
            ],
        ));
        families.push(scalar_family(
            "oak_server_users_pruned_total",
            "Users evicted by the idle-pruning sweep.",
            FamilyKind::Counter,
            vec![scalar_series(&[], stats.users_pruned as f64)],
        ));
        if let Some(transport) = &self.transport {
            let t = transport.snapshot();
            families.push(scalar_family(
                "oak_http_transport_events_total",
                "Transport-level connection and request outcomes, by event.",
                FamilyKind::Counter,
                vec![
                    scalar_series(
                        &[("event", "connections_accepted")],
                        t.connections_accepted as f64,
                    ),
                    scalar_series(
                        &[("event", "connections_rejected")],
                        t.connections_rejected as f64,
                    ),
                    scalar_series(
                        &[("event", "connections_closed")],
                        t.connections_closed as f64,
                    ),
                    scalar_series(&[("event", "accepts_failed")], t.accepts_failed as f64),
                    scalar_series(&[("event", "requests_served")], t.requests_served as f64),
                    scalar_series(&[("event", "requests_shed")], t.requests_shed as f64),
                    scalar_series(&[("event", "panics")], t.panics as f64),
                    scalar_series(&[("event", "timeouts")], t.timeouts as f64),
                    scalar_series(&[("event", "heads_too_large")], t.heads_too_large as f64),
                    scalar_series(&[("event", "bodies_too_large")], t.bodies_too_large as f64),
                    scalar_series(&[("event", "bad_requests")], t.bad_requests as f64),
                ],
            ));
        }
        if let Some(fetch) = &self.fetch {
            let f = fetch.snapshot();
            families.push(scalar_family(
                "oak_fetch_outcomes_total",
                "External script fetch attempts, by outcome.",
                FamilyKind::Counter,
                vec![
                    scalar_series(&[("outcome", "attempts")], f.attempts as f64),
                    scalar_series(&[("outcome", "successes")], f.successes as f64),
                    scalar_series(&[("outcome", "failures")], f.failures as f64),
                    scalar_series(&[("outcome", "timeouts")], f.timeouts as f64),
                    scalar_series(
                        &[("outcome", "negative_cache_hits")],
                        f.negative_cache_hits as f64,
                    ),
                    scalar_series(
                        &[("outcome", "breaker_open_skips")],
                        f.breaker_open_skips as f64,
                    ),
                    scalar_series(&[("outcome", "breaker_opens")], f.breaker_opens as f64),
                ],
            ));
        }
        if let Some(edge) = self.edge.get() {
            let e = edge.snapshot();
            families.push(scalar_family(
                "oak_edge_gauge",
                "Reactor vitals of the epoll edge backend, by gauge.",
                FamilyKind::Gauge,
                vec![
                    scalar_series(&[("gauge", "loop_lag_us")], e.loop_lag_us as f64),
                    scalar_series(&[("gauge", "max_loop_lag_us")], e.max_loop_lag_us as f64),
                    scalar_series(&[("gauge", "ready_batch")], e.ready_batch as f64),
                    scalar_series(&[("gauge", "max_ready_batch")], e.max_ready_batch as f64),
                    scalar_series(
                        &[("gauge", "worker_queue_depth")],
                        e.worker_queue_depth as f64,
                    ),
                    scalar_series(&[("gauge", "connections_open")], e.connections_open as f64),
                    scalar_series(&[("gauge", "timers_pending")], e.timers_pending as f64),
                    scalar_series(&[("gauge", "wakeups")], e.wakeups as f64),
                ],
            ));
        }
        if let Some(overload) = &self.overload {
            let o = overload.snapshot();
            families.push(scalar_family(
                "oak_overload_state",
                "Overload controller state: 0 nominal, 1 brownout, 2 shedding.",
                FamilyKind::Gauge,
                vec![scalar_series(&[], o.state as f64)],
            ));
            families.push(scalar_family(
                "oak_requests_shed_total",
                "Requests refused with 503 + Retry-After by the overload \
                 controller, by priority class.",
                FamilyKind::Counter,
                vec![
                    scalar_series(&[("class", "page")], o.shed_pages as f64),
                    scalar_series(&[("class", "scrape")], o.shed_scrapes as f64),
                    scalar_series(&[("class", "report")], o.shed_reports as f64),
                ],
            ));
            families.push(scalar_family(
                "oak_pages_browned_total",
                "Pages served unrewritten under Brownout (the paper's no-op \
                 fallback).",
                FamilyKind::Counter,
                vec![scalar_series(&[], o.pages_browned as f64)],
            ));
        }
        if let Some(cluster) = self.cluster.get() {
            let status = cluster.partitions();
            let mut roles = Vec::new();
            let mut lags = Vec::new();
            for p in &status {
                let partition = p.partition.to_string();
                roles.push(scalar_series(
                    &[("partition", partition.as_str()), ("role", p.role.as_str())],
                    1.0,
                ));
                lags.push(scalar_series(
                    &[("partition", partition.as_str())],
                    p.lag as f64,
                ));
            }
            families.push(scalar_family(
                "oak_cluster_role",
                "Current replication role per hosted partition (value is always 1; \
                 the role label carries the state).",
                FamilyKind::Gauge,
                roles,
            ));
            families.push(scalar_family(
                "oak_cluster_replication_lag",
                "Replication lag in events per hosted partition: worst follower \
                 distance from head on a primary, own distance from the heard \
                 commit on a follower.",
                FamilyKind::Gauge,
                lags,
            ));
            families.push(scalar_family(
                "oak_cluster_refused_total",
                "Requests refused with 503 + Retry-After because this node does \
                 not lead the user's partition.",
                FamilyKind::Counter,
                vec![scalar_series(&[], stats.cluster_refused as f64)],
            ));
        }
        let agg = self.aggregates_snapshot();
        let live = self.live_engine();
        let engine = live.as_deref().unwrap_or(&self.oak);
        families.push(scalar_family(
            "oak_engine_users",
            "Users with live per-user engine state.",
            FamilyKind::Gauge,
            vec![scalar_series(&[], engine.user_count() as f64)],
        ));
        families.push(scalar_family(
            "oak_engine_rules",
            "Rules in the engine's rule table.",
            FamilyKind::Gauge,
            vec![scalar_series(&[], engine.rules().count() as f64)],
        ));
        families.push(scalar_family(
            "oak_engine_reports_aggregated",
            "Reports folded into the aggregate site-performance record.",
            FamilyKind::Gauge,
            vec![scalar_series(&[], agg.reports as f64)],
        ));
        families.push(scalar_family(
            "oak_trace_completed_total",
            "Request traces completed.",
            FamilyKind::Counter,
            vec![scalar_series(&[], obs.tracer.completed() as f64)],
        ));
        families.push(scalar_family(
            "oak_trace_slow_total",
            "Request traces slower than the slow threshold.",
            FamilyKind::Counter,
            vec![scalar_series(&[], obs.tracer.slow() as f64)],
        ));
        families.push(scalar_family(
            "oak_trace_dropped_spans_total",
            "Spans dropped by the per-trace cap.",
            FamilyKind::Counter,
            vec![scalar_series(&[], obs.tracer.dropped_spans() as f64)],
        ));
        Response::new(StatusCode::OK).with_body(
            oak_obs::encode(families).into_bytes(),
            "text/plain; version=0.0.4; charset=utf-8",
        )
    }

    /// Serves the tracer's ring of recently completed traces as JSON,
    /// oldest first (`GET /oak/trace/recent`).
    fn trace_view(&self) -> Response {
        let Some(obs) = &self.obs else {
            return Response::not_found();
        };
        let mut doc = oak_json::Value::array();
        for trace in obs.tracer.recent() {
            let mut row = oak_json::Value::object();
            row.set("id", trace.id);
            row.set("name", trace.name.as_str());
            row.set("start_us", trace.start_ns / 1_000);
            row.set("dur_us", trace.dur_ns / 1_000);
            row.set("dropped", trace.dropped as u64);
            let mut spans = oak_json::Value::array();
            for span in &trace.spans {
                let mut s = oak_json::Value::object();
                s.set("name", span.name);
                s.set("depth", span.depth as u64);
                s.set(
                    "start_us",
                    span.start_ns.saturating_sub(trace.start_ns) / 1_000,
                );
                s.set("dur_us", span.dur_ns / 1_000);
                spans.push(s);
            }
            row.set("spans", spans);
            doc.push(row);
        }
        Response::new(StatusCode::OK).with_body(doc.to_string().into_bytes(), "application/json")
    }

    /// Answers `GET /oak/health`: 200 while serving, 503 in every other
    /// state, with the state named in a small JSON body either way.
    fn health_view(&self) -> Response {
        let state = self.health();
        let status = if state == HealthState::Serving {
            StatusCode::OK
        } else {
            StatusCode::UNAVAILABLE
        };
        let mut doc = oak_json::Value::object();
        doc.set("state", state.as_str());
        // Degraded is distinct from down: a browned-out or shedding
        // node still answers 200 here (health probes are never shed),
        // so a load balancer can keep it in rotation at reduced weight
        // instead of ejecting it and dogpiling its peers.
        if let Some(overload) = &self.overload {
            doc.set("degraded", overload.brownout_active());
            doc.set("overload", overload.state().as_str());
        }
        if let Some(backend) = self.edge_backend.get() {
            doc.set("backend", backend.as_str());
        }
        // A probe watching an epoll node gets the reactor vitals inline:
        // a rising loop lag or worker-queue depth says the node is
        // saturating before any request actually fails.
        if let Some(edge) = self.edge.get() {
            let e = edge.snapshot();
            let mut row = oak_json::Value::object();
            row.set("loop_lag_us", e.loop_lag_us);
            row.set("ready_batch", e.ready_batch);
            row.set("worker_queue_depth", e.worker_queue_depth);
            row.set("connections_open", e.connections_open);
            doc.set("edge", row);
        }
        // A load balancer probing a cluster node sees each partition's
        // role and replication lag inline: a follower falling behind,
        // or a partition with no primary, shows up here before any
        // client request is refused.
        if let Some(cluster) = self.cluster.get() {
            let mut partitions = oak_json::Value::array();
            for p in cluster.partitions() {
                let mut entry = oak_json::Value::object();
                entry.set("partition", p.partition as u64);
                entry.set("role", p.role.as_str());
                entry.set("epoch", p.epoch);
                entry.set("lag", p.lag);
                partitions.push(entry);
            }
            doc.set("cluster", partitions);
        }
        Response::new(status).with_body(doc.to_string().into_bytes(), "application/json")
    }

    /// Spends one token from `key`'s bucket; `false` means throttled.
    /// `pub(crate)` for the property tests, which drive it directly.
    pub(crate) fn admit_report(&self, key: &str, now: Instant) -> bool {
        let rate = self.admission.report_rate;
        if rate <= 0.0 {
            return true;
        }
        let burst = self.admission.report_burst.max(1.0);
        let mut buckets = self.buckets.lock().expect("bucket lock");
        if buckets.len() >= BUCKET_CAPACITY && !buckets.contains_key(key) {
            buckets.retain(|_, b| b.tokens + now.since(b.refilled) as f64 * rate / 1_000.0 < burst);
            if buckets.len() >= BUCKET_CAPACITY {
                return true;
            }
        }
        let bucket = buckets.entry(key.to_owned()).or_insert(Bucket {
            tokens: burst,
            refilled: now,
        });
        bucket.tokens =
            (bucket.tokens + now.since(bucket.refilled) as f64 * rate / 1_000.0).min(burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn accept_report(&self, request: &Request) -> Response {
        let now = (self.clock)();
        if request.body.len() > self.admission.max_report_bytes {
            self.stats.reports_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::new(StatusCode::PAYLOAD_TOO_LARGE).with_body(
                format!(
                    "report exceeds the {}-byte limit",
                    self.admission.max_report_bytes
                )
                .into_bytes(),
                "text/plain",
            );
        }
        // Rate-limit on the transport-observed identity (cookie, else
        // peer address) before spending any parsing work on the body.
        let throttle_key = request
            .header("cookie")
            .and_then(|v| get_cookie(v, OAK_USER_COOKIE))
            .or_else(|| request.header(oak_http::PEER_ADDR_HEADER))
            .unwrap_or("-");
        if !self.admit_report(throttle_key, now) {
            self.stats.reports_throttled.fetch_add(1, Ordering::Relaxed);
            // Retry-After on every turn-away: the bucket refills within
            // a second at any configured rate worth throttling at.
            return Response::new(StatusCode::TOO_MANY_REQUESTS)
                .with_body(b"report rate limit exceeded".to_vec(), "text/plain")
                .with_header("Retry-After", &SHED_RETRY_AFTER_SECS.to_string());
        }
        // Wire-format negotiation: the media type (parameters stripped)
        // selects the decoder; everything else — bounds, error surface,
        // admission — is identical across encodings.
        let binary = request
            .header("content-type")
            .and_then(|ct| ct.split(';').next())
            .map(|media| {
                media
                    .trim()
                    .eq_ignore_ascii_case(oak_core::wire::OAK_REPORT_CONTENT_TYPE)
            })
            .unwrap_or(false);
        let parse_start = self.obs.as_ref().map(|o| o.now());
        let parse_span = oak_obs::span("parse_report");
        let parsed = if binary {
            PerfReport::from_binary(&request.body)
        } else {
            PerfReport::from_json_bytes(&request.body)
        };
        drop(parse_span);
        if let (Some(obs), Some(start)) = (&self.obs, parse_start) {
            oak_core::obs::CoreMetrics::record(&obs.core.report_parse, start, obs.now());
        }
        if let Some(obs) = &self.obs {
            let counter = match (&parsed, binary) {
                (Ok(_), true) => &obs.core.decode_binary,
                (Ok(_), false) => &obs.core.decode_json,
                (Err(_), true) => &obs.core.decode_errors_binary,
                (Err(_), false) => &obs.core.decode_errors_json,
            };
            counter.inc();
        }
        let mut report = match parsed {
            Ok(r) => r,
            Err(e) => {
                self.stats.reports_rejected.fetch_add(1, Ordering::Relaxed);
                return Response::new(StatusCode::BAD_REQUEST)
                    .with_body(e.to_string().into_bytes(), "text/plain");
            }
        };
        // The identifying cookie is authoritative for the user id (§4:
        // the cookie lets the server connect performance to the client).
        if let Some(user) = request
            .header("cookie")
            .and_then(|v| get_cookie(v, OAK_USER_COOKIE))
        {
            report.user = user.to_owned();
        }
        // Gate on the resolved identity — the partition key — after
        // parsing: only now is the user this report would mutate known.
        if let Some(refusal) = self.cluster_gate(&report.user) {
            return refusal;
        }
        // The transport-observed peer address (set by the TCP server,
        // never client-forgeable) feeds subnet-scoped rule policies.
        let client_ip = request.header(oak_http::PEER_ADDR_HEADER);
        let live = self.live_engine();
        let oak = live.as_deref().unwrap_or(&self.oak);
        oak.ingest_report_from(now, &report, &*self.fetcher, client_ip);
        // The engine head now covers every event this report emitted;
        // the ack below may not be released before the replication
        // watermark reaches it.
        let head = oak.event_seq();
        self.stats.reports_accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.durable {
            // Compaction errors must not fail the client's report; the
            // store's write_errors counter carries them to the operator.
            let _ = store.maybe_snapshot(oak);
        }
        // A 204 *means* majority-durable (DESIGN.md §14). In a cluster,
        // hold it until the watermark covers the ingested events; if
        // replication stalls (majority unreachable, lease lost
        // mid-ingest), answer 503 instead — the report was applied
        // locally, so the client's retry is at-least-once, which beats
        // acking an event a failover would lose.
        if let Some(cluster) = self.cluster.get() {
            if !cluster.wait_for_commit(&report.user, head) {
                return self.cluster_refusal(b"report not yet replicated to a majority; retry");
            }
        }
        Response::new(StatusCode::NO_CONTENT)
    }

    /// The request-cadence idle-user sweep (no-op unless configured).
    /// Under Brownout the cadence stretches by the controller's
    /// multiplier — a saturated node defers background work first.
    fn maybe_prune(&self) {
        let Some(policy) = &self.prune else { return };
        let count = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let stretch = self
            .overload
            .as_ref()
            .map_or(1, |overload| overload.prune_stretch());
        if !count.is_multiple_of(policy.every_requests.max(1).saturating_mul(stretch)) {
            return;
        }
        if let Some(cluster) = self.cluster.get() {
            if !cluster.leads_maintenance() {
                return;
            }
        }
        let now = (self.clock)();
        let cutoff = Instant(now.as_millis().saturating_sub(policy.idle_ms));
        let live = self.live_engine();
        let oak = live.as_deref().unwrap_or(&self.oak);
        let pruned = oak.prune_inactive_users(cutoff) as u64;
        if pruned > 0 {
            self.stats.users_pruned.fetch_add(pruned, Ordering::Relaxed);
        }
    }
}

impl OakService {
    fn dispatch(&self, request: &Request) -> Response {
        let path = request.path().to_owned();
        // Overload gate, ahead of every other per-request cost
        // (including the prune sweep): a live controller samples its
        // signals here, then sheds by class priority. Shed GETs keep
        // the connection alive — the request was fully read, so the
        // 503 + Retry-After frames cleanly and the client's next
        // attempt reuses the socket instead of re-handshaking (reports
        // are instead refused pre-body at the transport's admit hook).
        if let Some(overload) = &self.overload {
            overload.tick((self.clock)().as_millis());
            let class = RequestClass::of(&path);
            if overload.should_shed(class) {
                return overload.shed_response(class);
            }
        }
        self.maybe_prune();
        match (request.method, path.as_str()) {
            (Method::Post, REPORT_PATH) => self.accept_report(request),
            (Method::Get, crate::AUDIT_PATH) => self.audit_view(),
            (Method::Get, crate::STATS_PATH) => self.stats_view(),
            (Method::Get, crate::METRICS_PATH) => self.metrics_view(),
            (Method::Get, crate::TRACE_PATH) => self.trace_view(),
            (Method::Get | Method::Head, crate::HEALTH_PATH) => self.health_view(),
            (Method::Get | Method::Head, _) => {
                if let Some(html) = self.store.page(&path) {
                    return self.serve_page(request, &path, html);
                }
                if let Some((content_type, bytes)) = self.store.object(&path) {
                    self.stats.objects_served.fetch_add(1, Ordering::Relaxed);
                    return Response::new(StatusCode::OK).with_body(bytes.to_vec(), content_type);
                }
                Response::not_found()
            }
            _ => Response::new(StatusCode(405))
                .with_body(b"method not allowed".to_vec(), "text/plain"),
        }
    }
}

impl Handler for OakService {
    fn handle(&self, request: &Request) -> Response {
        // The trace guard opens before dispatch and closes after the
        // response is built, so every stage span a layer below pushes
        // (parse_report, ingest, detect, match, modify_page, rewrite,
        // wal_append, fetch) nests under this request's trace. Under
        // Brownout tracing is suspended — the ring buffer and span
        // formatting are overhead a saturated node can drop without a
        // client noticing (response counting stays on; it is one add).
        let browned = self
            .overload
            .as_ref()
            .is_some_and(|overload| overload.brownout_active());
        let trace = self.obs.as_ref().filter(|_| !browned).map(|obs| {
            obs.tracer
                .begin(&format!("{} {}", request.method.as_str(), request.path()))
        });
        let response = self.dispatch(request);
        if let Some(obs) = &self.obs {
            obs.count_response(response.status.0);
        }
        drop(trace);
        response
    }

    /// Pre-body admission: consulted by both transport backends the
    /// moment a request head is framed, before any body byte is read.
    /// Only report POSTs are refused here — their bodies are the
    /// expensive part, and an unread body forces a connection close
    /// anyway. Shed GETs wait for dispatch, where the 503 frames over
    /// a keep-alive socket instead of tearing it down.
    fn admit(&self, method: Method, target: &str) -> Option<Response> {
        let overload = self.overload.as_ref()?;
        overload.tick((self.clock)().as_millis());
        if method != Method::Post {
            return None;
        }
        let path = target.split('?').next().unwrap_or(target);
        if path == REPORT_PATH && overload.should_shed(RequestClass::Report) {
            return Some(overload.shed_response(RequestClass::Report));
        }
        None
    }

    /// The queue deadline never drops a health probe: a load balancer
    /// must be able to distinguish a saturated node from a dead one.
    fn shed_exempt(&self, target: &str) -> bool {
        let path = target.split('?').next().unwrap_or(target);
        path == crate::HEALTH_PATH
    }
}

/// A one-value series with its labels sorted, for synthesized families.
fn scalar_series(labels: &[(&str, &str)], value: f64) -> Series {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    labels.sort();
    Series {
        labels,
        value: SeriesValue::Scalar(value),
    }
}

/// A family synthesized from an existing stats snapshot (transport,
/// fetch, service counters) rather than registered in the registry.
fn scalar_family(name: &str, help: &str, kind: FamilyKind, series: Vec<Series>) -> Family {
    Family {
        name: name.to_owned(),
        help: help.to_owned(),
        kind,
        series,
    }
}
