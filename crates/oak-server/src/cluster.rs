//! The live TCP cluster runtime behind `oak-serve --cluster`.
//!
//! Wires one [`oak_cluster::ClusterNode`] to real sockets and the real
//! filesystem: the same protocol the simulator proves lossless
//! (`oak-sim --cluster`), with `SimNet` swapped for TCP and `SimFs` for
//! [`oak_store::RealFs`]. Envelopes travel as the CRC-framed JSON of
//! [`oak_cluster::Envelope::encode`] — the exact frames the sim codec
//! round-trips — so a corrupt or truncated frame drops the connection
//! instead of being applied.
//!
//! The live topology is one replication group: every peer replicates
//! every partition (`replication = peers`), which makes the daemon a
//! primary/standby HA pair (or triple) — the N-way partitioned layout,
//! elections under partitions, and the loss oracles are exercised in
//! `oak-sim`, which runs this same [`ClusterNode`] state machine.
//!
//! Threads:
//! - a **ticker** advances the lease/shipping state machine every
//!   [`TICK_MS`],
//! - an **acceptor** takes peer connections on this node's `--peers`
//!   entry; each connection gets a reader thread that decodes frames
//!   and feeds [`ClusterNode::handle`],
//! - a **writer per peer** drains that peer's bounded outbound queue
//!   onto its TCP connection, reconnecting when it breaks.
//!
//! Loss is fine everywhere: an unreachable peer just drops envelopes,
//! exactly like a cut `SimNet` link, and the lease protocol rides it
//! out. Enqueueing to a full or dead peer queue drops the envelope, so
//! neither the ticker nor a reader thread ever blocks on a slow peer —
//! one hung connection (full send buffer, half-open socket) must not
//! stall heartbeats to the healthy ones.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use oak_cluster::{
    ClusterNode, DecodeStep, Envelope, NodeId, NodeOptions, PartitionStatus, Role, Topology,
};
use oak_core::engine::{Oak, OakConfig};
use oak_store::segment::{FRAME_OVERHEAD, MAX_FRAME};
use oak_store::{OakStore, RealFs, StoreOptions};

use crate::service::ClusterStatusSource;

/// Wall-clock cadence of the lease/shipping tick, matching the sim's
/// cluster world.
const TICK_MS: u64 = 20;

/// How long an outbound reconnect may block its peer's writer thread.
/// Short on purpose: a dead peer should drop frames, not queue them.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(40);

/// Bound on one blocking send to a peer. A connection that cannot make
/// progress within this window is treated as broken (the frame is
/// dropped and the writer reconnects) rather than parked on forever.
const WRITE_TIMEOUT: Duration = Duration::from_millis(250);

/// Frames a peer's outbound queue holds before new ones are dropped.
/// Sized for several heartbeat intervals of lease + shipping traffic;
/// a peer too slow to drain this is indistinguishable from a cut link.
const OUTBOX_FRAMES: usize = 256;

/// How long the ingest path may wait for the replication watermark to
/// cover a report before giving up with 503 (the client retries).
/// Generous against the commit cadence (one [`TICK_MS`] round trip in
/// the healthy case) but far below a client timeout.
const COMMIT_WAIT_MS: u64 = 1_000;

/// The single replication group the live runtime hosts (see module
/// docs): every user hashes here, every peer replicates it.
const GROUP: u32 = 0;

/// One live cluster member: the replicated node, its peer addresses,
/// and the per-peer outbound queues.
pub struct ClusterRuntime {
    node: Mutex<ClusterNode>,
    /// Signaled (paired with `node`) whenever the ticker or a reader
    /// thread has run the state machine — the only places the commit
    /// watermark can advance — so [`ClusterRuntime::wait_for_commit`]
    /// parks instead of polling.
    commits: Condvar,
    peers: Vec<String>,
    me: NodeId,
    /// Outbound queue per peer index; `None` at our own slot. Each is
    /// drained by that peer's dedicated writer thread.
    links: Vec<Option<mpsc::SyncSender<Vec<u8>>>>,
    /// Rules file to seed through the WAL once this node first holds
    /// the lease (never written directly into a follower replica).
    seed_rules: Mutex<Option<std::path::PathBuf>>,
    started: std::time::Instant,
}

impl ClusterRuntime {
    /// Boots node `role` of the `peers` replication group rooted at
    /// `root` and starts the ticker and acceptor threads. Fails fast if
    /// this node's own peer entry cannot be bound or the store cannot
    /// recover.
    pub fn start(
        role: u32,
        peers: Vec<String>,
        root: &Path,
        oak: OakConfig,
        store: StoreOptions,
    ) -> std::io::Result<Arc<ClusterRuntime>> {
        let me = NodeId(role);
        let nodes: Vec<NodeId> = (0..peers.len() as u32).map(NodeId).collect();
        let replication = peers.len();
        let topology = Topology::new(nodes, 1, replication);
        let options = NodeOptions {
            oak,
            store,
            ..NodeOptions::default()
        };
        let listener = TcpListener::bind(&peers[role as usize])?;
        let started = std::time::Instant::now();
        let node = ClusterNode::new(me, topology, Arc::new(RealFs), root, options, 0)?;
        let mut links: Vec<Option<mpsc::SyncSender<Vec<u8>>>> = Vec::with_capacity(peers.len());
        for (index, addr) in peers.iter().enumerate() {
            if index == role as usize {
                links.push(None);
                continue;
            }
            let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(OUTBOX_FRAMES);
            let addr = addr.clone();
            std::thread::Builder::new()
                .name(format!("oak-cluster-send-{index}"))
                .spawn(move || writer_loop(&addr, rx))?;
            links.push(Some(tx));
        }
        let runtime = Arc::new(ClusterRuntime {
            node: Mutex::new(node),
            commits: Condvar::new(),
            links,
            peers,
            me,
            seed_rules: Mutex::new(None),
            started,
        });

        let acceptor = Arc::clone(&runtime);
        std::thread::Builder::new()
            .name("oak-cluster-accept".into())
            .spawn(move || acceptor.accept_loop(listener))?;
        let ticker = Arc::clone(&runtime);
        std::thread::Builder::new()
            .name("oak-cluster-tick".into())
            .spawn(move || ticker.tick_loop())?;
        Ok(runtime)
    }

    /// Defers `--rules` until this node first holds the lease, so the
    /// seed rules enter through the primary engine and ship to
    /// followers over the WAL like any other mutation.
    pub fn seed_rules_when_primary(&self, path: std::path::PathBuf) {
        *self.seed_rules.lock().expect("seed rules lock") = Some(path);
    }

    /// The durable store behind the replication group, for the ingest
    /// path's snapshot compaction.
    pub fn store(&self) -> Option<Arc<OakStore>> {
        self.node
            .lock()
            .expect("cluster node lock")
            .partition_store(GROUP)
    }

    /// The replica engine at boot (recovery report, rule counts).
    pub fn boot_engine(&self) -> Option<Arc<Oak>> {
        self.node
            .lock()
            .expect("cluster node lock")
            .replica_engine(GROUP)
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn tick_loop(self: Arc<Self>) {
        loop {
            std::thread::sleep(Duration::from_millis(TICK_MS));
            let now = self.now_ms();
            let out = {
                let mut node = self.node.lock().expect("cluster node lock");
                let out = node.tick(now);
                self.maybe_seed_rules(&node);
                out
            };
            // The tick may have advanced the commit watermark (acks
            // heard, leases moved); wake any ingest handler parked on it.
            self.commits.notify_all();
            self.send_all(out);
        }
    }

    /// Applies the deferred `--rules` file the first time this node is
    /// primary of a virgin group.
    fn maybe_seed_rules(&self, node: &ClusterNode) {
        let mut seed = self.seed_rules.lock().expect("seed rules lock");
        let Some(path) = seed.as_ref() else { return };
        let Ok(oak) = node.primary_engine(GROUP) else {
            return;
        };
        if oak.rules().count() == 0 {
            match crate::load_rules_into(&oak, path) {
                Ok(count) => eprintln!(
                    "oak-cluster: seeded {count} rule(s) from {} as primary",
                    path.display()
                ),
                Err(e) => eprintln!(
                    "oak-cluster: failed to seed --rules {}: {e}",
                    path.display()
                ),
            }
        } else {
            eprintln!(
                "oak-cluster: --rules {} skipped: replicated group already holds rules",
                path.display()
            );
        }
        *seed = None;
    }

    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            let reader = Arc::clone(&self);
            let spawned = std::thread::Builder::new()
                .name("oak-cluster-read".into())
                .spawn(move || reader.read_loop(stream));
            if spawned.is_err() {
                // Thread exhaustion: drop the connection, the peer
                // reconnects.
                continue;
            }
        }
    }

    /// Decodes envelopes off one inbound peer connection until it
    /// closes or turns corrupt.
    fn read_loop(&self, mut stream: TcpStream) {
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let n = match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => n,
            };
            buf.extend_from_slice(&chunk[..n]);
            let mut offset = 0;
            loop {
                match Envelope::decode_step(&buf, offset) {
                    DecodeStep::Frame(envelope, next) => {
                        offset = next;
                        let now = self.now_ms();
                        let replies = {
                            let mut node = self.node.lock().expect("cluster node lock");
                            node.handle(now, &envelope)
                        };
                        // A follower ack just handled may have advanced
                        // the watermark; wake parked ingest handlers.
                        self.commits.notify_all();
                        self.send_all(replies);
                    }
                    // More bytes are coming: keep the partial frame.
                    DecodeStep::Incomplete => break,
                    // A frame that can never decode poisons the whole
                    // stream (framing is lost): drop the connection so
                    // the peer's writer reconnects cleanly, instead of
                    // waiting forever for bytes that cannot help.
                    DecodeStep::Corrupt => return,
                }
            }
            buf.drain(..offset);
            // Belt and braces: a partial frame can never legitimately
            // exceed the frame format's own bound.
            if buf.len() > MAX_FRAME as usize + FRAME_OVERHEAD {
                return;
            }
        }
    }

    /// Queues envelopes onto their recipients' outbound queues. A full
    /// or dead queue drops the envelope — the protocol treats loss like
    /// a cut link, and blocking here would let one slow peer stall the
    /// ticker or a reader thread.
    fn send_all(&self, envelopes: Vec<Envelope>) {
        for envelope in envelopes {
            let to = envelope.to.0 as usize;
            let Some(Some(link)) = self.links.get(to) else {
                continue;
            };
            let _ = link.try_send(envelope.encode());
        }
    }
}

/// Drains one peer's outbound queue onto its TCP connection, connecting
/// lazily and reconnecting (once per frame) when a send fails. Runs on
/// that peer's dedicated writer thread, so a hung connection blocks
/// only traffic to that peer, and only up to [`WRITE_TIMEOUT`] per
/// frame.
fn writer_loop(addr: &str, rx: mpsc::Receiver<Vec<u8>>) {
    use std::io::Write;

    let mut conn: Option<TcpStream> = None;
    while let Ok(bytes) = rx.recv() {
        let mut delivered = false;
        if let Some(stream) = conn.as_mut() {
            delivered = stream.write_all(&bytes).is_ok();
        }
        if !delivered {
            conn = connect(addr);
            if let Some(stream) = conn.as_mut() {
                delivered = stream.write_all(&bytes).is_ok();
            }
            if !delivered {
                conn = None;
            }
        }
    }
}

fn connect(addr: &str) -> Option<TcpStream> {
    let resolved: Vec<SocketAddr> = addr.to_socket_addrs().ok()?.collect();
    for candidate in resolved {
        if let Ok(stream) = TcpStream::connect_timeout(&candidate, CONNECT_TIMEOUT) {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
            return Some(stream);
        }
    }
    None
}

impl ClusterStatusSource for ClusterRuntime {
    fn partitions(&self) -> Vec<PartitionStatus> {
        self.node.lock().expect("cluster node lock").status()
    }

    fn is_primary_for(&self, user: &str) -> bool {
        let node = self.node.lock().expect("cluster node lock");
        let partition = node.partition_of(user);
        node.role(partition) == Some(Role::Primary)
    }

    fn live_engine(&self) -> Option<Arc<Oak>> {
        self.node
            .lock()
            .expect("cluster node lock")
            .replica_engine(GROUP)
    }

    fn leads_maintenance(&self) -> bool {
        self.node.lock().expect("cluster node lock").role(GROUP) == Some(Role::Primary)
    }

    /// Blocks the ingest handler until the replication watermark covers
    /// `seq`. The wait parks on a condvar the ticker and reader threads
    /// signal after running the state machine — the check and the park
    /// are atomic under the node lock, so an advance can never slip
    /// between them. The healthy-path wait is one shipping round trip
    /// (~one [`TICK_MS`]); a majority-less primary times out after
    /// [`COMMIT_WAIT_MS`] and the 204 is withheld.
    fn wait_for_commit(&self, user: &str, seq: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(COMMIT_WAIT_MS);
        let mut node = self.node.lock().expect("cluster node lock");
        loop {
            let partition = node.partition_of(user);
            if node.commit(partition).unwrap_or(0) >= seq {
                return true;
            }
            // Deposed mid-wait: this node can no longer advance the
            // watermark itself, and its unreplicated tail is about
            // to be discarded — fail fast so the client retries
            // against the new primary.
            if node.role(partition) != Some(Role::Primary) {
                return false;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            node = self
                .commits
                .wait_timeout(node, deadline - now)
                .expect("cluster node lock")
                .0;
        }
    }
}

impl std::fmt::Debug for ClusterRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRuntime")
            .field("me", &self.me)
            .field("peers", &self.peers)
            .finish_non_exhaustive()
    }
}
