//! The live TCP cluster runtime behind `oak-serve --cluster`.
//!
//! Wires one [`oak_cluster::ClusterNode`] to real sockets and the real
//! filesystem: the same protocol the simulator proves lossless
//! (`oak-sim --cluster`), with `SimNet` swapped for TCP and `SimFs` for
//! [`oak_store::RealFs`]. Envelopes travel as the CRC-framed JSON of
//! [`oak_cluster::Envelope::encode`] — the exact frames the sim codec
//! round-trips — so a corrupt or truncated frame drops the connection
//! instead of being applied.
//!
//! The live topology is one replication group: every peer replicates
//! every partition (`replication = peers`), which makes the daemon a
//! primary/standby HA pair (or triple) — the N-way partitioned layout,
//! elections under partitions, and the loss oracles are exercised in
//! `oak-sim`, which runs this same [`ClusterNode`] state machine.
//!
//! Threads:
//! - a **ticker** advances the lease/shipping state machine every
//!   [`TICK_MS`] and flushes outbound envelopes,
//! - an **acceptor** takes peer connections on this node's `--peers`
//!   entry; each connection gets a reader thread that decodes frames
//!   and feeds [`ClusterNode::handle`].
//!
//! Loss is fine everywhere: an unreachable peer just drops envelopes,
//! exactly like a cut `SimNet` link, and the lease protocol rides it
//! out. Outbound sends reuse one connection per peer and reconnect
//! (with a short timeout) when it breaks.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use oak_cluster::{ClusterNode, Envelope, NodeId, NodeOptions, PartitionStatus, Role, Topology};
use oak_core::engine::{Oak, OakConfig};
use oak_store::{OakStore, RealFs, StoreOptions};

use crate::service::ClusterStatusSource;

/// Wall-clock cadence of the lease/shipping tick, matching the sim's
/// cluster world.
const TICK_MS: u64 = 20;

/// How long an outbound reconnect may block the ticker. Short on
/// purpose: a dead peer must cost less than one heartbeat interval.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(40);

/// The single replication group the live runtime hosts (see module
/// docs): every user hashes here, every peer replicates it.
const GROUP: u32 = 0;

/// One live cluster member: the replicated node, its peer addresses,
/// and the outbound connection cache.
pub struct ClusterRuntime {
    node: Mutex<ClusterNode>,
    peers: Vec<String>,
    me: NodeId,
    conns: Mutex<Vec<Option<TcpStream>>>,
    /// Rules file to seed through the WAL once this node first holds
    /// the lease (never written directly into a follower replica).
    seed_rules: Mutex<Option<std::path::PathBuf>>,
    started: std::time::Instant,
}

impl ClusterRuntime {
    /// Boots node `role` of the `peers` replication group rooted at
    /// `root` and starts the ticker and acceptor threads. Fails fast if
    /// this node's own peer entry cannot be bound or the store cannot
    /// recover.
    pub fn start(
        role: u32,
        peers: Vec<String>,
        root: &Path,
        oak: OakConfig,
        store: StoreOptions,
    ) -> std::io::Result<Arc<ClusterRuntime>> {
        let me = NodeId(role);
        let nodes: Vec<NodeId> = (0..peers.len() as u32).map(NodeId).collect();
        let replication = peers.len();
        let topology = Topology::new(nodes, 1, replication);
        let options = NodeOptions {
            oak,
            store,
            ..NodeOptions::default()
        };
        let listener = TcpListener::bind(&peers[role as usize])?;
        let started = std::time::Instant::now();
        let node = ClusterNode::new(me, topology, Arc::new(RealFs), root, options, 0)?;
        let runtime = Arc::new(ClusterRuntime {
            node: Mutex::new(node),
            conns: Mutex::new((0..peers.len()).map(|_| None).collect()),
            peers,
            me,
            seed_rules: Mutex::new(None),
            started,
        });

        let acceptor = Arc::clone(&runtime);
        std::thread::Builder::new()
            .name("oak-cluster-accept".into())
            .spawn(move || acceptor.accept_loop(listener))?;
        let ticker = Arc::clone(&runtime);
        std::thread::Builder::new()
            .name("oak-cluster-tick".into())
            .spawn(move || ticker.tick_loop())?;
        Ok(runtime)
    }

    /// Defers `--rules` until this node first holds the lease, so the
    /// seed rules enter through the primary engine and ship to
    /// followers over the WAL like any other mutation.
    pub fn seed_rules_when_primary(&self, path: std::path::PathBuf) {
        *self.seed_rules.lock().expect("seed rules lock") = Some(path);
    }

    /// The durable store behind the replication group, for the ingest
    /// path's snapshot compaction.
    pub fn store(&self) -> Option<Arc<OakStore>> {
        self.node
            .lock()
            .expect("cluster node lock")
            .partition_store(GROUP)
    }

    /// The replica engine at boot (recovery report, rule counts).
    pub fn boot_engine(&self) -> Option<Arc<Oak>> {
        self.node
            .lock()
            .expect("cluster node lock")
            .replica_engine(GROUP)
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn tick_loop(self: Arc<Self>) {
        loop {
            std::thread::sleep(Duration::from_millis(TICK_MS));
            let now = self.now_ms();
            let out = {
                let mut node = self.node.lock().expect("cluster node lock");
                let out = node.tick(now);
                self.maybe_seed_rules(&node);
                out
            };
            self.send_all(out);
        }
    }

    /// Applies the deferred `--rules` file the first time this node is
    /// primary of a virgin group.
    fn maybe_seed_rules(&self, node: &ClusterNode) {
        let mut seed = self.seed_rules.lock().expect("seed rules lock");
        let Some(path) = seed.as_ref() else { return };
        let Ok(oak) = node.primary_engine(GROUP) else {
            return;
        };
        if oak.rules().count() == 0 {
            match crate::load_rules_into(&oak, path) {
                Ok(count) => eprintln!(
                    "oak-cluster: seeded {count} rule(s) from {} as primary",
                    path.display()
                ),
                Err(e) => eprintln!(
                    "oak-cluster: failed to seed --rules {}: {e}",
                    path.display()
                ),
            }
        } else {
            eprintln!(
                "oak-cluster: --rules {} skipped: replicated group already holds rules",
                path.display()
            );
        }
        *seed = None;
    }

    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            let reader = Arc::clone(&self);
            let spawned = std::thread::Builder::new()
                .name("oak-cluster-read".into())
                .spawn(move || reader.read_loop(stream));
            if spawned.is_err() {
                // Thread exhaustion: drop the connection, the peer
                // reconnects.
                continue;
            }
        }
    }

    /// Decodes envelopes off one inbound peer connection until it
    /// closes or sends a frame that fails the CRC.
    fn read_loop(&self, mut stream: TcpStream) {
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let n = match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => n,
            };
            buf.extend_from_slice(&chunk[..n]);
            let mut offset = 0;
            while let Some((envelope, next)) = Envelope::decode(&buf, offset) {
                offset = next;
                let now = self.now_ms();
                let replies = {
                    let mut node = self.node.lock().expect("cluster node lock");
                    node.handle(now, &envelope)
                };
                self.send_all(replies);
            }
            buf.drain(..offset);
            // A full frame should decode once its bytes are all here; a
            // buffer past any sane envelope size without one is a bad
            // peer — drop the connection rather than grow forever.
            if buf.len() > 64 << 20 {
                return;
            }
        }
    }

    /// Ships envelopes to their recipients, reusing cached connections
    /// and dropping whatever cannot be delivered (the protocol treats
    /// loss like a cut link).
    fn send_all(&self, envelopes: Vec<Envelope>) {
        for envelope in envelopes {
            let to = envelope.to.0 as usize;
            if to >= self.peers.len() || envelope.to == self.me {
                continue;
            }
            let bytes = envelope.encode();
            let mut conns = self.conns.lock().expect("cluster conn lock");
            let mut delivered = false;
            if let Some(stream) = conns[to].as_mut() {
                delivered = stream.write_all(&bytes).is_ok();
            }
            if !delivered {
                conns[to] = self.connect(&self.peers[to]);
                if let Some(stream) = conns[to].as_mut() {
                    delivered = stream.write_all(&bytes).is_ok();
                }
                if !delivered {
                    conns[to] = None;
                }
            }
        }
    }

    fn connect(&self, addr: &str) -> Option<TcpStream> {
        let resolved: Vec<SocketAddr> = addr.to_socket_addrs().ok()?.collect();
        for candidate in resolved {
            if let Ok(stream) = TcpStream::connect_timeout(&candidate, CONNECT_TIMEOUT) {
                let _ = stream.set_nodelay(true);
                return Some(stream);
            }
        }
        None
    }
}

impl ClusterStatusSource for ClusterRuntime {
    fn partitions(&self) -> Vec<PartitionStatus> {
        self.node.lock().expect("cluster node lock").status()
    }

    fn is_primary_for(&self, user: &str) -> bool {
        let node = self.node.lock().expect("cluster node lock");
        let partition = node.partition_of(user);
        node.role(partition) == Some(Role::Primary)
    }

    fn live_engine(&self) -> Option<Arc<Oak>> {
        self.node
            .lock()
            .expect("cluster node lock")
            .replica_engine(GROUP)
    }

    fn leads_maintenance(&self) -> bool {
        self.node.lock().expect("cluster node lock").role(GROUP) == Some(Role::Primary)
    }
}

impl std::fmt::Debug for ClusterRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRuntime")
            .field("me", &self.me)
            .field("peers", &self.peers)
            .finish_non_exhaustive()
    }
}
