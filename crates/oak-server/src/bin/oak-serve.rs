//! `oak-serve` — the Oak proxy as an operator command.
//!
//! Serves a document root through the Oak rewriting engine, exactly as
//! the paper deploys it: "a multi-threaded server … which serves a dual
//! purpose as both the web server and the Oak server platform" (§5).
//!
//! ```text
//! oak-serve --root ./site --rules ./site.oakrules [--port 8080]
//!           [--edge threads|epoll] [--edge-workers <n>]
//!           [--detector global|cohort]
//!           [--store ./oak-state] [--fsync always|never|<n>]
//!           [--cluster --peers <a:p,b:p,c:p> --role <n>]
//!           [--snapshot-every <events>] [--audit-retention <entries>]
//!           [--prune-idle-ms <ms>] [--prune-every <requests>]
//!           [--max-connections <n>] [--max-head-bytes <n>]
//!           [--max-body-bytes <n>] [--read-timeout-ms <ms>]
//!           [--write-timeout-ms <ms>] [--max-report-bytes <n>]
//!           [--report-rate <per-sec>] [--report-burst <n>]
//!           [--slow-ms <ms>] [--trace-ring <n>]
//! ```
//!
//! `--edge` selects the transport backend: `epoll` (the default on
//! unix) serves every connection from one non-blocking reactor thread
//! plus a small worker pool (see `oak_edge`), the right choice for
//! thousands of mostly-idle keep-alive clients; `--edge threads` is
//! the escape hatch that spends one blocking OS thread per connection.
//! Behavior over the wire is identical either way.
//!
//! `--cluster` replicates the engine across the `--peers` list (this
//! node is entry `--role`): the primary journals every mutation and
//! ships WAL frames to followers, a heartbeat/lease protocol elects a
//! new primary on node death, and followers refuse client traffic with
//! `503 Retry-After` until they hold the lease. Requires `--store`
//! (the replication journal lives there). See `oak_server::ClusterRuntime`
//! and the `oak-cluster` crate; `oak-sim --cluster` proves the same
//! protocol lossless under crashes and partitions.
//!
//! `--rules` takes the §4.1 spec format (see `oak_core::spec`), e.g.:
//!
//! ```text
//! (2, "<script src=\"http://s1.com/jquery.js\">",
//!     "<script src=\"http://s2.net/jquery.js\">", 0, *)
//! ```
//!
//! With `--store`, engine state (rules, activations, aggregates, audit
//! log) survives restarts: mutations are journaled to a write-ahead log
//! in the given directory and compacted into snapshots; on boot the
//! newest valid snapshot is loaded and the WAL tail replayed. When the
//! recovered engine already holds rules, `--rules` is skipped — the
//! journal, not the file, is authoritative after the first run.
//!
//! Clients POST performance reports to `/oak/report`; pages are
//! personalized per user via the `oak_uid` cookie.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use oak_core::detect::DetectorPolicy;
use oak_core::engine::OakConfig;
use oak_core::Instant;
use oak_edge::{AnyServer, Backend, EdgeConfig};
use oak_http::{ServerLimits, TransportStats};
use oak_server::{
    load_root, load_rules_into, AdmissionPolicy, ClusterRuntime, HealthState, OakService,
    OverloadController, OverloadPolicy, PrunePolicy, ServiceObs, METRICS_PATH, REPORT_PATH,
};
use oak_store::{FsyncPolicy, OakStore, StoreOptions};

/// `--cluster` settings: the peer list and this node's index in it.
struct ClusterConfig {
    peers: Vec<String>,
    role: u32,
}

struct Args {
    root: PathBuf,
    rules: Option<PathBuf>,
    port: u16,
    cluster: Option<ClusterConfig>,
    backend: Backend,
    edge: EdgeConfig,
    store: Option<PathBuf>,
    store_options: StoreOptions,
    detector: DetectorPolicy,
    audit_retention: Option<usize>,
    prune: Option<PrunePolicy>,
    limits: ServerLimits,
    admission: AdmissionPolicy,
    overload: Option<OverloadPolicy>,
    slow_ms: u64,
    trace_ring: usize,
}

const USAGE: &str = "usage: oak-serve --root <dir> [--rules <file>] [--port <n>] \
[--edge threads|epoll] [--edge-workers <n>] [--detector global|cohort] \
[--store <dir>] [--fsync always|never|<n>] [--snapshot-every <events>] \
[--cluster --peers <a:p,b:p,...> --role <n>] \
[--audit-retention <entries>] [--prune-idle-ms <ms>] [--prune-every <requests>] \
[--max-connections <n>] [--max-head-bytes <n>] [--max-body-bytes <n>] \
[--read-timeout-ms <ms>] [--write-timeout-ms <ms>] [--queue-deadline-ms <ms>] \
[--max-report-bytes <n>] [--report-rate <per-sec>] [--report-burst <n>] \
[--overload] [--brownout-queue <n>] [--shed-queue <n>] \
[--brownout-lag-us <us>] [--shed-lag-us <us>] \
[--brownout-occupancy <0..1>] [--shed-occupancy <0..1>] \
[--overload-cooldown <samples>] [--slow-ms <ms>] [--trace-ring <n>]

transport backend:
  --edge threads|epoll     epoll = one non-blocking reactor thread + a
                           small worker pool, for thousands of mostly-idle
                           keep-alive connections (default on unix);
                           threads = one blocking thread per connection
                           (the escape hatch, and the default elsewhere).
                           Protocol behavior is identical; /oak/stats and
                           /oak/health grow reactor gauges under epoll.
  --edge-workers <n>       handler threads for the epoll backend
                           (default 0 = size from available cores)

violator detection:
  --detector global|cohort global (the default) is the paper's per-report
                           MAD test; cohort additionally requires a
                           flagged server to deviate from what the
                           reporting client's device class historically
                           saw from it, so device-induced slowness (ad
                           chains on mobile CPUs) stops being blamed on
                           healthy servers. With the default, every
                           operator surface is byte-identical to builds
                           without the flag.

replication (requires --store; see the README cluster quickstart):
  --cluster                replicate the engine across --peers: WAL
                           shipping, heartbeat/lease failover, and
                           503+Retry-After from followers
  --peers <a:p,b:p,...>    every node's replication address, in node-id
                           order (this node binds its own entry)
  --role <n>               this node's index into --peers

transport limits (served with 503/431/413/408 when exceeded):
  --max-connections <n>    concurrent connections before 503 (default 1024)
  --max-head-bytes <n>     request-head cap before 431 (default 65536)
  --max-body-bytes <n>     request-body cap before 413 (default 16 MiB)
  --read-timeout-ms <ms>   per-request read budget before 408 (default 10000)
  --write-timeout-ms <ms>  socket write timeout (default 10000)
  --queue-deadline-ms <ms> drop epoll-queued requests older than this with
                           503 + Retry-After (CoDel-at-dequeue; 0 = off,
                           the default; health probes are never dropped)

report admission (at /oak/report):
  --max-report-bytes <n>   report-body cap before 413 (default 1 MiB)
  --report-rate <per-sec>  sustained reports/s per user; 0 = unlimited (default)
  --report-burst <n>       burst allowance above the sustained rate (default 10)

overload control (the brownout/shed state machine; see DESIGN.md §15):
  --overload               arm the controller: Brownout serves pages
                           unrewritten and throttles background work,
                           Shedding refuses by priority class with
                           503 + Retry-After (pages first, scrapes next,
                           report ingest last, /oak/health never)
  --brownout-queue <n>     worker-queue depth entering Brownout (default 16)
  --shed-queue <n>         worker-queue depth entering Shedding (default 64)
  --brownout-lag-us <us>   reactor loop lag entering Brownout (default 20000)
  --shed-lag-us <us>       reactor loop lag entering Shedding (default 100000)
  --brownout-occupancy <f> connection-permit occupancy entering Brownout
                           (fraction of --max-connections, default 0.8)
  --shed-occupancy <f>     permit occupancy entering Shedding (default 0.95)
  --overload-cooldown <n>  consecutive calm samples before stepping one
                           state back down (default 5)
                           (any --brownout-*/--shed-* flag implies --overload)

observability (scrape /oak/metrics, traces at /oak/trace/recent):
  --slow-ms <ms>           log traces slower than this (default 500)
  --trace-ring <n>         completed traces kept for /oak/trace/recent (default 256)";

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut rules = None;
    let mut port = 8080u16;
    // Epoll by default where it exists (ROADMAP item 1 follow-on; the
    // nightly sweeps have been green); --edge threads is the escape
    // hatch.
    let mut backend = if cfg!(unix) {
        Backend::Epoll
    } else {
        Backend::Threads
    };
    let mut cluster = false;
    let mut peers: Vec<String> = Vec::new();
    let mut role = 0u32;
    let mut edge = EdgeConfig::default();
    let mut store = None;
    let mut store_options = StoreOptions::default();
    let mut detector = DetectorPolicy::default();
    let mut audit_retention = None;
    let mut prune_idle_ms = None;
    let mut prune_every = 1024u64;
    let mut limits = ServerLimits::default();
    let mut admission = AdmissionPolicy::default();
    let mut overload = false;
    let mut overload_policy = OverloadPolicy::default();
    let mut slow_ms = 500u64;
    let mut trace_ring = 256usize;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let number = |name: &str, raw: String| {
            raw.parse::<u64>()
                .map_err(|_| format!("{name} requires a number"))
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--rules" => rules = Some(PathBuf::from(value("--rules")?)),
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|_| "--port requires a number".to_owned())?;
            }
            "--edge" => {
                let raw = value("--edge")?;
                backend = Backend::parse(&raw)
                    .ok_or_else(|| format!("--edge must be threads or epoll, got {raw:?}"))?;
            }
            "--edge-workers" => {
                edge.workers = number("--edge-workers", value("--edge-workers")?)? as usize;
            }
            "--cluster" => cluster = true,
            "--peers" => {
                peers = value("--peers")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--role" => role = number("--role", value("--role")?)? as u32,
            "--detector" => {
                let raw = value("--detector")?;
                detector = DetectorPolicy::parse(&raw)
                    .ok_or_else(|| format!("--detector must be global or cohort, got {raw:?}"))?;
            }
            "--store" => store = Some(PathBuf::from(value("--store")?)),
            "--fsync" => {
                store_options.fsync = match value("--fsync")?.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    n => FsyncPolicy::EveryN(number("--fsync", n.to_owned())?.max(1)),
                };
            }
            "--snapshot-every" => {
                store_options.snapshot_every_events =
                    number("--snapshot-every", value("--snapshot-every")?)?.max(1);
            }
            "--audit-retention" => {
                audit_retention =
                    Some(number("--audit-retention", value("--audit-retention")?)? as usize);
            }
            "--prune-idle-ms" => {
                prune_idle_ms = Some(number("--prune-idle-ms", value("--prune-idle-ms")?)?);
            }
            "--prune-every" => {
                prune_every = number("--prune-every", value("--prune-every")?)?.max(1);
            }
            "--max-connections" => {
                limits.max_connections =
                    number("--max-connections", value("--max-connections")?)?.max(1) as usize;
            }
            "--max-head-bytes" => {
                limits.max_head_bytes =
                    number("--max-head-bytes", value("--max-head-bytes")?)?.max(1) as usize;
            }
            "--max-body-bytes" => {
                limits.max_body_bytes =
                    number("--max-body-bytes", value("--max-body-bytes")?)? as usize;
            }
            "--read-timeout-ms" => {
                limits.read_timeout = Duration::from_millis(
                    number("--read-timeout-ms", value("--read-timeout-ms")?)?.max(1),
                );
            }
            "--write-timeout-ms" => {
                limits.write_timeout = Duration::from_millis(
                    number("--write-timeout-ms", value("--write-timeout-ms")?)?.max(1),
                );
            }
            "--queue-deadline-ms" => {
                limits.queue_deadline = Duration::from_millis(number(
                    "--queue-deadline-ms",
                    value("--queue-deadline-ms")?,
                )?);
            }
            "--overload" => overload = true,
            "--brownout-queue" => {
                overload_policy.queue_brownout =
                    number("--brownout-queue", value("--brownout-queue")?)?;
                overload = true;
            }
            "--shed-queue" => {
                overload_policy.queue_shed = number("--shed-queue", value("--shed-queue")?)?;
                overload = true;
            }
            "--brownout-lag-us" => {
                overload_policy.lag_brownout_us =
                    number("--brownout-lag-us", value("--brownout-lag-us")?)?;
                overload = true;
            }
            "--shed-lag-us" => {
                overload_policy.lag_shed_us = number("--shed-lag-us", value("--shed-lag-us")?)?;
                overload = true;
            }
            "--brownout-occupancy" => {
                overload_policy.permit_brownout = value("--brownout-occupancy")?
                    .parse::<f64>()
                    .ok()
                    .filter(|f| f.is_finite() && (0.0..=1.0).contains(f))
                    .ok_or("--brownout-occupancy requires a fraction in 0..=1")?;
                overload = true;
            }
            "--shed-occupancy" => {
                overload_policy.permit_shed = value("--shed-occupancy")?
                    .parse::<f64>()
                    .ok()
                    .filter(|f| f.is_finite() && (0.0..=1.0).contains(f))
                    .ok_or("--shed-occupancy requires a fraction in 0..=1")?;
                overload = true;
            }
            "--overload-cooldown" => {
                overload_policy.cooldown_samples =
                    number("--overload-cooldown", value("--overload-cooldown")?)?.max(1) as u32;
                overload = true;
            }
            "--max-report-bytes" => {
                admission.max_report_bytes =
                    number("--max-report-bytes", value("--max-report-bytes")?)? as usize;
            }
            "--report-rate" => {
                admission.report_rate = value("--report-rate")?
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r >= 0.0)
                    .ok_or("--report-rate requires a non-negative number")?;
            }
            "--report-burst" => {
                admission.report_burst = value("--report-burst")?
                    .parse::<f64>()
                    .ok()
                    .filter(|b| b.is_finite() && *b >= 1.0)
                    .ok_or("--report-burst requires a number >= 1")?;
            }
            "--slow-ms" => slow_ms = number("--slow-ms", value("--slow-ms")?)?,
            "--trace-ring" => {
                trace_ring = number("--trace-ring", value("--trace-ring")?)?.max(1) as usize;
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    let cluster = if cluster {
        if peers.len() < 2 {
            return Err("--cluster requires --peers with at least two addresses".into());
        }
        if role as usize >= peers.len() {
            return Err(format!(
                "--role {role} is out of range for {} peer(s)",
                peers.len()
            ));
        }
        if store.is_none() {
            return Err("--cluster requires --store (the replication journal lives there)".into());
        }
        Some(ClusterConfig { peers, role })
    } else {
        if !peers.is_empty() {
            return Err("--peers requires --cluster".into());
        }
        None
    };
    Ok(Args {
        root: root.ok_or("--root is required (try --help)")?,
        rules,
        port,
        cluster,
        backend,
        edge,
        store,
        store_options,
        detector,
        audit_retention,
        prune: prune_idle_ms.map(|idle_ms| PrunePolicy {
            idle_ms,
            every_requests: prune_every,
        }),
        limits,
        admission,
        overload: overload.then(|| {
            // The permit signal normalizes against the real connection
            // cap, whatever --max-connections chose.
            overload_policy.max_connections = limits.max_connections as u64;
            overload_policy
        }),
        slow_ms,
        trace_ring,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let store = match load_root(&args.root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to load --root {}: {e}", args.root.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {} page(s) from {}",
        store.page_count(),
        args.root.display()
    );

    let config = OakConfig {
        log_retention: args.audit_retention,
        detector_policy: args.detector,
        ..OakConfig::default()
    };
    if args.detector != DetectorPolicy::default() {
        eprintln!("violator detection policy: {}", args.detector.as_str());
    }

    // --cluster: the replication runtime owns the store directory and
    // the engine; the service resolves the live replica per request via
    // its ClusterStatusSource, so the engine built below is only the
    // single-node fallback.
    let cluster_runtime = match &args.cluster {
        Some(cfg) => {
            let dir = args.store.as_ref().expect("validated in parse_args");
            match ClusterRuntime::start(
                cfg.role,
                cfg.peers.clone(),
                dir,
                config,
                args.store_options,
            ) {
                Ok(runtime) => {
                    if let Some(engine) = runtime.boot_engine() {
                        eprintln!(
                            "cluster node {} of {}: recovered {} rule(s), {} user(s) from {}",
                            cfg.role,
                            cfg.peers.len(),
                            engine.rules().count(),
                            engine.user_count(),
                            dir.display(),
                        );
                    }
                    if let Some(path) = &args.rules {
                        // Seeding a follower replica directly would
                        // diverge it; the runtime applies the file once
                        // this node first holds the lease, so the rules
                        // ship through the WAL like any mutation.
                        eprintln!(
                            "--rules {} deferred until this node holds the primary lease",
                            path.display()
                        );
                        runtime.seed_rules_when_primary(path.clone());
                    }
                    Some(runtime)
                }
                Err(e) => {
                    eprintln!("failed to start the cluster runtime: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    // With --store, the journal is the source of truth: recover first,
    // then only seed rules from --rules on a virgin store.
    let (oak, durable) = if let Some(runtime) = &cluster_runtime {
        (oak_core::engine::Oak::new(config), runtime.store())
    } else {
        match &args.store {
            Some(dir) => match OakStore::boot(dir, config, args.store_options) {
                Ok(boot) => {
                    eprintln!(
                        "recovered {} rule(s), {} user(s) from {} ({} event(s) replayed{}{})",
                        boot.oak.rules().count(),
                        boot.oak.user_count(),
                        dir.display(),
                        boot.events_replayed,
                        if boot.snapshot_loaded {
                            ", snapshot loaded"
                        } else {
                            ""
                        },
                        if boot.torn_segments > 0 {
                            ", torn WAL tail truncated"
                        } else {
                            ""
                        },
                    );
                    (boot.oak, Some(boot.store))
                }
                Err(e) => {
                    eprintln!("failed to open --store {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
            },
            None => (oak_core::engine::Oak::new(config), None),
        }
    };

    // In cluster mode --rules was handed to the runtime above; seeding
    // the fallback engine here would bypass replication.
    if args.cluster.is_none() {
        match &args.rules {
            Some(path) if oak.rules().count() == 0 => match load_rules_into(&oak, path) {
                Ok(count) => eprintln!("loaded {count} rule(s) from {}", path.display()),
                Err(e) => {
                    eprintln!("failed to load --rules {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            },
            Some(path) => eprintln!(
                "--rules {} skipped: recovered store already holds rules",
                path.display()
            ),
            None if durable.is_none() => {
                eprintln!("no --rules given: serving without rewriting (reports still ingested)");
            }
            None => {}
        }
    }

    let t0 = std::time::Instant::now();
    let transport_stats = Arc::new(TransportStats::default());
    // One observability bundle spans the whole stack: the engine gets
    // its handles via with_obs, the WAL via set_obs, the transport via
    // start_with_obs, and /oak/metrics scrapes them all.
    let obs = ServiceObs::wall(args.trace_ring, args.slow_ms);
    // Health starts at Booting so a probe racing the listener bind gets
    // 503, not 200; the flip to Serving happens after the bind succeeds.
    let mut service = OakService::new(oak, store)
        .with_health(HealthState::Booting)
        .with_clock(move || Instant(t0.elapsed().as_millis() as u64))
        .with_admission(args.admission)
        .with_transport_stats(Arc::clone(&transport_stats))
        .with_obs(Arc::clone(&obs));
    if let Some(store) = durable {
        store.set_obs(Arc::clone(&obs.store));
        service = service.with_durability(store);
    }
    if let Some(policy) = args.prune {
        eprintln!(
            "pruning users idle > {} ms (sweep every {} requests)",
            policy.idle_ms, policy.every_requests
        );
        service = service.with_pruning(policy);
    }
    if let Some(policy) = args.overload {
        eprintln!(
            "overload control armed: brownout at queue {} / lag {} us / occupancy {:.2}, \
shedding at queue {} / lag {} us / occupancy {:.2} (cooldown {} samples)",
            policy.queue_brownout,
            policy.lag_brownout_us,
            policy.permit_brownout,
            policy.queue_shed,
            policy.lag_shed_us,
            policy.permit_shed,
            policy.cooldown_samples,
        );
        service = service.with_overload(OverloadController::new(policy));
    }
    let service = service.into_shared();
    service.set_edge_backend(args.backend);

    let handler: Arc<dyn oak_http::Handler> = service.clone();
    let server = match AnyServer::start_with_config(
        args.backend,
        args.port,
        handler,
        args.limits,
        transport_stats,
        Some(Arc::clone(&obs.http)),
        args.edge,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind port {}: {e}", args.port);
            return ExitCode::FAILURE;
        }
    };
    // The reactor owns its gauges; hand them to the service so the
    // operator endpoints can render them.
    if let Some(edge_stats) = server.edge_stats() {
        service.set_edge_stats(edge_stats);
    }
    if let Some(runtime) = cluster_runtime {
        let cfg = args.cluster.as_ref().expect("runtime implies config");
        eprintln!(
            "cluster node {} replicating with peers on {} ({} member(s); \
non-primaries answer 503 + Retry-After)",
            cfg.role,
            cfg.peers[cfg.role as usize],
            cfg.peers.len(),
        );
        service.set_cluster_status(runtime);
    }
    service.set_health(HealthState::Serving);
    eprintln!(
        "oak-serve listening on http://{} ({} backend; reports at {REPORT_PATH}, \
metrics at {METRICS_PATH}); ctrl-c to stop",
        server.addr(),
        server.backend(),
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
