//! `oak-serve` — the Oak proxy as an operator command.
//!
//! Serves a document root through the Oak rewriting engine, exactly as
//! the paper deploys it: "a multi-threaded server … which serves a dual
//! purpose as both the web server and the Oak server platform" (§5).
//!
//! ```text
//! oak-serve --root ./site --rules ./site.oakrules [--port 8080]
//! ```
//!
//! `--rules` takes the §4.1 spec format (see `oak_core::spec`), e.g.:
//!
//! ```text
//! (2, "<script src=\"http://s1.com/jquery.js\">",
//!     "<script src=\"http://s2.net/jquery.js\">", 0, *)
//! ```
//!
//! Clients POST performance reports to `/oak/report`; pages are
//! personalized per user via the `oak_uid` cookie.

use std::path::PathBuf;
use std::process::ExitCode;

use oak_core::engine::OakConfig;
use oak_core::Instant;
use oak_http::TcpServer;
use oak_server::{load_root, load_rules, OakService, REPORT_PATH};

struct Args {
    root: PathBuf,
    rules: Option<PathBuf>,
    port: u16,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut rules = None;
    let mut port = 8080u16;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--rules" => rules = Some(PathBuf::from(value("--rules")?)),
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|_| "--port requires a number".to_owned())?;
            }
            "--help" | "-h" => {
                return Err("usage: oak-serve --root <dir> [--rules <file>] [--port <n>]".into())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(Args {
        root: root.ok_or("--root is required (try --help)")?,
        rules,
        port,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let store = match load_root(&args.root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to load --root {}: {e}", args.root.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {} page(s) from {}",
        store.page_count(),
        args.root.display()
    );

    let oak = match &args.rules {
        Some(path) => match load_rules(path, OakConfig::default()) {
            Ok(oak) => {
                eprintln!(
                    "loaded {} rule(s) from {}",
                    oak.rules().count(),
                    path.display()
                );
                oak
            }
            Err(e) => {
                eprintln!("failed to load --rules {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => {
            eprintln!("no --rules given: serving without rewriting (reports still ingested)");
            oak_core::engine::Oak::new(OakConfig::default())
        }
    };

    let t0 = std::time::Instant::now();
    let service = OakService::new(oak, store)
        .with_clock(move || Instant(t0.elapsed().as_millis() as u64))
        .into_shared();

    let server = match TcpServer::start(args.port, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind port {}: {e}", args.port);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "oak-serve listening on http://{} (reports at {REPORT_PATH}); ctrl-c to stop",
        server.addr()
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
