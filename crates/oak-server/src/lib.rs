//! The Oak server daemon.
//!
//! "The server operates side-by-side a site's web server, modifying
//! outgoing pages according to decisions made based on client reported
//! performance and a set of operator-determined actions" (§4). The
//! paper's implementation "serves a dual purpose as both the web server
//! and the Oak server platform" (§5) — so does this one:
//!
//! - [`SiteStore`]: the in-memory document root (pages and static
//!   objects),
//! - [`OakService`]: an [`oak_http::Handler`] that serves pages through
//!   [`oak_core::engine::Oak::modify_page`], hands out identifying
//!   cookies, ingests `POST /oak/report` bodies, and attaches the
//!   `X-Oak-Alternate` cache hint,
//! - over real TCP via [`oak_http::TcpServer`] (see
//!   `examples/live_proxy.rs`) or invoked directly in tests and
//!   experiments.
//!
//! # Examples
//!
//! ```
//! use oak_core::engine::{Oak, OakConfig};
//! use oak_http::{Method, Request};
//! use oak_server::{OakService, SiteStore};
//!
//! let mut store = SiteStore::new();
//! store.add_page("/index.html", "<html><body>hi</body></html>");
//! let service = OakService::new(Oak::new(OakConfig::default()), store);
//!
//! let response = oak_http::Handler::handle(&service, &Request::new(Method::Get, "/index.html"));
//! assert!(response.status.is_success());
//! assert!(response.header("set-cookie").is_some(), "first visit gets a cookie");
//! ```

mod cluster;
mod fileroot;
mod obs;
mod overload;
mod service;
mod store;

pub use cluster::ClusterRuntime;
pub use fileroot::{content_type_for, load_root, load_rules, load_rules_into};
pub use obs::ServiceObs;
pub use overload::{
    OverloadController, OverloadPolicy, OverloadSnapshot, OverloadState, PressureSample,
    RequestClass,
};
pub use service::{
    AdmissionPolicy, ClusterStatusSource, HealthState, OakService, PrunePolicy, ServiceStats,
};
pub use store::SiteStore;

/// The endpoint clients POST performance reports to.
pub const REPORT_PATH: &str = "/oak/report";

/// Operator endpoint rendering the §6 offline audit as text.
pub const AUDIT_PATH: &str = "/oak/audit";

/// Operator endpoint serving service counters and aggregate site
/// performance (§5) as JSON.
pub const STATS_PATH: &str = "/oak/stats";

/// Load-balancer endpoint reporting the node's lifecycle state
/// ([`HealthState`]); 503 until recovery completes, 200 while serving.
pub const HEALTH_PATH: &str = "/oak/health";

/// Scrape endpoint serving every metric family in Prometheus text
/// exposition format v0.0.4 (404 unless [`OakService::with_obs`] is
/// attached).
pub const METRICS_PATH: &str = "/oak/metrics";

/// Operator endpoint serving the tracer's ring of recently completed
/// request traces as JSON, oldest first (404 without observability).
pub const TRACE_PATH: &str = "/oak/trace/recent";

#[cfg(test)]
mod tests;
