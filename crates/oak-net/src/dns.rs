//! Simulated DNS.
//!
//! Two mappings matter to Oak (§4.2): several domains can resolve to the
//! same IP (CDN co-hosting — Oak must group them), and one domain can
//! resolve to several IPs (anycast/load-balancing — different clients can
//! land on different servers). Both are supported here.

use std::collections::BTreeMap;

use crate::addr::{ClientId, IpAddr};
use crate::rng::{hash_str, StatelessRng};

/// The domain-name table for a [`crate::World`].
#[derive(Clone, Debug, Default)]
pub struct Dns {
    records: BTreeMap<String, Vec<IpAddr>>,
}

impl Dns {
    /// Creates an empty table.
    pub fn new() -> Dns {
        Dns::default()
    }

    /// Adds an A record. A domain may accumulate multiple addresses.
    pub fn add_record(&mut self, domain: impl Into<String>, ip: IpAddr) {
        let entry = self.records.entry(domain.into()).or_default();
        if !entry.contains(&ip) {
            entry.push(ip);
        }
    }

    /// Resolves `domain` for a particular client.
    ///
    /// Multi-IP domains pin each client to one address by hashing
    /// (seed, domain, client), modeling resolver affinity: the same client
    /// keeps hitting the same replica across page loads, which is what lets
    /// per-client violator history converge (§4.2.3).
    pub fn resolve(&self, seed: u64, domain: &str, client: ClientId) -> Option<IpAddr> {
        let ips = self.records.get(domain)?;
        match ips.len() {
            0 => None,
            1 => Some(ips[0]),
            n => {
                let mut rng =
                    StatelessRng::keyed(seed, &[hash_str(domain), u64::from(client.0), 0xd5]);
                Some(ips[rng.below(n as u64) as usize])
            }
        }
    }

    /// All addresses on record for `domain`.
    pub fn addresses(&self, domain: &str) -> &[IpAddr] {
        self.records.get(domain).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All domains that resolve (for any client) to `ip` — the reverse
    /// view Oak keeps when it groups objects by IP while "keeping track of
    /// all related domain names".
    pub fn domains_for(&self, ip: IpAddr) -> Vec<&str> {
        self.records
            .iter()
            .filter(|(_, ips)| ips.contains(&ip))
            .map(|(d, _)| d.as_str())
            .collect()
    }

    /// Number of domains on record.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over `(domain, addresses)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[IpAddr])> {
        self.records
            .iter()
            .map(|(d, ips)| (d.as_str(), ips.as_slice()))
    }
}
