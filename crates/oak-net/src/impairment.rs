//! Network and server impairments.
//!
//! Fig. 3 of the paper splits observed outliers into two populations:
//! ~52 % vanish within a day (transient congestion) while the rest recur
//! essentially unchanged after five days (persistent misconfiguration,
//! chronically distant replicas, overloaded providers). The model
//! expresses both, plus the operator-injected response delay used in the
//! sensitivity experiment (Fig. 9).

use crate::addr::ServerId;
use crate::geo::Region;
use crate::time::SimTime;

/// What an impairment does while active.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ImpairmentKind {
    /// Short-lived congestion at the server: multiplies processing delay
    /// and divides available bandwidth while the window is open.
    TransientCongestion {
        /// Multiplier applied to latency-side costs (≥ 1).
        severity: f64,
    },
    /// A chronic bad path between this server and clients in one region —
    /// e.g. a provider with no presence near those users, or a broken
    /// peering. Latency-side costs multiply and throughput divides for
    /// affected clients only; other clients see the server as healthy,
    /// which is exactly the "hidden from site operators" scenario Oak
    /// targets (§1).
    RegionalPathDegradation {
        /// The client region that suffers.
        region: Region,
        /// Multiplier applied to latency-side costs (≥ 1).
        severity: f64,
    },
    /// A chronically overloaded or under-provisioned server: everyone sees
    /// it slow, all the time.
    ChronicOverload {
        /// Multiplier applied to latency-side costs (≥ 1).
        severity: f64,
    },
    /// Fixed extra delay before the server responds, in milliseconds —
    /// the injected-delay knob from the Fig. 9 sensitivity experiment.
    InjectedDelay {
        /// Milliseconds added to every response.
        millis: f64,
    },
}

/// An impairment bound to a server, optionally limited to a time window.
#[derive(Clone, Debug, PartialEq)]
pub struct Impairment {
    /// The affected server.
    pub server: ServerId,
    /// The effect.
    pub kind: ImpairmentKind,
    /// Active window `[start, end)`; `None` means always active.
    pub window: Option<(SimTime, SimTime)>,
}

impl Impairment {
    /// True if the impairment is in effect at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => start <= t && t < end,
        }
    }

    /// The latency multiplier this impairment applies for a client in
    /// `client_region` at time `t` (1.0 when inactive or not applicable).
    pub fn latency_factor(&self, t: SimTime, client_region: Region) -> f64 {
        if !self.active_at(t) {
            return 1.0;
        }
        match self.kind {
            ImpairmentKind::TransientCongestion { severity } => severity,
            ImpairmentKind::RegionalPathDegradation { region, severity } => {
                if region == client_region {
                    severity
                } else {
                    1.0
                }
            }
            ImpairmentKind::ChronicOverload { severity } => severity,
            ImpairmentKind::InjectedDelay { .. } => 1.0,
        }
    }

    /// Fixed extra milliseconds this impairment adds at `t`.
    pub fn extra_delay_ms(&self, t: SimTime) -> f64 {
        if !self.active_at(t) {
            return 0.0;
        }
        match self.kind {
            ImpairmentKind::InjectedDelay { millis } => millis,
            _ => 0.0,
        }
    }
}
