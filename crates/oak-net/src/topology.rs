//! Servers, clients, and the world they live in.

use crate::addr::{ClientId, IpAddr, ServerId};
use crate::dns::Dns;
use crate::geo::Region;
use crate::impairment::{Impairment, ImpairmentKind};
use crate::rng::StatelessRng;
use crate::time::SimTime;

/// How well-run a server is. Quality sets the *baseline*; impairments are
/// layered on top.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quality {
    /// Well-provisioned: low processing delay, high bandwidth, small
    /// diurnal swing. Think major CDN edge.
    Good,
    /// Adequate but visibly loaded at peak: moderate delay and bandwidth.
    Mediocre,
    /// Under-provisioned: high delay, low bandwidth, large diurnal swing.
    /// Think a third-party ad/analytics box — the population dominating
    /// the paper's Table 1 outliers.
    Poor,
}

impl Quality {
    /// (base processing ms, bandwidth kbps, diurnal amplitude).
    fn parameters(self) -> (f64, f64, f64) {
        match self {
            Quality::Good => (15.0, 80_000.0, 0.15),
            Quality::Mediocre => (24.0, 40_000.0, 0.30),
            Quality::Poor => (120.0, 6_000.0, 0.9),
        }
    }
}

/// A simulated server.
#[derive(Clone, Debug)]
pub struct Server {
    /// Identifier within the world.
    pub id: ServerId,
    /// Canonical hostname (further domains may alias to the same IP via
    /// [`Dns`] records).
    pub hostname: String,
    /// The server's address.
    pub ip: IpAddr,
    /// Where the server is.
    pub region: Region,
    /// Baseline quality tier.
    pub quality: Quality,
    /// Base per-request processing time, ms.
    pub processing_ms: f64,
    /// Egress bandwidth available to one client, kbit/s.
    pub bandwidth_kbps: f64,
    /// Amplitude of the diurnal load swing (0 = flat).
    pub diurnal_amplitude: f64,
    /// True for CDN-style providers with edges everywhere: clients reach
    /// them at intra-region RTTs regardless of `region` (which remains
    /// the operational home for diurnal load). Single-homed providers
    /// (`false`) are reached across the real geographic distance — the
    /// population that produces the paper's regional outliers (Table 3's
    /// "resources for Chinese travel site qunar.com perform poorly only
    /// for clients outside of China").
    pub distributed: bool,
    /// True for experiment-owned mirrors with provisioned, well-peered
    /// paths: the stable per-(client, server) path-affinity factor is
    /// skipped. The paper's three replica servers are dedicated hosts
    /// serving only the experiment (§5.3); production third parties keep
    /// their pot-luck peering.
    pub affinity_neutral: bool,
}

impl Server {
    /// Load factor at time `t` from local-time-of-day demand: 1.0 at night,
    /// up to `1 + amplitude` in the local mid-day/evening peak. This is the
    /// mechanism behind Fig. 11, where "as the default providers became
    /// busy during the day, Oak was able to significantly improve the total
    /// page load time".
    pub fn diurnal_load(&self, t: SimTime) -> f64 {
        let local_hour = (t.hour_of_day_utc() + self.region.utc_offset_hours()).rem_euclid(24.0);
        // Demand curve peaking at 14:00 local, trough at 02:00.
        let phase = (local_hour - 14.0) / 24.0 * std::f64::consts::TAU;
        let demand = 0.5 * (1.0 + phase.cos());
        1.0 + self.diurnal_amplitude * demand
    }
}

/// A simulated client (vantage point).
#[derive(Clone, Debug)]
pub struct Client {
    /// Identifier within the world.
    pub id: ClientId,
    /// Where the client is.
    pub region: Region,
    /// Access-link bandwidth, kbit/s.
    pub access_kbps: f64,
    /// Last-mile latency added to every RTT, ms.
    pub last_mile_ms: f64,
    /// The client's own address (for subnet-scoped policies).
    pub ip: IpAddr,
}

/// The complete simulated network: servers, clients, DNS, impairments.
///
/// `World` is immutable after [`WorldBuilder::build`] apart from
/// [`World::add_impairment`] / [`World::inject_delay`], which experiments
/// use to perturb a running scenario (Fig. 9 injects delays between loads).
#[derive(Clone, Debug)]
pub struct World {
    pub(crate) seed: u64,
    pub(crate) servers: Vec<Server>,
    pub(crate) clients: Vec<Client>,
    /// The DNS table (public: experiments add alias records directly).
    pub dns: Dns,
    /// Impairments indexed by server: the corpus installs thousands of
    /// congestion windows and `fetch` consults them on every object, so
    /// the per-fetch lookup must not scan the global list.
    pub(crate) impairments: std::collections::HashMap<ServerId, Vec<Impairment>>,
}

impl World {
    /// The seed this world was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// All clients.
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Looks up a server.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this world.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.0 as usize]
    }

    /// Looks up a client.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this world.
    pub fn client(&self, id: ClientId) -> &Client {
        &self.clients[id.0 as usize]
    }

    /// The address of a server.
    pub fn ip_of(&self, id: ServerId) -> IpAddr {
        self.server(id).ip
    }

    /// The server listening on `ip`, if any.
    pub fn server_at(&self, ip: IpAddr) -> Option<&Server> {
        self.servers.iter().find(|s| s.ip == ip)
    }

    /// Resolves a domain for a client (see [`Dns::resolve`]).
    pub fn resolve(&self, domain: &str, client: ClientId) -> Option<IpAddr> {
        self.dns.resolve(self.seed, domain, client)
    }

    /// Adds an impairment to the world.
    pub fn add_impairment(&mut self, impairment: Impairment) {
        self.impairments
            .entry(impairment.server)
            .or_default()
            .push(impairment);
    }

    /// Convenience: inject a fixed response delay at `server` (Fig. 9).
    /// Undo with [`World::remove_injected_delays`].
    pub fn inject_delay(&mut self, server: ServerId, millis: f64) {
        self.add_impairment(Impairment {
            server,
            kind: ImpairmentKind::InjectedDelay { millis },
            window: None,
        });
    }

    /// Removes every injected delay from `server`, leaving other
    /// impairments in place.
    pub fn remove_injected_delays(&mut self, server: ServerId) {
        if let Some(list) = self.impairments.get_mut(&server) {
            list.retain(|i| !matches!(i.kind, ImpairmentKind::InjectedDelay { .. }));
        }
    }

    /// Removes all impairments from `server`.
    pub fn clear_impairments(&mut self, server: ServerId) {
        self.impairments.remove(&server);
    }

    /// Current impairments, flattened (for inspection in tests and
    /// experiments); ordering groups by server.
    pub fn impairments(&self) -> Vec<&Impairment> {
        self.impairments.values().flatten().collect()
    }

    /// Combined latency multiplier and fixed delay for a (server, client
    /// region) pair at `t`.
    pub(crate) fn impairment_effect(
        &self,
        server: ServerId,
        client_region: Region,
        t: SimTime,
    ) -> (f64, f64) {
        let mut factor = 1.0;
        let mut extra = 0.0;
        if let Some(list) = self.impairments.get(&server) {
            for imp in list {
                factor *= imp.latency_factor(t, client_region);
                extra += imp.extra_delay_ms(t);
            }
        }
        (factor, extra)
    }
}

/// Constructs a [`World`].
///
/// # Examples
///
/// ```
/// use oak_net::{Quality, Region, WorldBuilder};
///
/// let mut b = WorldBuilder::new(7);
/// let s = b.server("cdn.example", Region::Europe, Quality::Good);
/// let c = b.client(Region::Asia);
/// let world = b.build();
/// assert_eq!(world.resolve("cdn.example", c), Some(world.ip_of(s)));
/// ```
#[derive(Clone, Debug)]
pub struct WorldBuilder {
    seed: u64,
    servers: Vec<Server>,
    clients: Vec<Client>,
    dns: Dns,
    impairments: Vec<Impairment>,
}

impl WorldBuilder {
    /// Starts a world keyed by `seed`; every stochastic quantity derives
    /// from it.
    pub fn new(seed: u64) -> WorldBuilder {
        WorldBuilder {
            seed,
            servers: Vec::new(),
            clients: Vec::new(),
            dns: Dns::new(),
            impairments: Vec::new(),
        }
    }

    /// Adds a single-homed server with quality-derived parameters
    /// (jittered ±20 % so no two servers are identical) and a DNS record
    /// for `hostname`.
    pub fn server(&mut self, hostname: &str, region: Region, quality: Quality) -> ServerId {
        self.server_opts(hostname, region, quality, false)
    }

    /// Adds a CDN-style distributed server: clients everywhere reach it
    /// at intra-region latency (see [`Server::distributed`]).
    pub fn distributed_server(
        &mut self,
        hostname: &str,
        region: Region,
        quality: Quality,
    ) -> ServerId {
        self.server_opts(hostname, region, quality, true)
    }

    /// Adds a server with full control over placement.
    pub fn server_opts(
        &mut self,
        hostname: &str,
        region: Region,
        quality: Quality,
        distributed: bool,
    ) -> ServerId {
        let id = ServerId(self.servers.len() as u32);
        let mut rng = StatelessRng::keyed(self.seed, &[0x5e, u64::from(id.0)]);
        let (processing, bandwidth, amplitude) = quality.parameters();
        let ip = self.fresh_ip(&mut rng);
        self.dns.add_record(hostname, ip);
        self.servers.push(Server {
            id,
            hostname: hostname.to_owned(),
            ip,
            region,
            quality,
            processing_ms: processing * rng.uniform(0.8, 1.2),
            bandwidth_kbps: bandwidth * rng.uniform(0.8, 1.2),
            diurnal_amplitude: amplitude * rng.uniform(0.8, 1.2),
            distributed,
            affinity_neutral: false,
        });
        id
    }

    /// Adds an alias domain resolving to an existing server's IP
    /// (CDN co-hosting: several domains, one address).
    pub fn alias(&mut self, domain: &str, server: ServerId) {
        let ip = self.servers[server.0 as usize].ip;
        self.dns.add_record(domain, ip);
    }

    /// Adds an extra A record, making `domain` resolve to multiple
    /// addresses across clients.
    pub fn multihome(&mut self, domain: &str, server: ServerId) {
        self.alias(domain, server);
    }

    /// Adds a client in `region` with a broadband-like access link
    /// (jittered per client).
    pub fn client(&mut self, region: Region) -> ClientId {
        self.client_with_link(region, (20_000.0, 100_000.0), (2.0, 25.0))
    }

    /// Adds a client on a cellular-grade link: single-digit Mbit/s and a
    /// long radio last mile. §5.1 notes Oak's relative detection "applies
    /// in other scenarios of reduced functionality, for example when
    /// using a mobile device" — everything is slow for this client, so
    /// nothing should read as a *relative* outlier.
    pub fn mobile_client(&mut self, region: Region) -> ClientId {
        self.client_with_link(region, (2_000.0, 8_000.0), (40.0, 120.0))
    }

    /// Adds a client with explicit access-link ranges:
    /// `(kbps_lo, kbps_hi)` bandwidth and `(ms_lo, ms_hi)` last-mile
    /// latency, drawn per client.
    pub fn client_with_link(
        &mut self,
        region: Region,
        access_kbps: (f64, f64),
        last_mile_ms: (f64, f64),
    ) -> ClientId {
        let id = ClientId(self.clients.len() as u32);
        let mut rng = StatelessRng::keyed(self.seed, &[0xc1, u64::from(id.0)]);
        let ip = self.fresh_ip(&mut rng);
        self.clients.push(Client {
            id,
            region,
            access_kbps: rng.uniform(access_kbps.0, access_kbps.1),
            last_mile_ms: rng.uniform(last_mile_ms.0, last_mile_ms.1),
            ip,
        });
        id
    }

    /// Adds an impairment active from construction.
    pub fn impairment(&mut self, impairment: Impairment) {
        self.impairments.push(impairment);
    }

    /// Adjusts a server's parameters in place — experiments use this to
    /// shape specific hosts (e.g. the §5.2 benchmark gives its two bad
    /// default servers a PlanetLab-grade daytime collapse).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this builder.
    pub fn tune_server(&mut self, id: ServerId, tune: impl FnOnce(&mut Server)) {
        tune(&mut self.servers[id.0 as usize]);
    }

    /// Finalizes the world.
    pub fn build(self) -> World {
        let mut world = World {
            seed: self.seed,
            servers: self.servers,
            clients: self.clients,
            dns: self.dns,
            impairments: std::collections::HashMap::new(),
        };
        for impairment in self.impairments {
            world.add_impairment(impairment);
        }
        world
    }

    fn fresh_ip(&self, rng: &mut StatelessRng) -> IpAddr {
        // Draw from 10.0.0.0/8 and avoid collisions with assigned hosts.
        loop {
            let candidate = IpAddr(0x0a00_0000 | (rng.next_u64() as u32 & 0x00ff_ffff));
            let taken = self.servers.iter().any(|s| s.ip == candidate)
                || self.clients.iter().any(|c| c.ip == candidate);
            if !taken {
                return candidate;
            }
        }
    }
}
