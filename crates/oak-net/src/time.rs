//! Simulated wall-clock time.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in milliseconds since the experiment epoch.
///
/// The evaluation's longest run is 72 hours sampled every 30 minutes
/// (Fig. 10/11); `u64` milliseconds cover that with abundant headroom.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The experiment epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time `ms` milliseconds after the epoch.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms)
    }

    /// A time `s` seconds after the epoch.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000)
    }

    /// A time `m` minutes after the epoch.
    pub fn from_minutes(m: u64) -> SimTime {
        SimTime(m * 60_000)
    }

    /// A time `h` hours after the epoch.
    pub fn from_hours(h: u64) -> SimTime {
        SimTime(h * 3_600_000)
    }

    /// A time `d` days after the epoch.
    pub fn from_days(d: u64) -> SimTime {
        SimTime(d * 86_400_000)
    }

    /// Milliseconds since the epoch.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// UTC hour-of-day in `[0, 24)`, fractional.
    pub fn hour_of_day_utc(self) -> f64 {
        self.as_hours_f64() % 24.0
    }

    /// Whole days since the epoch.
    pub fn day(self) -> u64 {
        self.0 / 86_400_000
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// Advances by `ms` milliseconds.
    fn add(self, ms: u64) -> SimTime {
        SimTime(self.0 + ms)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    /// Elapsed milliseconds between two times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    /// Formats as `d+hh:mm:ss.mmm`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let s = (self.0 / 1_000) % 60;
        let m = (self.0 / 60_000) % 60;
        let h = (self.0 / 3_600_000) % 24;
        let d = self.day();
        write!(f, "{d}+{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}
