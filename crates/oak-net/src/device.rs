//! Client device hardware classes.
//!
//! The paper's testbed measured from PlanetLab nodes — server-class
//! hardware on wired links — so every vantage point paid roughly the
//! same CPU cost per object. Real client populations do not: a low-end
//! phone parses and executes a script an order of magnitude slower than
//! a desktop, and reaches the network over a radio that adds tens of
//! milliseconds of latency to every request. A [`DeviceProfile`] prices
//! both effects so the evaluation stack can load the same page on
//! different silicon and see different truths.
//!
//! The model is deliberately per-*object*, not per-page: the cost lands
//! on exactly the fetches whose URLs name script, which is what makes
//! ad chains — long dependent sequences of small `.js` objects — the
//! worst case on mobile even though they are nearly free on desktop.
//! That asymmetry is the whole reason the cohort detector exists (see
//! `oak-core`'s `cohort` module): without it, a phone's report makes
//! every healthy ad server look like a violator.

/// Baseline (desktop) cost to parse + execute one script, ms.
const SCRIPT_BASE_MS: f64 = 8.0;

/// Baseline per-KiB script parse + execute cost, ms.
const SCRIPT_PER_KB_MS: f64 = 0.35;

/// One hardware class: a CPU processing-delay multiplier and a radio
/// latency class. Applied client-side by the simulated browser; the
/// network model itself is device-blind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// The class name — matches the report wire spelling, so a profile
    /// maps onto the cohort hint without a lookup table.
    pub label: &'static str,
    /// Multiplier on script parse/execute CPU cost (desktop = 1).
    pub cpu_multiplier: f64,
    /// Extra last-hop latency the device's radio adds to every network
    /// fetch, ms (0 for wired/Wi-Fi desktop).
    pub radio_rtt_ms: f64,
}

impl DeviceProfile {
    /// Wired/Wi-Fi desktop: the testbed baseline. Costs are the model's
    /// unit scale, not zero — desktops execute script too.
    pub const DESKTOP: DeviceProfile = DeviceProfile {
        label: "desktop",
        cpu_multiplier: 1.0,
        radio_rtt_ms: 0.0,
    };

    /// A current mid-range phone on LTE: a few times slower per script,
    /// a modest radio penalty per request.
    pub const MID_MOBILE: DeviceProfile = DeviceProfile {
        label: "mid-mobile",
        cpu_multiplier: 3.0,
        radio_rtt_ms: 25.0,
    };

    /// A low-end phone on a congested radio: the order-of-magnitude CPU
    /// gap the adPerf literature measures, plus a long radio wake-up.
    pub const LOW_END_MOBILE: DeviceProfile = DeviceProfile {
        label: "low-end-mobile",
        cpu_multiplier: 9.0,
        radio_rtt_ms: 60.0,
    };

    /// All profiles, desktop first.
    pub const ALL: [DeviceProfile; 3] = [Self::DESKTOP, Self::MID_MOBILE, Self::LOW_END_MOBILE];

    /// Parses a class label; `None` for anything else.
    pub fn parse(text: &str) -> Option<DeviceProfile> {
        Self::ALL.into_iter().find(|p| p.label == text)
    }

    /// CPU time to parse + execute one script of `bytes`, ms. Scripts
    /// carry a base cost (JIT warm-up, global execution) plus a per-KiB
    /// cost, both scaled by the class multiplier; a tiny ad-chain loader
    /// still costs real time on a phone.
    pub fn script_cost_ms(&self, bytes: u64) -> f64 {
        self.cpu_multiplier * (SCRIPT_BASE_MS + SCRIPT_PER_KB_MS * bytes as f64 / 1024.0)
    }

    /// The device-side cost this class adds to one object fetch, ms:
    /// the radio latency (every network fetch) plus, for script, the CPU
    /// execute cost.
    pub fn object_cost_ms(&self, bytes: u64, is_script: bool) -> f64 {
        self.radio_rtt_ms
            + if is_script {
                self.script_cost_ms(bytes)
            } else {
                0.0
            }
    }
}
