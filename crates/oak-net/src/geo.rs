//! Geographic regions and base round-trip times.

use std::fmt;

/// A coarse geographic region.
///
/// The paper's clients are "25 Planet Lab nodes, half of which are in North
/// America, and the remainder evenly spread between Europe and Asia
/// (including Oceania)" (§5); its replica servers sit in NA, EU, and Asia.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Oceania (grouped with Asia in the paper's client split).
    Oceania,
    /// South America (present on real pages' CDN maps; unused by default
    /// workloads but supported).
    SouthAmerica,
}

impl Region {
    /// All regions, for iteration.
    pub const ALL: [Region; 5] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::Asia,
        Region::Oceania,
        Region::SouthAmerica,
    ];

    /// Representative UTC offset, in hours, for diurnal load curves.
    pub fn utc_offset_hours(self) -> f64 {
        match self {
            Region::NorthAmerica => -6.0,
            Region::Europe => 1.0,
            Region::Asia => 8.0,
            Region::Oceania => 10.0,
            Region::SouthAmerica => -3.0,
        }
    }

    fn index(self) -> usize {
        match self {
            Region::NorthAmerica => 0,
            Region::Europe => 1,
            Region::Asia => 2,
            Region::Oceania => 3,
            Region::SouthAmerica => 4,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::NorthAmerica => "NA",
            Region::Europe => "EU",
            Region::Asia => "AS",
            Region::Oceania => "OC",
            Region::SouthAmerica => "SA",
        };
        f.write_str(name)
    }
}

/// Base round-trip time between region backbones, in milliseconds.
///
/// Values are conventional public-Internet medians (same order as used by
/// wide-area emulators): intra-region ≈ 30–40 ms, transatlantic ≈ 100 ms,
/// transpacific ≈ 160 ms. Last-mile and jitter are added per host by the
/// transfer model, so these are *floor* figures.
pub fn rtt_ms(a: Region, b: Region) -> f64 {
    // Symmetric matrix indexed by Region::index: NA, EU, AS, OC, SA.
    const RTT: [[f64; 5]; 5] = [
        [35.0, 100.0, 160.0, 170.0, 120.0],
        [100.0, 30.0, 180.0, 250.0, 190.0],
        [160.0, 180.0, 40.0, 110.0, 280.0],
        [170.0, 250.0, 110.0, 30.0, 300.0],
        [120.0, 190.0, 280.0, 300.0, 35.0],
    ];
    RTT[a.index()][b.index()]
}
