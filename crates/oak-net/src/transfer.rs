//! Pricing a single HTTP object transfer.

use crate::addr::{ClientId, IpAddr};
use crate::rng::StatelessRng;
use crate::time::SimTime;
use crate::topology::World;

/// The outcome of fetching one object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fetch {
    /// End-to-end time from request to last byte, milliseconds.
    pub time_ms: f64,
    /// Connection setup portion (DNS amortized out; TCP handshake +
    /// request round trip), milliseconds.
    pub connect_ms: f64,
    /// Achieved throughput over the whole fetch, kbit/s — the quantity Oak
    /// aggregates for large objects (§4.2).
    pub throughput_kbps: f64,
    /// Object size, bytes (echoed for convenience).
    pub bytes: u64,
}

/// Noise time-bucket width: conditions are stable within a page load but
/// drift between the 30-minute reload intervals the paper uses.
const NOISE_BUCKET_MS: u64 = 60_000;

/// TCP receive-window cap, bytes. Bounds throughput by `window / RTT`,
/// which is what makes distant servers slow for big objects even when both
/// ends have bandwidth to spare.
const TCP_WINDOW_BYTES: f64 = 65_536.0;

impl World {
    /// Prices a fetch of `bytes` from the server at `ip` by `client`,
    /// starting at time `t`. `nonce` distinguishes different objects
    /// fetched in the same time bucket (use a hash of the URL).
    ///
    /// The model (latencies in ms):
    ///
    /// ```text
    /// rtt        = base_rtt(client.region, server.region) + last_mile      (jittered)
    /// connect    = 1.5 · rtt                     TCP handshake + request
    /// processing = server.processing_ms · diurnal_load · impairment
    /// transfer   = bytes·8 / min(client_bw, server_bw/load/imp, window/rtt)
    /// total      = (connect + processing + transfer) · lognormal_noise + injected
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `ip` is not a server in this world; the caller resolves
    /// domains first and a dangling IP is a bug in the experiment, not a
    /// runtime condition.
    pub fn fetch(&self, t: SimTime, client: ClientId, ip: IpAddr, bytes: u64, nonce: u64) -> Fetch {
        self.fetch_opts(t, client, ip, bytes, nonce, false)
    }

    /// As [`World::fetch`]; `warm` reuses an established connection
    /// (HTTP keep-alive), skipping the TCP handshake: connection cost
    /// drops from 1.5 RTT to the 0.5 RTT of the request itself.
    pub fn fetch_opts(
        &self,
        t: SimTime,
        client: ClientId,
        ip: IpAddr,
        bytes: u64,
        nonce: u64,
        warm: bool,
    ) -> Fetch {
        let server = self
            .server_at(ip)
            .unwrap_or_else(|| panic!("fetch from unknown ip {ip}"));
        let client = self.client(client);

        let mut rng = StatelessRng::keyed(
            self.seed,
            &[
                0xf7,
                u64::from(client.id.0),
                u64::from(server.ip.0),
                nonce,
                t.as_millis() / NOISE_BUCKET_MS,
            ],
        );

        let (imp_factor, injected_ms) = self.impairment_effect(server.id, client.region, t);
        let load = server.diurnal_load(t) * imp_factor;

        // Path latency: regional base plus both last miles, with mild
        // jitter. Distributed (CDN-style) servers are reached at the
        // client's intra-region RTT — they have an edge nearby.
        // Impairments inflate the RTT as well (queueing delay / longer
        // detour paths), which in turn collapses the window-over-RTT
        // throughput cap — slow paths hurt twice, as on the real
        // Internet.
        let server_region = if server.distributed {
            client.region
        } else {
            server.region
        };
        let base_rtt = crate::geo::rtt_ms(client.region, server_region);
        let rtt = (base_rtt + client.last_mile_ms + server.processing_ms * 0.1)
            * rng.uniform(0.98, 1.08)
            * imp_factor;

        let connect_ms = if warm { 0.5 * rtt } else { 1.5 * rtt };
        let processing_ms = server.processing_ms * load;

        // Effective throughput: bottleneck of access link, loaded server
        // egress, and the latency-bandwidth product.
        let window_cap_kbps = TCP_WINDOW_BYTES * 8.0 / (rtt / 1000.0) / 1000.0;
        let tput_kbps = (client.access_kbps)
            .min(server.bandwidth_kbps / load)
            .min(window_cap_kbps)
            .max(1.0);
        let transfer_ms = bytes as f64 * 8.0 / tput_kbps;

        // Two noise components, deliberately shaped:
        //
        // - a *stable* per-(client, server) path-affinity factor, bounded
        //   and uniform — routing and peering quality differ pair by pair
        //   but do not fluctuate load to load. Being light-tailed, it
        //   widens the cross-server MAD without parking healthy servers
        //   past the `median + 2·MAD` boundary, matching the paper's
        //   observation that most pages show no outlier at all (Fig. 2);
        // - a small per-fetch log-normal for measurement-to-measurement
        //   jitter.
        //
        // The injected delay (Fig. 9) is deterministic and additive.
        let mut pair_rng = StatelessRng::keyed(
            self.seed,
            &[0x9a, u64::from(client.id.0), u64::from(server.ip.0)],
        );
        let affinity = if server.affinity_neutral {
            1.0
        } else {
            pair_rng.uniform(0.75, 1.35)
        };
        let noise = rng.lognormal(0.04);
        let time_ms = (connect_ms + processing_ms + transfer_ms) * affinity * noise + injected_ms;

        Fetch {
            time_ms,
            connect_ms: connect_ms * affinity * noise,
            // bits per millisecond ≡ kbit/s.
            throughput_kbps: bytes as f64 * 8.0 / time_ms.max(1e-9),
            bytes,
        }
    }

    /// Prices a DNS lookup for `client` (one RTT to a resolver assumed
    /// in-region, plus resolver latency), milliseconds. Stateless: the
    /// caller decides what is cached.
    pub fn dns_lookup_ms(&self, t: SimTime, client: ClientId, domain_hash: u64) -> f64 {
        let client = self.client(client);
        let mut rng = StatelessRng::keyed(
            self.seed,
            &[
                0xdd,
                u64::from(client.id.0),
                domain_hash,
                t.as_millis() / NOISE_BUCKET_MS,
            ],
        );
        (client.last_mile_ms + rng.uniform(5.0, 30.0)) * rng.lognormal(0.3)
    }
}

/// Hashes a URL or domain to a stable fetch nonce (FNV-1a).
pub fn url_nonce(url: &str) -> u64 {
    crate::rng::hash_str(url)
}
