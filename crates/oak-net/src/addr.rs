//! Identifiers for simulated network entities.

use std::fmt;

/// A simulated IPv4 address.
///
/// Oak's performance analysis groups report entries "by the IP address to
/// which the client ultimately connected" (§4.2), so IPs — not domains —
/// are the primary key throughout the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Parses dotted-quad notation.
    ///
    /// Returns `None` for anything that is not exactly four `0..=255`
    /// decimal octets.
    pub fn parse(text: &str) -> Option<IpAddr> {
        let mut value: u32 = 0;
        let mut count = 0;
        for part in text.split('.') {
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let octet: u32 = part.parse().ok()?;
            if octet > 255 {
                return None;
            }
            value = (value << 8) | octet;
            count += 1;
        }
        (count == 4).then_some(IpAddr(value))
    }

    /// The /24 prefix, used by policies that discriminate by subnet
    /// (paper §4.2.4 mentions activation "by IP subnet").
    pub fn subnet24(self) -> u32 {
        self.0 >> 8
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            (v >> 24) & 0xff,
            (v >> 16) & 0xff,
            (v >> 8) & 0xff,
            v & 0xff
        )
    }
}

/// Index of a server within a [`crate::World`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

/// Index of a client within a [`crate::World`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cli{}", self.0)
    }
}
