//! Unit and property tests for the network model.

use crate::*;

fn small_world(seed: u64) -> (World, ClientId, ServerId, ServerId) {
    let mut b = WorldBuilder::new(seed);
    let near = b.server("near.example", Region::NorthAmerica, Quality::Good);
    let far = b.server("far.example", Region::Asia, Quality::Good);
    let client = b.client(Region::NorthAmerica);
    (b.build(), client, near, far)
}

#[test]
fn ip_parse_and_display_roundtrip() {
    for text in ["0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"] {
        let ip = IpAddr::parse(text).unwrap();
        assert_eq!(ip.to_string(), text);
    }
}

#[test]
fn ip_parse_rejects_garbage() {
    for bad in [
        "",
        "1.2.3",
        "1.2.3.4.5",
        "256.0.0.1",
        "a.b.c.d",
        "1..2.3",
        "01x.0.0.0",
    ] {
        assert!(IpAddr::parse(bad).is_none(), "{bad:?}");
    }
}

#[test]
fn subnet24_groups_neighbours() {
    let a = IpAddr::parse("10.1.2.3").unwrap();
    let b = IpAddr::parse("10.1.2.250").unwrap();
    let c = IpAddr::parse("10.1.3.3").unwrap();
    assert_eq!(a.subnet24(), b.subnet24());
    assert_ne!(a.subnet24(), c.subnet24());
}

#[test]
fn sim_time_units_and_display() {
    assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
    assert_eq!(SimTime::from_minutes(3).as_millis(), 180_000);
    assert_eq!(SimTime::from_hours(1).as_millis(), 3_600_000);
    assert_eq!(SimTime::from_days(2).day(), 2);
    assert_eq!((SimTime::from_secs(5) - SimTime::from_secs(2)), 3_000);
    assert_eq!(SimTime::from_hours(30).hour_of_day_utc(), 6.0);
    assert_eq!(
        format!("{}", SimTime::from_millis(90_061_001)),
        "1+01:01:01.001"
    );
}

#[test]
fn rtt_matrix_is_symmetric_with_local_minimum() {
    for a in Region::ALL {
        for b in Region::ALL {
            assert_eq!(rtt_ms(a, b), rtt_ms(b, a));
            if a != b {
                assert!(rtt_ms(a, b) > rtt_ms(a, a), "{a} -> {b}");
            }
        }
    }
}

#[test]
fn stateless_rng_is_deterministic_and_key_sensitive() {
    let a1 = StatelessRng::keyed(1, &[1, 2]).next_u64();
    let a2 = StatelessRng::keyed(1, &[1, 2]).next_u64();
    let b = StatelessRng::keyed(1, &[1, 3]).next_u64();
    let c = StatelessRng::keyed(2, &[1, 2]).next_u64();
    assert_eq!(a1, a2);
    assert_ne!(a1, b);
    assert_ne!(a1, c);
}

#[test]
fn rng_distributions_are_sane() {
    let mut rng = StatelessRng::keyed(99, &[7]);
    let n = 20_000;
    let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
    assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");

    let mut rng = StatelessRng::keyed(99, &[8]);
    let nmean: f64 = (0..n).map(|_| rng.normal()).sum::<f64>() / n as f64;
    assert!(nmean.abs() < 0.05, "normal mean {nmean}");

    let mut rng = StatelessRng::keyed(99, &[9]);
    // Log-normal with median 1: about half the draws fall below 1.
    let below: usize = (0..n).filter(|_| rng.lognormal(0.3) < 1.0).count();
    let frac = below as f64 / n as f64;
    assert!(
        (frac - 0.5).abs() < 0.03,
        "lognormal median fraction {frac}"
    );

    let mut rng = StatelessRng::keyed(99, &[10]);
    for _ in 0..1000 {
        let v = rng.uniform(3.0, 5.0);
        assert!((3.0..5.0).contains(&v));
        assert!(rng.below(7) < 7);
    }
}

#[test]
fn dns_single_and_missing() {
    let (world, client, near, _) = small_world(5);
    assert_eq!(
        world.resolve("near.example", client),
        Some(world.ip_of(near))
    );
    assert_eq!(world.resolve("nosuch.example", client), None);
}

#[test]
fn dns_aliases_share_ip() {
    let mut b = WorldBuilder::new(5);
    let s = b.server("cdn.example", Region::Europe, Quality::Good);
    b.alias("img.brand.example", s);
    b.alias("static.brand.example", s);
    let c = b.client(Region::Europe);
    let world = b.build();
    let ip = world.ip_of(s);
    assert_eq!(world.resolve("img.brand.example", c), Some(ip));
    let mut domains = world.dns.domains_for(ip);
    domains.sort_unstable();
    assert_eq!(
        domains,
        ["cdn.example", "img.brand.example", "static.brand.example"]
    );
}

#[test]
fn dns_multihome_pins_clients_consistently() {
    let mut b = WorldBuilder::new(11);
    let s1 = b.server("replica1.example", Region::NorthAmerica, Quality::Good);
    let s2 = b.server("replica2.example", Region::Europe, Quality::Good);
    b.multihome("www.example", s1);
    b.multihome("www.example", s2);
    let clients: Vec<ClientId> = (0..40).map(|_| b.client(Region::NorthAmerica)).collect();
    let world = b.build();

    let mut seen = std::collections::BTreeSet::new();
    for &c in &clients {
        let first = world.resolve("www.example", c).unwrap();
        // Affinity: repeated resolution gives the same answer.
        assert_eq!(world.resolve("www.example", c), Some(first));
        seen.insert(first);
    }
    assert_eq!(seen.len(), 2, "40 clients should land on both replicas");
}

#[test]
fn fetch_is_deterministic() {
    let (world, client, near, _) = small_world(21);
    let t = SimTime::from_hours(3);
    let a = world.fetch(t, client, world.ip_of(near), 30_000, 42);
    let b = world.fetch(t, client, world.ip_of(near), 30_000, 42);
    assert_eq!(a, b);
}

#[test]
fn fetch_distance_dominates() {
    // Averaged over noise, the cross-ocean fetch is slower.
    let (world, client, near, far) = small_world(33);
    let (mut near_total, mut far_total) = (0.0, 0.0);
    for i in 0..50 {
        let t = SimTime::from_minutes(i * 7);
        near_total += world.fetch(t, client, world.ip_of(near), 20_000, i).time_ms;
        far_total += world.fetch(t, client, world.ip_of(far), 20_000, i).time_ms;
    }
    assert!(
        far_total > near_total * 1.5,
        "far {far_total} vs near {near_total}"
    );
}

#[test]
fn fetch_large_objects_report_lower_time_higher_bits() {
    let (world, client, near, _) = small_world(8);
    let t = SimTime::from_hours(1);
    let small = world.fetch(t, client, world.ip_of(near), 10_000, 1);
    let large = world.fetch(t, client, world.ip_of(near), 500_000, 1);
    assert!(large.time_ms > small.time_ms);
    assert!(
        large.throughput_kbps > small.throughput_kbps,
        "throughput improves once transfer dominates the fixed costs"
    );
    assert_eq!(large.bytes, 500_000);
}

#[test]
fn quality_tiers_order_latency() {
    let mut b = WorldBuilder::new(13);
    let good = b.server("good.example", Region::NorthAmerica, Quality::Good);
    let poor = b.server("poor.example", Region::NorthAmerica, Quality::Poor);
    // Average over several clients: the per-(client, server) path
    // affinity is deliberately stable, so a single pair could mask the
    // tier difference.
    let clients: Vec<ClientId> = (0..10).map(|_| b.client(Region::NorthAmerica)).collect();
    let world = b.build();
    let mut good_total = 0.0;
    let mut poor_total = 0.0;
    for &client in &clients {
        for i in 0..10 {
            let t = SimTime::from_minutes(i * 11);
            good_total += world.fetch(t, client, world.ip_of(good), 40_000, i).time_ms;
            poor_total += world.fetch(t, client, world.ip_of(poor), 40_000, i).time_ms;
        }
    }
    assert!(poor_total > good_total * 1.3);
}

#[test]
fn diurnal_load_peaks_in_local_afternoon() {
    let mut b = WorldBuilder::new(3);
    let s = b.server("s.example", Region::Europe, Quality::Poor);
    let world = b.build();
    let server = world.server(s);
    // 14:00 local in EU (UTC+1) is 13:00 UTC.
    let peak = server.diurnal_load(SimTime::from_hours(13));
    let trough = server.diurnal_load(SimTime::from_hours(1));
    assert!(peak > trough * 1.3, "peak {peak} trough {trough}");
    assert!(trough >= 1.0);
}

#[test]
fn injected_delay_adds_exactly() {
    let (mut world, client, near, _) = small_world(50);
    let t = SimTime::from_hours(2);
    let ip = world.ip_of(near);
    let before = world.fetch(t, client, ip, 30_000, 9);
    world.inject_delay(near, 1500.0);
    let after = world.fetch(t, client, ip, 30_000, 9);
    assert!((after.time_ms - before.time_ms - 1500.0).abs() < 1e-6);
    world.remove_injected_delays(near);
    let cleared = world.fetch(t, client, ip, 30_000, 9);
    assert_eq!(cleared, before);
}

#[test]
fn transient_congestion_has_a_window() {
    let (mut world, client, near, _) = small_world(60);
    let ip = world.ip_of(near);
    world.add_impairment(Impairment {
        server: near,
        kind: ImpairmentKind::TransientCongestion { severity: 5.0 },
        window: Some((SimTime::from_hours(10), SimTime::from_hours(12))),
    });
    let during = world.fetch(SimTime::from_hours(11), client, ip, 30_000, 1);
    let outside = world.fetch(SimTime::from_hours(13), client, ip, 30_000, 1);
    // Same noise bucket parameters differ; compare well beyond noise.
    assert!(during.time_ms > outside.time_ms * 1.5);
}

#[test]
fn regional_degradation_hits_only_target_region() {
    let mut b = WorldBuilder::new(71);
    let s = b.server("s.example", Region::NorthAmerica, Quality::Good);
    let na = b.client(Region::NorthAmerica);
    let eu = b.client(Region::Europe);
    let mut world = b.build();
    let ip = world.ip_of(s);
    let t = SimTime::from_hours(4);

    let eu_before = world.fetch(t, eu, ip, 30_000, 2);
    let na_before = world.fetch(t, na, ip, 30_000, 2);
    world.add_impairment(Impairment {
        server: s,
        kind: ImpairmentKind::RegionalPathDegradation {
            region: Region::Europe,
            severity: 6.0,
        },
        window: None,
    });
    let eu_after = world.fetch(t, eu, ip, 30_000, 2);
    let na_after = world.fetch(t, na, ip, 30_000, 2);
    assert!(eu_after.time_ms > eu_before.time_ms * 2.0);
    assert_eq!(na_after, na_before, "NA clients are untouched");
}

#[test]
fn clear_impairments_removes_all_for_server() {
    let (mut world, client, near, _) = small_world(80);
    let ip = world.ip_of(near);
    let t = SimTime::from_hours(1);
    let before = world.fetch(t, client, ip, 10_000, 1);
    world.inject_delay(near, 100.0);
    world.inject_delay(near, 200.0);
    assert_eq!(world.impairments().len(), 2);
    world.clear_impairments(near);
    assert_eq!(world.fetch(t, client, ip, 10_000, 1), before);
}

#[test]
fn dns_lookup_time_is_positive_and_deterministic() {
    let (world, client, _, _) = small_world(90);
    let t = SimTime::from_hours(1);
    let a = world.dns_lookup_ms(t, client, url_nonce("x.example"));
    let b = world.dns_lookup_ms(t, client, url_nonce("x.example"));
    assert_eq!(a, b);
    assert!(a > 0.0);
}

#[test]
fn warm_fetches_skip_the_handshake() {
    let (world, client, near, _) = small_world(70);
    let t = SimTime::from_hours(1);
    let ip = world.ip_of(near);
    let cold = world.fetch_opts(t, client, ip, 10_000, 5, false);
    let warm = world.fetch_opts(t, client, ip, 10_000, 5, true);
    assert!(warm.time_ms < cold.time_ms);
    assert!(warm.connect_ms < cold.connect_ms);
    // Exactly one RTT of handshake saved, modulo shared noise factors:
    // warm connect is a third of cold (0.5·rtt vs 1.5·rtt).
    assert!((warm.connect_ms * 3.0 - cold.connect_ms).abs() < 1e-6);
    // fetch() is the cold path.
    assert_eq!(world.fetch(t, client, ip, 10_000, 5), cold);
}

#[test]
fn mobile_clients_have_cellular_links() {
    let mut b = WorldBuilder::new(44);
    let broadband = b.client(Region::Europe);
    let mobile = b.mobile_client(Region::Europe);
    let custom = b.client_with_link(Region::Europe, (500.0, 501.0), (200.0, 201.0));
    let world = b.build();
    let bb = world.client(broadband);
    let mb = world.client(mobile);
    let cu = world.client(custom);
    assert!(mb.access_kbps < bb.access_kbps);
    assert!(mb.last_mile_ms > bb.last_mile_ms);
    assert!((500.0..=501.0).contains(&cu.access_kbps));
    assert!((200.0..=201.0).contains(&cu.last_mile_ms));
    assert_eq!(mb.region, Region::Europe);
}

#[test]
fn distributed_servers_serve_far_clients_locally() {
    let mut b = WorldBuilder::new(45);
    let single = b.server("single.example", Region::Asia, Quality::Good);
    let spread = b.distributed_server("spread.example", Region::Asia, Quality::Good);
    let na = b.client(Region::NorthAmerica);
    let world = b.build();
    let t = SimTime::from_hours(2);
    let mut single_total = 0.0;
    let mut spread_total = 0.0;
    for i in 0..30 {
        single_total += world.fetch(t, na, world.ip_of(single), 10_000, i).time_ms;
        spread_total += world.fetch(t, na, world.ip_of(spread), 10_000, i).time_ms;
    }
    assert!(
        single_total > spread_total * 1.8,
        "cross-Pacific single-homed {} vs edge-served {}",
        single_total,
        spread_total
    );
}

#[test]
fn affinity_neutral_servers_skip_the_pair_factor() {
    let mut b = WorldBuilder::new(46);
    let normal = b.server("n.example", Region::NorthAmerica, Quality::Good);
    let neutral = b.server("m.example", Region::NorthAmerica, Quality::Good);
    b.tune_server(neutral, |s| s.affinity_neutral = true);
    let clients: Vec<ClientId> = (0..30).map(|_| b.client(Region::NorthAmerica)).collect();
    let world = b.build();
    let t = SimTime::from_hours(1);
    // Across many clients, the neutral server's times vary much less
    // (only last-mile and jitter remain).
    let spread = |id| {
        let times: Vec<f64> = clients
            .iter()
            .map(|&c| world.fetch(t, c, world.ip_of(id), 10_000, 1).time_ms)
            .collect();
        let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = times.iter().cloned().fold(0.0f64, f64::max);
        hi / lo
    };
    assert!(spread(normal) > spread(neutral));
}

#[test]
#[should_panic(expected = "fetch from unknown ip")]
fn fetch_from_unknown_ip_panics() {
    let (world, client, _, _) = small_world(91);
    world.fetch(SimTime::ZERO, client, IpAddr(1), 100, 0);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Fetch outputs are finite and positive for any parameters.
        #[test]
        fn fetch_is_well_formed(
            seed in 0u64..1000,
            bytes in 1u64..5_000_000,
            minutes in 0u64..10_000,
            nonce in any::<u64>(),
        ) {
            let (world, client, near, _) = small_world(seed);
            let f = world.fetch(SimTime::from_minutes(minutes), client, world.ip_of(near), bytes, nonce);
            prop_assert!(f.time_ms.is_finite() && f.time_ms > 0.0);
            prop_assert!(f.throughput_kbps.is_finite() && f.throughput_kbps > 0.0);
            prop_assert!(f.connect_ms > 0.0 && f.connect_ms <= f.time_ms + 1e-9);
        }

        /// Diurnal load stays within [1, 1+amplitude·(1+ε)] at all times.
        #[test]
        fn diurnal_load_is_bounded(hours in 0u64..2000) {
            let mut b = WorldBuilder::new(17);
            let s = b.server("s.example", Region::Asia, Quality::Poor);
            let world = b.build();
            let server = world.server(s);
            let load = server.diurnal_load(SimTime::from_hours(hours));
            prop_assert!(load >= 1.0);
            prop_assert!(load <= 1.0 + server.diurnal_amplitude + 1e-9);
        }

        /// IP parse/display round-trips for all 32-bit addresses.
        #[test]
        fn ip_roundtrip(v in any::<u32>()) {
            let ip = IpAddr(v);
            prop_assert_eq!(IpAddr::parse(&ip.to_string()), Some(ip));
        }

        /// Resolution is total over arbitrary domain strings.
        #[test]
        fn resolve_is_total(domain in "\\PC{0,32}") {
            let (world, client, _, _) = small_world(7);
            let _ = world.resolve(&domain, client);
        }
    }
}
