//! A deterministic model of the wide-area network Oak was evaluated on.
//!
//! The paper's experiments ran on 25 PlanetLab vantage points fetching from
//! production third-party servers. This crate replaces that testbed with a
//! seeded, order-independent model that reproduces the *relative* structure
//! the evaluation depends on:
//!
//! - **Geography** ([`Region`], [`rtt_ms`]): inter-region base RTTs, so
//!   clients far from a server see longer, noisier paths (Fig. 9's
//!   NA/EU/AS sensitivity spread).
//! - **DNS** ([`Dns`]): domains resolving to one or more IPs, with several
//!   domains co-hosted on one IP — Oak groups report entries by resolved IP
//!   while "keeping track of all related domain names" (§4.2).
//! - **Server behaviour** ([`Server`], [`Quality`]): per-server processing
//!   delay, capacity, and a diurnal load curve in the server's local time
//!   zone (Fig. 11's day/night swing).
//! - **Impairments** ([`Impairment`]): transient congestion windows and
//!   persistent path degradations targeting specific client regions — the
//!   two outlier populations of Fig. 3 (≈ half vanish within a day, the
//!   rest persist).
//! - **Device classes** ([`DeviceProfile`]): client-side CPU and radio
//!   cost classes (desktop / mid-mobile / low-end-mobile), so the same
//!   page load prices differently on different silicon — the population
//!   structure the cohort detector in `oak-core` exists for.
//! - **Transfer pricing** ([`World::fetch`]): DNS + connect + request +
//!   processing + bandwidth/latency-capped transfer, with multiplicative
//!   log-normal noise derived *statelessly* from the tuple
//!   (seed, client, server, object, time-bucket), so results do not depend
//!   on call order and experiments are exactly repeatable.
//!
//! # Examples
//!
//! ```
//! use oak_net::{Quality, Region, SimTime, WorldBuilder};
//!
//! let mut b = WorldBuilder::new(42);
//! let origin = b.server("origin.example", Region::NorthAmerica, Quality::Good);
//! let cdn = b.server("cdn.example", Region::Europe, Quality::Mediocre);
//! let client = b.client(Region::NorthAmerica);
//! let world = b.build();
//!
//! let t = SimTime::from_hours(12);
//! let near = world.fetch(t, client, world.ip_of(origin), 50_000, 1);
//! let far = world.fetch(t, client, world.ip_of(cdn), 50_000, 1);
//! assert!(far.time_ms > near.time_ms, "cross-ocean fetch is slower");
//! ```

mod addr;
mod device;
mod dns;
mod geo;
mod impairment;
mod rng;
mod time;
mod topology;
mod transfer;

pub use addr::{ClientId, IpAddr, ServerId};
pub use device::DeviceProfile;
pub use dns::Dns;
pub use geo::{rtt_ms, Region};
pub use impairment::{Impairment, ImpairmentKind};
pub use rng::StatelessRng;
pub use time::SimTime;
pub use topology::{Client, Quality, Server, World, WorldBuilder};
pub use transfer::{url_nonce, Fetch};

#[cfg(test)]
mod tests;
