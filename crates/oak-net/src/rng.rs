//! Stateless, order-independent randomness.
//!
//! Every stochastic quantity in the model is derived by hashing the tuple
//! that identifies it (seed, client, server, object, time bucket) and
//! expanding the hash with SplitMix64. Two properties follow:
//!
//! 1. **Repeatability** — re-running an experiment with the same seed gives
//!    bit-identical results, regardless of thread scheduling.
//! 2. **Order independence** — pricing fetch A never perturbs fetch B,
//!    unlike a shared-stream RNG where call order leaks between unrelated
//!    measurements.

/// A deterministic generator keyed by an arbitrary tuple of `u64`s.
#[derive(Clone, Copy, Debug)]
pub struct StatelessRng {
    state: u64,
}

impl StatelessRng {
    /// Creates a generator from a seed and a sequence of key components.
    pub fn keyed(seed: u64, keys: &[u64]) -> StatelessRng {
        let mut state = splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for &k in keys {
            state = splitmix64(state ^ splitmix64(k.wrapping_add(0x632b_e592_77b1_42e1)));
        }
        StatelessRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is < 2⁻⁵³ for the ranges used here (all ≪ 2³²).
        self.next_u64() % n
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal multiplicative noise with median 1 and shape `sigma`.
    ///
    /// This is the conventional model for wide-area HTTP latency noise:
    /// heavy right tail, never negative.
    pub fn lognormal(&mut self, sigma: f64) -> f64 {
        (self.normal() * sigma).exp()
    }

    /// Exponential with mean `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.next_f64().max(1e-12).ln()
    }
}

/// SplitMix64 finalizer — a well-mixed 64→64 bijection.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a string to a stable key component (FNV-1a).
pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
