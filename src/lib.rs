//! # Oak: user-targeted web performance
//!
//! This facade crate re-exports the full Oak workspace, a reproduction of
//! *Oak: User-Targeted Web Performance* (Flores, Wenzel, Kuzmanovic — ICDCS
//! 2017 / NU-EECS-16-10).
//!
//! Oak lets a site operator act on per-user, client-reported performance:
//! clients send compact per-object performance reports; Oak groups objects by
//! the server IP they were fetched from, flags *violators* with a
//! median-absolute-deviation test, matches violators against operator rules
//! via connection-dependency analysis, and rewrites outgoing pages per user
//! to route around under-performing external providers.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`core`] | `oak-core` | the paper's contribution: detection, rules, matching, rewriting |
//! | [`client`] | `oak-client` | simulated Oak-enabled browser (report generation) |
//! | [`server`] | `oak-server` | Oak proxy daemon over HTTP |
//! | [`net`] | `oak-net` | deterministic network/latency model with DNS and diurnal load |
//! | [`http`] | `oak-http` | from-scratch HTTP/1.1 (TCP and in-memory transports) |
//! | [`edge`] | `oak-edge` | non-blocking epoll/poll reactor backend for the HTTP edge |
//! | [`html`] | `oak-html` | HTML tokenizer and span rewriter |
//! | [`webgen`] | `oak-webgen` | synthetic Alexa-like site corpus generator |
//! | [`json`] | `oak-json` | from-scratch JSON used by the report wire format |
//! | [`pattern`] | `oak-pattern` | regex/glob engine for rule scopes |
//! | [`store`] | `oak-store` | durability: write-ahead log, snapshots, crash recovery |
//! | [`obs`] | `oak-obs` | observability: histograms, counters, span traces, Prometheus exposition |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a world, load a
//! page, submit a report, watch Oak activate a rule and rewrite the page.

pub use oak_client as client;
pub use oak_core as core;
pub use oak_edge as edge;
pub use oak_html as html;
pub use oak_http as http;
pub use oak_json as json;
pub use oak_net as net;
pub use oak_obs as obs;
pub use oak_pattern as pattern;
pub use oak_server as server;
pub use oak_store as store;
pub use oak_webgen as webgen;
