//! Integration: hostile and degenerate inputs across crate boundaries.
//! The Oak server faces the public Internet; every decoding layer must
//! shrug off garbage without panicking or corrupting engine state.

use oak::core::prelude::*;
use oak::http::{fetch_tcp, Method, Request, StatusCode, TcpServer};
use oak::server::{OakService, SiteStore, REPORT_PATH};

fn service() -> OakService {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(
        r#"<script src="http://cdn-a.example/jquery.js">"#,
        [r#"<script src="http://cdn-b.example/jquery.js">"#],
    ))
    .unwrap();
    let mut store = SiteStore::new();
    store.add_page("/index.html", "<html>ok</html>");
    OakService::new(oak, store)
}

#[test]
fn hostile_report_bodies_never_poison_the_engine() {
    let service = service();
    use oak::http::Handler;
    let hostile_bodies: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"{".to_vec(),
        b"null".to_vec(),
        br#"{"user":"u","page":"/","entries":[{"url":"x","ip":"i","bytes":1,"time_ms":1e999}]}"#
            .to_vec(),
        br#"{"user":"u","page":"/","entries":[{"url":"x","ip":"i","bytes":-1,"time_ms":1}]}"#
            .to_vec(),
        vec![0xff, 0xfe, 0x00, 0x80],
        br#"{"user":"u","page":"/","entries":"not-a-list"}"#.to_vec(),
        // Deep nesting: the JSON parser bounds recursion.
        {
            let mut v = br#"{"user":"u","page":"/","entries":"#.to_vec();
            v.extend(std::iter::repeat_n(b'[', 500));
            v
        },
    ];
    for body in hostile_bodies {
        let req = Request::new(Method::Post, REPORT_PATH).with_body(body, "application/json");
        let resp = service.handle(&req);
        assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    }
    let stats = service.stats();
    assert_eq!(stats.reports_accepted, 0);
    assert_eq!(stats.reports_rejected, 8);
}

#[test]
fn raw_socket_garbage_does_not_kill_the_server() {
    use std::io::{Read, Write};
    let mut server = TcpServer::start(0, service().into_shared()).unwrap();
    let addr = server.addr();

    // Assorted non-HTTP byte streams.
    for garbage in [
        b"\x00\x01\x02\x03\x04\x05\x06\x07\r\n\r\n".to_vec(),
        b"GET\r\n\r\n".to_vec(),
        b"TRACE / HTTP/9.9\r\n\r\n".to_vec(),
        b"POST /oak/report HTTP/1.1\r\nContent-Length: 99999\r\n\r\nshort".to_vec(),
        vec![b'A'; 100_000], // oversized header block
    ] {
        if let Ok(mut stream) = std::net::TcpStream::connect(addr) {
            let _ = stream.write_all(&garbage);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut sink = Vec::new();
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(2)))
                .unwrap();
            let _ = stream.read_to_end(&mut sink);
        }
    }

    // The server still serves real requests afterwards.
    let resp = fetch_tcp(addr, &Request::new(Method::Get, "/index.html")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    server.shutdown();
}

#[test]
fn hostile_rule_text_cannot_stall_matching() {
    // Rule text and scope patterns are operator input, but a compromised
    // rules file must not be able to hang the report path. The regex
    // engine is linear-time; matching is bounded by text size.
    use oak::core::matching::{match_rule, MatchLevel, NoFetch};

    let big_text = r#"<script>var x = "a";</script>"#.repeat(2_000);
    let domains: Vec<String> = (0..50).map(|i| format!("victim{i}.example")).collect();
    let started = std::time::Instant::now();
    let hit = match_rule(&big_text, &domains, MatchLevel::ExternalJs, &NoFetch);
    assert!(hit.is_none());
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "matching 50 domains against 58 KB of markup took {:?}",
        started.elapsed()
    );

    // Pathological scope regex: Pike VM stays linear.
    let scope = oak::pattern::Scope::parse("re:(a*)*b").unwrap();
    let long_path = "a".repeat(5_000);
    let started = std::time::Instant::now();
    assert!(!scope.applies_to(&long_path));
    assert!(started.elapsed() < std::time::Duration::from_secs(2));
}

#[test]
fn engine_survives_randomized_report_storms() {
    use oak::core::matching::NoFetch;

    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(
        "http://target.example/",
        ["http://mirror.example/target.example/"],
    ))
    .unwrap();

    // A deterministic pseudo-random storm of reports with odd shapes:
    // empty, single-server, duplicate URLs, zero-byte objects, huge times.
    let mut state = 0x12345u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..500 {
        let user = format!("u-{}", rng() % 17);
        let mut report = PerfReport::new(user, "/p");
        let entries = (rng() % 12) as usize;
        for e in 0..entries {
            report.push(ObjectTiming::new(
                format!("http://h{}.example/{e}", rng() % 9),
                format!("10.0.0.{}", rng() % 9),
                rng() % 200_000,
                (rng() % 3_000) as f64,
            ));
        }
        let _ = oak.ingest_report(Instant(i), &report, &NoFetch);
        // Pages keep rendering whatever the state.
        let page = oak.modify_page(
            Instant(i),
            "u-3",
            "/p",
            "<html>x http://target.example/a.js</html>",
        );
        assert!(page.html.contains("<html>"));
    }
}
