//! Torture: the hardened edge under deterministic abuse — over BOTH
//! transport backends.
//!
//! A live server fronting the full Oak service is driven through the
//! `oak::http::fault` chaos clients — slowloris dribbles (single- and
//! multi-connection), oversized heads and bodies, mid-body disconnects,
//! permit hogs, panicking handlers, report floods. After every abuse
//! pattern the suite asserts the three invariants of a resilient edge:
//! the right status code came back, no permit leaked
//! (`active_connections` returns to zero), and a plain request still
//! succeeds.
//!
//! Every scenario runs twice — once over the blocking
//! thread-per-connection backend, once over the epoll reactor — proving
//! the two backends are observably equivalent on every guard status
//! (400/408/413/429/431/500/503) and every recovery path.

use std::sync::Arc;
use std::time::Duration;

use oak::core::prelude::*;
use oak::edge::{AnyServer, Backend};
use oak::http::fault::ChaosClient;
use oak::http::{
    fetch_tcp, Handler, Method, Request, Response, ServerLimits, StatusCode, TransportStats,
};
use oak::server::{AdmissionPolicy, OakService, SiteStore, REPORT_PATH};

const PAGE: &str = r#"<html><head><script src="http://cdn-a.example/jquery.js"></script></head><body>shop</body></html>"#;

fn service() -> OakService {
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(
        r#"<script src="http://cdn-a.example/jquery.js">"#,
        [r#"<script src="http://cdn-b.example/jquery.js">"#],
    ))
    .unwrap();
    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);
    OakService::new(oak, store)
}

/// Tight limits so every abuse pattern trips within test time.
fn tight_limits() -> ServerLimits {
    ServerLimits {
        max_connections: 4,
        max_head_bytes: 2_048,
        max_body_bytes: 8_192,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        drain_timeout: Duration::from_secs(2),
        queue_deadline: Duration::ZERO,
    }
}

/// Starts `handler` on the selected backend with shared stats.
fn start(
    backend: Backend,
    handler: Arc<dyn Handler>,
    limits: ServerLimits,
    stats: Arc<TransportStats>,
) -> AnyServer {
    AnyServer::start_with_obs(backend, 0, handler, limits, stats, None)
        .unwrap_or_else(|e| panic!("{backend} backend failed to start: {e}"))
}

/// The normal-service probe: a plain page fetch must succeed.
fn assert_still_serving(addr: std::net::SocketAddr, context: &str) {
    let resp = fetch_tcp(addr, &Request::new(Method::Get, "/index.html"))
        .unwrap_or_else(|e| panic!("service dead after {context}: {e}"));
    assert_eq!(resp.status, StatusCode::OK, "after {context}");
    assert!(
        resp.body_text().contains("cdn-a.example"),
        "after {context}"
    );
}

/// Spin-waits (bounded) for permits to drain back to zero.
fn assert_permits_recover(server: &AnyServer, context: &str) {
    for _ in 0..100 {
        if server.active_connections() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!(
        "{} connection permit(s) still held after {context} ({} backend)",
        server.active_connections(),
        server.backend()
    );
}

fn abuse_gauntlet(backend: Backend) {
    let stats = Arc::new(TransportStats::default());
    let mut server = start(
        backend,
        service().into_shared(),
        tight_limits(),
        Arc::clone(&stats),
    );
    let addr = server.addr();
    let chaos = ChaosClient::new(addr);

    // 1. Slowloris: one byte per 100 ms against a 300 ms read budget.
    let verdict = chaos
        .dribble(
            b"GET /index.html HTTP/1.1\r\nHost: oak\r\n\r\n",
            1,
            Duration::from_millis(100),
        )
        .expect("slowloris gets an answer");
    assert_eq!(verdict.status, StatusCode::REQUEST_TIMEOUT);
    assert_permits_recover(&server, "slowloris");
    assert_still_serving(addr, "slowloris");

    // 2. Oversized head: 16 KiB of padding against a 2 KiB limit.
    let verdict = chaos
        .oversized_head(16_384)
        .expect("oversized head answered");
    assert_eq!(verdict.status, StatusCode::HEADERS_TOO_LARGE);
    assert_permits_recover(&server, "oversized head");
    assert_still_serving(addr, "oversized head");

    // 3. Oversized body: declared before a byte is sent — rejected up
    // front, no buffering.
    let verdict = chaos
        .oversized_body(REPORT_PATH, 1 << 20)
        .expect("oversized body answered");
    assert_eq!(verdict.status, StatusCode::PAYLOAD_TOO_LARGE);
    assert_permits_recover(&server, "oversized body");
    assert_still_serving(addr, "oversized body");

    // 4. Mid-body disconnects: declared 4 KiB, sent 100 bytes, hung up.
    // Fire-and-forget: the clients never read a verdict, so wait until
    // the accept loop has actually absorbed all four zombies before
    // probing — otherwise the probe can be admitted alongside them and
    // draw a spurious 503 off the still-held permits.
    let accepted_before = stats.snapshot().connections_accepted;
    for _ in 0..4 {
        chaos
            .disconnect_mid_body(REPORT_PATH, 4_096, 100)
            .expect("disconnect client connects");
    }
    for _ in 0..100 {
        if stats.snapshot().connections_accepted >= accepted_before + 4 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_permits_recover(&server, "mid-body disconnects");
    assert_still_serving(addr, "mid-body disconnects");

    // 5. Malformed framing: garbage Content-Length values get 400.
    for head in [
        "POST /oak/report HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello",
        "POST /oak/report HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        "POST /oak/report HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello6",
    ] {
        let verdict = chaos
            .send_raw(head.as_bytes())
            .expect("bad framing answered");
        assert_eq!(verdict.status, StatusCode::BAD_REQUEST, "head: {head:?}");
    }
    assert_permits_recover(&server, "malformed framing");
    assert_still_serving(addr, "malformed framing");

    // 6. Permit exhaustion: hog every permit, watch 503s, release, and
    // watch service come back.
    let hogs: Vec<_> = (0..4).filter_map(|_| chaos.hold_open().ok()).collect();
    assert_eq!(hogs.len(), 4, "hogs grabbed every permit");
    // Give the accept loop a beat to hand out all permits.
    std::thread::sleep(Duration::from_millis(50));
    let verdict = chaos
        .send_raw(b"GET /index.html HTTP/1.1\r\n\r\n")
        .expect("over-capacity connection answered");
    assert_eq!(verdict.status, StatusCode::UNAVAILABLE);
    drop(hogs);
    assert_permits_recover(&server, "permit exhaustion");
    assert_still_serving(addr, "permit exhaustion");

    let snapshot = stats.snapshot();
    assert!(snapshot.timeouts >= 1, "slowloris counted: {snapshot:?}");
    assert!(snapshot.heads_too_large >= 1, "431 counted: {snapshot:?}");
    assert!(snapshot.bodies_too_large >= 1, "413 counted: {snapshot:?}");
    assert!(snapshot.bad_requests >= 3, "400s counted: {snapshot:?}");
    assert!(
        snapshot.connections_rejected >= 1,
        "503 counted: {snapshot:?}"
    );
    assert_eq!(snapshot.panics, 0, "no handler panics in this gauntlet");

    server.shutdown();
}

#[test]
fn edge_survives_the_full_abuse_gauntlet_over_threads() {
    abuse_gauntlet(Backend::Threads);
}

#[test]
fn edge_survives_the_full_abuse_gauntlet_over_epoll() {
    abuse_gauntlet(Backend::Epoll);
}

/// Multi-connection slowloris: eight connections dribbling in lockstep.
/// Each must be answered 408 *independently* — a reactor that serialized
/// deadline handling behind a stalled read would fail several of them —
/// and every permit must come back.
fn concurrent_slowloris(backend: Backend) {
    let limits = ServerLimits {
        max_connections: 16,
        ..tight_limits()
    };
    let stats = Arc::new(TransportStats::default());
    let mut server = start(backend, service().into_shared(), limits, Arc::clone(&stats));
    let chaos = ChaosClient::new(server.addr());

    let mut pool = chaos.concurrent(8).expect("8 connections open");
    let verdicts = pool.dribble_all(
        b"GET /index.html HTTP/1.1\r\nX-Slow: crawl",
        2,
        Duration::from_millis(60),
    );
    assert_eq!(verdicts.len(), 8);
    for (i, verdict) in verdicts.into_iter().enumerate() {
        let resp = verdict.unwrap_or_else(|e| panic!("connection {i} got no verdict: {e}"));
        assert_eq!(
            resp.status,
            StatusCode::REQUEST_TIMEOUT,
            "connection {i} must time out independently"
        );
    }
    assert!(stats.snapshot().timeouts >= 8);
    drop(pool);
    assert_permits_recover(&server, "concurrent slowloris");
    assert_still_serving(server.addr(), "concurrent slowloris");
    server.shutdown();
}

#[test]
fn concurrent_slowloris_each_answered_independently_over_threads() {
    concurrent_slowloris(Backend::Threads);
}

#[test]
fn concurrent_slowloris_each_answered_independently_over_epoll() {
    concurrent_slowloris(Backend::Epoll);
}

/// A handler that panics on demand, proving panic isolation end to end
/// over a real socket.
struct Grenade;

impl Handler for Grenade {
    fn handle(&self, request: &Request) -> Response {
        if request.path() == "/boom" {
            panic!("pulled the pin");
        }
        Response::html("<html>calm</html>".to_owned())
    }
}

fn panics_become_500s(backend: Backend) {
    // Silence the default panic backtrace spew for the intentional panics.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let stats = Arc::new(TransportStats::default());
    let mut server = start(
        backend,
        Arc::new(Grenade),
        tight_limits(),
        Arc::clone(&stats),
    );
    let addr = server.addr();

    for _ in 0..3 {
        let resp = fetch_tcp(addr, &Request::new(Method::Get, "/boom")).unwrap();
        assert_eq!(resp.status, StatusCode::INTERNAL_ERROR);
    }
    let resp = fetch_tcp(addr, &Request::new(Method::Get, "/calm")).unwrap();
    assert_eq!(resp.status, StatusCode::OK);

    assert_eq!(stats.snapshot().panics, 3);
    assert_permits_recover(&server, "handler panics");
    server.shutdown();

    std::panic::set_hook(default_hook);
}

#[test]
fn handler_panics_become_500s_and_service_continues_over_threads() {
    panics_become_500s(Backend::Threads);
}

#[test]
fn handler_panics_become_500s_and_service_continues_over_epoll() {
    panics_become_500s(Backend::Epoll);
}

fn report_floods_throttled(backend: Backend) {
    let service = service()
        .with_admission(AdmissionPolicy {
            report_rate: 1.0,
            report_burst: 3.0,
            ..AdmissionPolicy::default()
        })
        .into_shared();
    let stats = Arc::new(TransportStats::default());
    let mut server = start(backend, service.clone(), tight_limits(), stats);
    let addr = server.addr();

    let mut report = PerfReport::new("u-flood", "/index.html");
    report.push(ObjectTiming::new(
        "http://cdn-a.example/jquery.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    let post = Request::new(Method::Post, REPORT_PATH)
        .with_body(report.to_json().into_bytes(), "application/json")
        .with_header("Cookie", "oak_uid=u-flood");

    let verdicts: Vec<u16> = (0..10)
        .map(|_| fetch_tcp(addr, &post).unwrap().status.0)
        .collect();
    let accepted = verdicts.iter().filter(|&&s| s == 204).count();
    let throttled = verdicts.iter().filter(|&&s| s == 429).count();
    assert_eq!(accepted, 3, "the burst admits exactly 3: {verdicts:?}");
    assert_eq!(throttled, 7, "the rest get 429: {verdicts:?}");
    assert_eq!(service.stats().reports_throttled, 7);

    // Non-report traffic is untouched by the report limiter.
    assert_still_serving(addr, "report flood");
    server.shutdown();
}

#[test]
fn report_floods_are_throttled_with_429_and_recover_over_threads() {
    report_floods_throttled(Backend::Threads);
}

#[test]
fn report_floods_are_throttled_with_429_and_recover_over_epoll() {
    report_floods_throttled(Backend::Epoll);
}

#[test]
fn hanging_script_host_cannot_stall_report_ingest() {
    use oak::core::fetch::{FetchPolicy, FetchStep, FlakyFetcher, ResilientFetcher};
    use oak::http::TcpServer;

    // Every external-script fetch hangs for 30 s; the resilient fetcher
    // caps each attempt at 100 ms.
    let fetcher = ResilientFetcher::new(
        FlakyFetcher::new([FetchStep::Hang(Duration::from_secs(30))]),
        FetchPolicy {
            deadline: Some(Duration::from_millis(100)),
            retries: 0,
            ..FetchPolicy::default()
        },
    );
    let fetch_stats = fetcher.stats_handle();
    let service = service().with_fetcher(fetcher).into_shared();
    let mut server = TcpServer::start_with_limits(0, service, tight_limits()).unwrap();
    let addr = server.addr();

    // A report whose violator only matches at level 3 forces a fetch.
    let mut report = PerfReport::new("u-hang", "/index.html");
    report.push(ObjectTiming::new(
        "http://elsewhere.example/app.js",
        "10.0.0.9",
        30_000,
        900.0,
    ));
    for (host, ms) in [("a", 80.0), ("b", 95.0), ("c", 70.0), ("d", 90.0)] {
        report.push(ObjectTiming::new(
            format!("http://{host}.example/o.png"),
            format!("10.0.1.{ms}"),
            30_000,
            ms,
        ));
    }
    let post = Request::new(Method::Post, REPORT_PATH)
        .with_body(report.to_json().into_bytes(), "application/json")
        .with_header("Cookie", "oak_uid=u-hang");

    let started = std::time::Instant::now();
    let resp = fetch_tcp(addr, &post).unwrap();
    assert_eq!(resp.status.0, 204);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "ingest took {:?} against a hanging host",
        started.elapsed()
    );
    assert!(fetch_stats.snapshot().timeouts >= 1);
    server.shutdown();
}

/// Every turn-away on the shed and throttle paths — the admission 429,
/// the overload controller's 503s (pre-body report shed at the admit
/// hook, page and scrape sheds at dispatch), and the permit-exhaustion
/// 503 — must be byte-identical across the two backends, and every one
/// must carry `Retry-After` so a polite client knows when to come back.
#[test]
fn shed_and_throttle_responses_are_byte_identical_across_backends() {
    use oak::server::{OverloadController, OverloadPolicy, PressureSample};
    use std::io::{Read, Write};

    /// One raw request on a fresh connection; returns every byte the
    /// server sent back (bounded by the read timeout on keep-alive).
    fn raw_exchange(addr: std::net::SocketAddr, request: &[u8]) -> Vec<u8> {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let mut stream = stream;
        stream.write_all(request).expect("send request");
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
            }
        }
        out
    }

    fn capture(backend: Backend) -> Vec<(&'static str, Vec<u8>)> {
        let controller = OverloadController::driven(OverloadPolicy::default());
        let service = service()
            .with_admission(AdmissionPolicy {
                report_rate: 1.0,
                report_burst: 1.0,
                ..AdmissionPolicy::default()
            })
            .with_overload(Arc::clone(&controller))
            .into_shared();
        let stats = Arc::new(TransportStats::default());
        let mut server = start(backend, service, tight_limits(), stats);
        let addr = server.addr();
        let chaos = ChaosClient::new(addr);
        let mut transcripts = Vec::new();

        let body = r#"{"user":"u-parity","page":"/index.html","entries":[]}"#;
        let post = format!(
            "POST /oak/report HTTP/1.1\r\nCookie: oak_uid=u-parity\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );

        // Throttle: the burst of one is spent, the next report gets 429.
        let first = raw_exchange(addr, post.as_bytes());
        assert!(
            first.starts_with(b"HTTP/1.1 204"),
            "burst admits the first report on {backend}"
        );
        transcripts.push(("throttle-429", raw_exchange(addr, post.as_bytes())));

        // Severity 3: everything but health sheds.
        controller.observe(
            &PressureSample {
                queue_depth: 128,
                ..PressureSample::default()
            },
            0,
        );
        transcripts.push(("report-admit-shed", raw_exchange(addr, post.as_bytes())));
        transcripts.push((
            "page-dispatch-shed",
            raw_exchange(addr, b"GET /index.html HTTP/1.1\r\n\r\n"),
        ));
        transcripts.push((
            "scrape-dispatch-shed",
            raw_exchange(addr, b"GET /oak/stats HTTP/1.1\r\n\r\n"),
        ));
        let health = raw_exchange(addr, b"GET /oak/health HTTP/1.1\r\n\r\n");
        assert!(
            health.starts_with(b"HTTP/1.1 200"),
            "health is never shed on {backend}"
        );

        // Permit exhaustion: hog every permit, capture the 503.
        let hogs: Vec<_> = (0..4).filter_map(|_| chaos.hold_open().ok()).collect();
        assert_eq!(hogs.len(), 4, "hogs grabbed every permit on {backend}");
        std::thread::sleep(Duration::from_millis(50));
        transcripts.push((
            "over-capacity",
            raw_exchange(addr, b"GET /index.html HTTP/1.1\r\n\r\n"),
        ));
        drop(hogs);

        server.shutdown();
        transcripts
    }

    let threads = capture(Backend::Threads);
    let epoll = capture(Backend::Epoll);
    for ((label, from_threads), (label_e, from_epoll)) in threads.iter().zip(epoll.iter()) {
        assert_eq!(label, label_e);
        assert!(
            !from_threads.is_empty(),
            "{label}: no bytes from the threads backend"
        );
        assert_eq!(
            from_threads,
            from_epoll,
            "{label}: backends disagree\n  threads: {:?}\n  epoll:   {:?}",
            String::from_utf8_lossy(from_threads),
            String::from_utf8_lossy(from_epoll)
        );
        let text = String::from_utf8_lossy(from_threads);
        assert!(
            text.contains("Retry-After: 1"),
            "{label}: turn-away must hint a retry\n{text}"
        );
    }
}
