//! Conformance suite for `GET /oak/metrics`: a seeded deterministic
//! workload driven through the real service, its full Prometheus text
//! exposition pinned against a golden file, every scrape run through
//! the line-grammar validator, and a concurrent-scrape torture check.
//!
//! Regenerate the golden file after an intentional metrics change with
//! `OAK_BLESS=1 cargo test --test metrics_conformance`.

use std::path::PathBuf;
use std::sync::Arc;

use oak::core::engine::{Oak, OakConfig};
use oak::core::rule::Rule;
use oak::core::Instant;
use oak::http::{Handler, Method, Request};
use oak::obs::step_clock;
use oak::server::{
    OakService, OverloadController, OverloadPolicy, ServiceObs, SiteStore, METRICS_PATH,
    REPORT_PATH, STATS_PATH,
};

const PAGE: &str = r#"<html><head><script src="http://cdn-a.example/lib.js"></script></head><body>hi</body></html>"#;

fn report_json(user: &str) -> String {
    let mut report = oak::core::report::PerfReport::new(user, "/index.html");
    report.push(oak::core::report::ObjectTiming::new(
        "http://cdn-a.example/lib.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    for good in 0..4u64 {
        report.push(oak::core::report::ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 5.0,
        ));
    }
    report.to_json()
}

fn get(service: &OakService, path: &str, user: Option<&str>) -> oak::http::Response {
    let mut request = Request::new(Method::Get, path);
    if let Some(user) = user {
        request.headers.set("Cookie", format!("oak_uid={user}"));
    }
    service.handle(&request)
}

fn post_report(service: &OakService, user: &str) -> oak::http::Response {
    let mut request = Request::new(Method::Post, REPORT_PATH)
        .with_body(report_json(user).into_bytes(), "application/json");
    request.headers.set("Cookie", format!("oak_uid={user}"));
    service.handle(&request)
}

fn post_report_binary(service: &OakService, user: &str) -> oak::http::Response {
    let report =
        oak::core::report::PerfReport::from_json(&report_json(user)).expect("fixture parses");
    let mut request = Request::new(Method::Post, REPORT_PATH)
        .with_body(report.to_binary(), oak::core::wire::OAK_REPORT_CONTENT_TYPE);
    request.headers.set("Cookie", format!("oak_uid={user}"));
    service.handle(&request)
}

/// The seeded workload: every duration comes from a step clock (each
/// reading advances exactly 50µs), so two runs are byte-identical.
fn seeded_service() -> Arc<OakService> {
    let obs = ServiceObs::new(step_clock(50_000), 32, 0);
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::remove(
        r#"<script src="http://cdn-a.example/lib.js">"#,
    ))
    .expect("valid rule");
    let mut site = SiteStore::new();
    site.add_page("/index.html", PAGE);
    let service = OakService::new(oak, site)
        .with_clock(|| Instant(1_000))
        .with_obs(obs)
        // Driven mode: the controller never samples on its own, so the
        // overload families scrape deterministically (Nominal, zeroes).
        .with_overload(OverloadController::driven(OverloadPolicy::default()))
        .into_shared();

    // Deterministic traffic mix: three JSON-reporting users and one
    // binary-reporting user, page loads, a malformed report (400), a
    // miss (404), and a health probe.
    for user in ["u-1", "u-2", "u-3"] {
        assert_eq!(post_report(&service, user).status.0, 204);
        assert_eq!(get(&service, "/index.html", Some(user)).status.0, 200);
    }
    assert_eq!(post_report_binary(&service, "u-4").status.0, 204);
    assert_eq!(get(&service, "/index.html", Some("u-4")).status.0, 200);
    assert_eq!(get(&service, "/index.html", Some("u-1")).status.0, 200);
    let bad = Request::new(Method::Post, REPORT_PATH)
        .with_body(b"{not json".to_vec(), "application/json");
    assert_eq!(service.handle(&bad).status.0, 400);
    assert_eq!(get(&service, "/missing.html", None).status.0, 404);
    assert_eq!(get(&service, "/oak/health", None).status.0, 200);
    service
}

fn scrape(service: &OakService) -> String {
    let response = get(service, METRICS_PATH, None);
    assert_eq!(response.status.0, 200);
    assert_eq!(
        response.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    response.body_text()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_conformance.prom")
}

#[test]
fn seeded_workload_exposition_matches_the_golden_file() {
    let service = seeded_service();
    let text = scrape(&service);

    if std::env::var_os("OAK_BLESS").is_some() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), &text).unwrap();
    }
    let expected = std::fs::read_to_string(golden_path()).expect(
        "golden file missing — regenerate with OAK_BLESS=1 cargo test --test metrics_conformance",
    );
    assert_eq!(
        text, expected,
        "exposition drifted from the golden file; if intentional, \
         regenerate with OAK_BLESS=1"
    );
}

#[test]
fn exposition_passes_the_grammar_validator_and_spans_the_stack() {
    let service = seeded_service();
    let text = scrape(&service);

    let errors = oak::obs::validate_exposition(&text);
    assert!(errors.is_empty(), "grammar violations: {errors:?}");

    let families: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert!(
        families.len() >= 12,
        "only {} metric families exposed: {families:?}",
        families.len()
    );
    for subsystem in ["oak_http_", "oak_core_", "oak_wal_", "oak_fetch_"] {
        assert!(
            families.iter().any(|f| f.starts_with(subsystem)),
            "no {subsystem}* family in {families:?}"
        );
    }

    // The workload is visible in the samples, not just the families.
    let samples = oak::obs::parse_samples(&text);
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no {name} sample"))
            .value
    };
    assert_eq!(find("oak_core_reports_ingested_total"), 4.0);
    assert_eq!(find("oak_core_ingest_duration_us_count"), 4.0);
    assert_eq!(find("oak_core_report_parse_duration_us_count"), 5.0);
    assert_eq!(find("oak_html_rewrite_duration_us_count"), 5.0);
    // Decode outcomes carry the wire encoding: 3 JSON + 1 binary
    // succeeded, the malformed JSON report is the one error.
    let labeled_sum = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    assert_eq!(labeled_sum("oak_report_decode_total"), 4.0);
    assert_eq!(labeled_sum("oak_report_decode_errors_total"), 1.0);
    let responses: f64 = labeled_sum("oak_http_responses_total");
    assert_eq!(responses, 12.0, "12 requests preceded the scrape");
}

#[test]
fn two_scrapes_of_identical_state_are_byte_identical() {
    let service = seeded_service();
    // Scraping is itself a counted, traced request, so the response
    // counter and trace counters legitimately move between scrapes;
    // mask those families and require everything else — bucket lines,
    // sums, label order — identical.
    let strip = |text: String| {
        text.lines()
            .filter(|l| !l.contains("oak_http_responses_total") && !l.contains("oak_trace_"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = strip(scrape(&service));
    let b = strip(scrape(&service));
    assert_eq!(a, b);
}

#[test]
fn scrapes_under_concurrent_ingest_never_panic_or_tear() {
    let service = seeded_service();
    let writer_service = Arc::clone(&service);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer_stop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut sent = 0u64;
        while !writer_stop.load(std::sync::atomic::Ordering::Relaxed) {
            let user = format!("u-{}", sent % 7);
            post_report(&writer_service, &user);
            get(&writer_service, "/index.html", Some(&user));
            sent += 1;
        }
        sent
    });

    // Both scrape endpoints share the aggregates snapshot pass; hammer
    // them while ingest runs and require valid, monotone output.
    let mut last_reports = 0.0f64;
    for _ in 0..200 {
        let text = scrape(&service);
        let errors = oak::obs::validate_exposition(&text);
        assert!(errors.is_empty(), "scrape under ingest invalid: {errors:?}");
        let samples = oak::obs::parse_samples(&text);
        let reports = samples
            .iter()
            .find(|s| s.name == "oak_core_reports_ingested_total")
            .expect("ingest counter present")
            .value;
        assert!(
            reports >= last_reports,
            "ingest counter went backwards: {reports} < {last_reports}"
        );
        last_reports = reports;
        for sample in samples.iter().filter(|s| s.name.ends_with("_count")) {
            assert!(sample.value >= 0.0 && sample.value.fract() == 0.0);
        }
        let stats = get(&service, STATS_PATH, None);
        assert_eq!(stats.status.0, 200);
        oak::json::parse(&stats.body_text()).expect("stats JSON stays well-formed under ingest");
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let sent = writer.join().expect("writer thread must not panic");
    assert!(sent > 0, "writer made progress");
}
