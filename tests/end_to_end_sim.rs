//! End-to-end integration over the simulated Internet: corpus → browser →
//! reports → Oak engine → rewritten pages → better load times.

use oak::client::{rules, BrowserConfig, SimSession, Universe};
use oak::core::prelude::*;
use oak::net::{Region, SimTime};
use oak::webgen::{Corpus, CorpusConfig};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        sites: 20,
        seed: 4242,
        providers: 50,
        persistent_impairment_rate: 0.30,
        ..CorpusConfig::default()
    })
}

fn session_with_rules(corpus: &Corpus, region: Region) -> SimSession<'_> {
    let oak = Oak::new(OakConfig::default());
    for site in &corpus.sites {
        for (_, rule) in rules::rules_for_site(site, rules::closest_replica(region)) {
            oak.add_rule(rule).expect("generated rules validate");
        }
    }
    SimSession::new(corpus, oak)
}

#[test]
fn oak_converges_and_does_not_regress() {
    let corpus = corpus();
    let client = *corpus
        .clients
        .iter()
        .find(|&&c| corpus.world.client(c).region == Region::Europe)
        .unwrap();
    let mut session = session_with_rules(&corpus, Region::Europe);

    let mut oak_wins = 0;
    let mut comparable = 0;
    for site_index in 0..corpus.sites.len() {
        // Converge over four visits.
        let mut final_plt = f64::INFINITY;
        for round in 0..4u64 {
            let (load, _) = session.visit(site_index, client, SimTime::from_minutes(round * 30));
            final_plt = load.plt_ms;
        }
        let default_plt = session
            .visit_default(site_index, client, SimTime::from_minutes(90))
            .plt_ms;
        comparable += 1;
        if final_plt <= default_plt * 1.15 {
            // Within noise or better.
            oak_wins += 1;
        }
    }
    assert!(
        oak_wins as f64 >= comparable as f64 * 0.8,
        "Oak should match or beat the default on most sites ({oak_wins}/{comparable})"
    );
}

#[test]
fn violators_are_detected_in_the_wild() {
    let corpus = corpus();
    let mut session = SimSession::new(&corpus, Oak::new(OakConfig::default()));
    let mut sites_with_violations = 0;
    for site_index in 0..corpus.sites.len() {
        let mut any = false;
        for &client in corpus.clients.iter().take(5) {
            let (_, outcome) = session.visit(site_index, client, SimTime::from_hours(13));
            any |= !outcome.violations.is_empty();
        }
        sites_with_violations += usize::from(any);
    }
    assert!(
        sites_with_violations * 2 > corpus.sites.len(),
        "more than half the sites should show at least one violator across vantage points \
         (got {sites_with_violations}/{})",
        corpus.sites.len()
    );
}

#[test]
fn rewritten_pages_change_the_fetch_targets() {
    let corpus = corpus();
    let client = corpus.clients[0];
    let region = corpus.world.client(client).region;
    let mut session = session_with_rules(&corpus, region);
    let replica = rules::closest_replica(region);

    // Find a site where a rule activates within a few visits.
    let mut verified = false;
    'sites: for site_index in 0..corpus.sites.len() {
        for round in 0..3u64 {
            let (_, outcome) = session.visit(site_index, client, SimTime::from_minutes(round * 30));
            if !outcome.activated.is_empty() {
                // The next load should contact the replica.
                let (load, _) =
                    session.visit(site_index, client, SimTime::from_minutes(round * 30 + 5));
                if load.fetches.iter().any(|f| f.domain == replica) {
                    verified = true;
                    break 'sites;
                }
            }
        }
    }
    assert!(
        verified,
        "an activated rule must redirect fetches to the replica"
    );
}

#[test]
fn reports_round_trip_the_wire_format() {
    let corpus = corpus();
    let universe = Universe::new(&corpus);
    let mut browser =
        oak::client::Browser::new(corpus.clients[2], "u-wire", BrowserConfig::default());
    let site = &corpus.sites[0];
    let load = browser.load_page(&universe, site, &site.html, &[], SimTime::from_hours(1));
    let json = load.report.to_json();
    let decoded = PerfReport::from_json(&json).unwrap();
    assert_eq!(decoded, load.report);
    assert_eq!(decoded.entries.len(), load.fetches.len());
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let corpus = corpus();
        let client = corpus.clients[1];
        let region = corpus.world.client(client).region;
        let mut session = session_with_rules(&corpus, region);
        let mut plts = Vec::new();
        for site_index in 0..5 {
            for round in 0..3u64 {
                let (load, _) =
                    session.visit(site_index, client, SimTime::from_minutes(round * 30));
                plts.push(load.plt_ms);
            }
        }
        (plts, session.oak.log().len())
    };
    let (plts_a, log_a) = run();
    let (plts_b, log_b) = run();
    assert_eq!(plts_a, plts_b);
    assert_eq!(log_a, log_b);
}
