//! End-to-end span-trace test: one report POST and one page GET driven
//! through `OakService::handle` on a deterministic step clock, with the
//! exact span tree — names, nesting, and durations — asserted against
//! what the stack is wired to record.

use std::sync::Arc;

use oak::core::engine::{Oak, OakConfig};
use oak::core::rule::Rule;
use oak::core::Instant;
use oak::http::{Handler, Method, Request};
use oak::obs::step_clock;
use oak::server::{OakService, ServiceObs, SiteStore, REPORT_PATH, TRACE_PATH};

const PAGE: &str = r#"<html><head><script src="http://cdn-a.example/lib.js"></script></head><body>hi</body></html>"#;

fn violating_report(user: &str) -> String {
    let mut report = oak::core::report::PerfReport::new(user, "/index.html");
    report.push(oak::core::report::ObjectTiming::new(
        "http://cdn-a.example/lib.js",
        "10.0.0.1",
        30_000,
        900.0,
    ));
    for good in 0..4u64 {
        report.push(oak::core::report::ObjectTiming::new(
            format!("http://good{good}.example/obj"),
            format!("10.1.{good}.1"),
            30_000,
            80.0 + good as f64 * 5.0,
        ));
    }
    report.to_json()
}

/// Flattens a trace into `(name, depth, dur_us)` rows.
fn tree(trace: &oak::obs::Trace) -> Vec<(&'static str, u16, u64)> {
    trace
        .spans
        .iter()
        .map(|s| (s.name, s.depth, s.dur_ns / 1_000))
        .collect()
}

#[test]
fn report_post_and_page_get_produce_the_exact_span_tree() {
    // Every clock reading advances 1ms, so span durations count the
    // clock reads between a span's open and close — pinned below.
    let obs = ServiceObs::new(step_clock(1_000_000), 8, 0);
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::remove(
        r#"<script src="http://cdn-a.example/lib.js">"#,
    ))
    .expect("valid rule");
    let mut site = SiteStore::new();
    site.add_page("/index.html", PAGE);
    let service = OakService::new(oak, site)
        .with_clock(|| Instant(1_000))
        .with_obs(Arc::clone(&obs))
        .into_shared();

    let mut post = Request::new(Method::Post, REPORT_PATH)
        .with_body(violating_report("u-1").into_bytes(), "application/json");
    post.headers.set("Cookie", "oak_uid=u-1");
    assert_eq!(service.handle(&post).status.0, 204);

    let mut get = Request::new(Method::Get, "/index.html");
    get.headers.set("Cookie", "oak_uid=u-1");
    let page = service.handle(&get);
    assert_eq!(page.status.0, 200);
    assert!(
        !page.body_text().contains("cdn-a.example"),
        "the activated rule removes the violator tag"
    );

    let traces = obs.tracer.recent();
    assert_eq!(traces.len(), 2, "two requests, two traces");

    // The report's trace: body parse, then ingest with detection and
    // rule matching nested inside it.
    let post_trace = &traces[0];
    assert_eq!(post_trace.id, 1);
    assert_eq!(post_trace.name, "POST /oak/report");
    assert_eq!(post_trace.dropped, 0);
    assert_eq!(
        tree(post_trace),
        vec![
            ("parse_report", 0, 1_000),
            ("ingest", 0, 8_000),
            ("detect", 1, 1_000),
            ("match", 1, 2_000),
        ]
    );
    assert_eq!(
        post_trace.to_text(),
        "trace 1 POST /oak/report dur=14000us spans=4\n\
         \x20 parse_report start=+2000us dur=1000us\n\
         \x20 ingest start=+5000us dur=8000us\n\
         \x20   detect start=+7000us dur=1000us\n\
         \x20   match start=+10000us dur=2000us\n"
    );

    // The page's trace: the engine's modify_page with the HTML
    // rewriter's span nested inside it.
    let get_trace = &traces[1];
    assert_eq!(get_trace.id, 2);
    assert_eq!(get_trace.name, "GET /index.html");
    assert_eq!(get_trace.dropped, 0);
    assert_eq!(
        tree(get_trace),
        vec![("modify_page", 0, 5_000), ("rewrite", 1, 1_000)]
    );
    assert_eq!(
        get_trace.to_text(),
        "trace 2 GET /index.html dur=7000us spans=2\n\
         \x20 modify_page start=+1000us dur=5000us\n\
         \x20   rewrite start=+3000us dur=1000us\n"
    );

    // Traces are served over the wire too; the scrape's own trace only
    // completes after its response is built, so it sees exactly two.
    let recent = service.handle(&Request::new(Method::Get, TRACE_PATH));
    assert_eq!(recent.status.0, 200);
    let doc = oak::json::parse(&recent.body_text()).expect("trace JSON");
    let rows = doc.as_array().expect("array of traces");
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0].get("name").and_then(|v| v.as_str()),
        Some("POST /oak/report")
    );
    assert_eq!(
        rows[1]
            .get("spans")
            .and_then(|v| v.as_array())
            .map(|s| s.len()),
        Some(2)
    );
}
