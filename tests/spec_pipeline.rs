//! Integration: operator-authored rule specs (§4.1 text format) driving
//! the whole pipeline — spec → engine → simulated clients → rewritten
//! pages → audit.

use oak::client::SimSession;
use oak::core::audit::audit;
use oak::core::prelude::*;
use oak::core::spec::parse_rules;
use oak::net::SimTime;
use oak::webgen::{Corpus, CorpusConfig, Inclusion};

/// Builds a spec file covering one corpus site's src-included external
/// domains, then runs the loop and checks the rewrites actually happen.
#[test]
fn spec_authored_rules_drive_the_full_loop() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 10,
        seed: 31337,
        providers: 40,
        persistent_impairment_rate: 0.5,
        ..CorpusConfig::default()
    });

    // Author the spec the way an operator would: one Type 2 prefix rule
    // per src-included external domain, two-violation quota on one rule
    // to exercise the option syntax.
    let site_index = 0;
    let site = &corpus.sites[site_index];
    let mut spec = String::from("# generated operator rules\n");
    let mut domains: Vec<&str> = site
        .objects
        .iter()
        .filter(|o| o.external && matches!(o.inclusion, Inclusion::SrcAttr))
        .map(|o| o.domain.as_str())
        .collect();
    domains.sort_unstable();
    domains.dedup();
    for (i, domain) in domains.iter().enumerate() {
        let options = if i == 0 { ", violations = 2" } else { "" };
        spec.push_str(&format!(
            "(2, \"http://{domain}/\", \"http://replica-na.example/{domain}/\", 0, *{options})\n"
        ));
    }

    let rules = parse_rules(&spec).expect("generated spec parses");
    assert_eq!(rules.len(), domains.len());
    assert_eq!(rules[0].policy.violations_required, 2);

    let oak = Oak::new(OakConfig::default());
    for rule in rules {
        oak.add_rule(rule).expect("spec rules validate");
    }
    let mut session = SimSession::new(&corpus, oak);

    // Drive every client through several visits.
    let mut any_replica_fetch = false;
    for round in 0..5u64 {
        for &client in corpus.clients.iter().take(8) {
            let (load, _) = session.visit(site_index, client, SimTime::from_minutes(round * 30));
            any_replica_fetch |= load
                .fetches
                .iter()
                .any(|f| f.domain == "replica-na.example");
        }
    }
    assert!(
        any_replica_fetch,
        "at least one client should be redirected to the replica"
    );

    // The audit view reflects what happened.
    let summary = audit(&session.oak.log());
    assert!(summary.total_activations() > 0);
    assert!(summary.users > 0);
    assert!(summary.to_string().contains("oak audit"));
}

/// The engine never confuses users: one user's violations must not leak
/// into another user's pages, across the whole pipeline.
#[test]
fn per_user_isolation_end_to_end() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 6,
        seed: 99,
        providers: 30,
        persistent_impairment_rate: 0.6,
        ..CorpusConfig::default()
    });
    let oak = Oak::new(OakConfig::default());
    for site in &corpus.sites {
        for (_, rule) in oak::client::rules::rules_for_site(site, "replica-na.example") {
            let _ = oak.add_rule(rule);
        }
    }
    let mut session = SimSession::new(&corpus, oak);

    // Client A visits twice (rules can activate); client B never visits.
    let a = corpus.clients[0];
    session.visit(0, a, SimTime::from_hours(1));
    session.visit(0, a, SimTime::from_hours(2));

    let user_b = "u-never-visited";
    assert!(
        session.oak.active_rules(user_b).is_empty(),
        "a user who never reported must have no active rules"
    );
    let page = session
        .oak
        .modify_page(Instant::ZERO, user_b, "/index.html", &corpus.sites[0].html);
    assert_eq!(
        page.html, corpus.sites[0].html,
        "other users see the default page"
    );
}
