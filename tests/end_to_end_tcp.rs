//! End-to-end integration over real TCP: a corpus page served by the Oak
//! proxy, a client that measures over the simulated network but speaks
//! real HTTP to the proxy.

use std::sync::Arc;

use oak::client::{rules, Universe};
use oak::core::prelude::*;
use oak::http::cookie::{get_cookie, OAK_USER_COOKIE};
use oak::http::{fetch_tcp, Method, Request, TcpServer};
use oak::net::SimTime;
use oak::server::{OakService, SiteStore, REPORT_PATH};
use oak::webgen::{Corpus, CorpusConfig};

/// Runs one corpus site through a live proxy: returns (activation events,
/// whether the served page was visibly rewritten to a replica).
fn run_site(corpus: &Corpus, site_index: usize) -> (usize, bool) {
    let universe = Universe::new(corpus);
    let client = corpus.clients[0];
    let region = corpus.world.client(client).region;
    let site = &corpus.sites[site_index];

    // Engine with this site's rules; corpus-backed script fetching so
    // level-3 matching works across the wire, too.
    let oak = Oak::new(OakConfig::default());
    for (_, rule) in rules::rules_for_site(site, rules::closest_replica(region)) {
        oak.add_rule(rule).unwrap();
    }
    let mut store = SiteStore::new();
    store.add_page(&site.index_path, &site.html);

    let corpus_for_fetcher = corpus.clone();
    let service = OakService::new(oak, store)
        .with_fetcher(move |url: &str| corpus_for_fetcher.script_body(url))
        .into_shared();
    let mut server = TcpServer::start(0, Arc::clone(&service) as _).unwrap();
    let addr = server.addr();

    // 1. Fetch the page over HTTP; get the cookie.
    let resp = fetch_tcp(addr, &Request::new(Method::Get, &site.index_path)).unwrap();
    assert!(resp.status.is_success());
    let user = get_cookie(resp.header("set-cookie").unwrap(), OAK_USER_COOKIE)
        .unwrap()
        .to_owned();

    // 2. "Load" the delivered page over the simulated network, POST the
    //    real report, reload; repeat so rules can converge.
    let mut browser =
        oak::client::Browser::new(client, user.clone(), oak::client::BrowserConfig::default());
    let mut saw_rewrite = false;
    let mut delivered = resp.body_text();
    for round in 0..4u64 {
        let load = browser.load_page(
            &universe,
            site,
            &delivered,
            &[],
            SimTime::from_hours(13 + round),
        );
        assert!(!load.report.entries.is_empty());
        let post = Request::new(Method::Post, REPORT_PATH)
            .with_body(load.report.to_json().into_bytes(), "application/json")
            .with_header("Cookie", &format!("{OAK_USER_COOKIE}={user}"));
        assert_eq!(fetch_tcp(addr, &post).unwrap().status.0, 204);

        let reload = Request::new(Method::Get, &site.index_path)
            .with_header("Cookie", &format!("{OAK_USER_COOKIE}={user}"));
        let resp = fetch_tcp(addr, &reload).unwrap();
        delivered = resp.body_text();
        if delivered.contains("replica-") {
            saw_rewrite = true;
            break;
        }
    }
    let activations = service.with_oak(|oak| {
        oak.log()
            .iter()
            .filter(|e| matches!(e.action, oak::core::engine::LogAction::Activated { .. }))
            .count()
    });
    server.shutdown();
    (activations, saw_rewrite)
}

/// Serve corpus sites' real generated HTML through the proxy, report
/// simulated measurements, observe the rewrite over the wire. Whether a
/// given site shows a *visible* rewrite depends on which provider
/// misbehaves for this client (a hidden/dynamic provider's rule activates
/// without a textual match), so the test drives several sites and
/// requires at least one to rewrite and several to activate.
#[test]
fn corpus_sites_through_live_proxy() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 5,
        seed: 777,
        providers: 30,
        persistent_impairment_rate: 0.5,
        ..CorpusConfig::default()
    });
    let mut total_activations = 0;
    let mut any_rewrite = false;
    for site_index in 0..corpus.sites.len() {
        let (activations, rewrote) = run_site(&corpus, site_index);
        total_activations += activations;
        any_rewrite |= rewrote;
    }
    assert!(
        total_activations > 0,
        "rules should activate from reported measurements"
    );
    assert!(
        any_rewrite,
        "at least one site's served page should be visibly rewritten"
    );
}
