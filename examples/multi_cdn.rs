//! Multi-CDN management with selection policies.
//!
//! §4.2.4: "Oak further allows for the specification of multiple
//! alternatives in each rule. By default, Oak progresses through the list
//! linearly with each activation, however this can further be configured
//! via a selection policy."
//!
//! An operator fronted by three mirror CDNs wants two things when the
//! primary degrades: users spread across the mirrors (no thundering
//! herd), and a user whose assigned mirror also misbehaves moved along
//! automatically. `SelectionPolicy::UserHash` gives both.
//!
//! Run with: `cargo run --example multi_cdn`

use oak::core::prelude::*;

const PRIMARY: &str = "http://cdn-primary.example/";
const MIRRORS: [&str; 3] = [
    "http://mirror-aa.example/cdn-primary.example/",
    "http://mirror-bb.example/cdn-primary.example/",
    "http://mirror-cc.example/cdn-primary.example/",
];

/// A report where the primary CDN is the clear violator for `user`.
fn primary_down(user: &str) -> PerfReport {
    let mut r = PerfReport::new(user, "/");
    r.push(ObjectTiming::new(
        "http://cdn-primary.example/app.js",
        "10.0.0.1",
        30_000,
        1_100.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.2",
        30_000,
        82.0,
    ));
    r.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.2",
        30_000,
        91.0,
    ));
    r.push(ObjectTiming::new(
        "http://fonts.example/f.woff",
        "10.0.0.3",
        30_000,
        77.0,
    ));
    r.push(ObjectTiming::new(
        "http://api.example/v1",
        "10.0.0.4",
        30_000,
        95.0,
    ));
    r
}

fn main() {
    let oak = Oak::new(OakConfig::default());
    let rule_id = oak
        .add_rule(
            Rule::replace_identical(PRIMARY, MIRRORS).with_selection(SelectionPolicy::UserHash),
        )
        .unwrap();
    println!("rule {rule_id}: {PRIMARY} → three mirrors, user-hash selection\n");

    // The primary has a bad day for everyone; watch the user population
    // spread across mirrors instead of stampeding the first one.
    let mut per_mirror = [0usize; 3];
    for i in 0..30 {
        let user = format!("user-{i:02}");
        oak.ingest_report(Instant(i), &primary_down(&user), &NoFetch);
        let index = oak.active_rules(&user)[0].1.alternative_index;
        per_mirror[index] += 1;
    }
    println!("30 affected users spread across mirrors: {per_mirror:?}");
    assert!(per_mirror.iter().all(|&n| n > 0), "every mirror takes load");

    // One user's assigned mirror also melts down → Oak walks them to the
    // next mirror, wrap-around, without touching anyone else.
    let victim = "user-07";
    let bystander = "user-08";
    let bystander_before = oak.active_rules(bystander)[0].1.alternative_index;
    let before = oak.active_rules(victim)[0].1.alternative_index;
    let mirror_host = MIRRORS[before]
        .trim_start_matches("http://")
        .split('/')
        .next()
        .unwrap();
    let mut mirror_down = primary_down(victim);
    mirror_down.entries[0] = ObjectTiming::new(
        format!("http://{mirror_host}/app.js"),
        "10.0.0.9",
        30_000,
        2_500.0,
    );
    let outcome = oak.ingest_report(Instant(99), &mirror_down, &NoFetch);
    assert_eq!(outcome.advanced, vec![rule_id]);
    let after = oak.active_rules(victim)[0].1.alternative_index;
    println!("\n{victim}: mirror {before} degraded → moved to mirror {after} (wrap-around walk)");
    assert_eq!(after, (before + 1) % MIRRORS.len());

    // Everyone else is untouched: per-user state, per-user decisions.
    assert_eq!(
        oak.active_rules(bystander)[0].1.alternative_index,
        bystander_before
    );
    println!("other users keep their assignments — decisions stay per user");
}
