//! Quickstart: the whole Oak loop in one file, no simulation.
//!
//! A site includes jQuery from `cdn-a.example`. One user's reports show
//! that CDN far out of family; Oak activates the operator's Type 2 rule
//! and rewrites that user's pages to a mirror — other users keep the
//! default.
//!
//! Run with: `cargo run --example quickstart`

use oak::core::prelude::*;

fn main() {
    // ── Operator setup ──────────────────────────────────────────────
    // The rule from the paper's §4.1 example, written via the spec text
    // format: Type 2 (identical object, alternative source), never
    // expires, site-wide.
    let rule = oak::core::spec::parse_rule(
        r#"(2,
             "<script src=\"http://cdn-a.example/jquery.js\">",
             "<script src=\"http://cdn-b.example/jquery.js\">",
             0,
             *)"#,
    )
    .expect("rule spec parses");

    let oak = Oak::new(OakConfig::default());
    let rule_id = oak.add_rule(rule).expect("rule is valid");
    println!("operator registered {rule_id}: cdn-a.example → cdn-b.example");

    // ── A client's performance report arrives ───────────────────────
    // Five servers; cdn-a is an order of magnitude slower than the rest.
    let mut report = PerfReport::new("u-alice", "/index.html");
    report.push(ObjectTiming::new(
        "http://cdn-a.example/jquery.js",
        "10.0.0.1",
        30_000,
        950.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/hero.png",
        "10.0.0.2",
        30_000,
        88.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/icons.png",
        "10.0.0.2",
        30_000,
        74.0,
    ));
    report.push(ObjectTiming::new(
        "http://fonts.example/sans.woff",
        "10.0.0.3",
        30_000,
        81.0,
    ));
    report.push(ObjectTiming::new(
        "http://api.example/boot.js",
        "10.0.0.4",
        30_000,
        95.0,
    ));

    println!(
        "\nu-alice reports {} objects ({} bytes on the wire)",
        report.entries.len(),
        report.wire_size()
    );

    let outcome = oak.ingest_report(Instant::ZERO, &report, &NoFetch);
    for v in &outcome.violations {
        println!(
            "violator detected: {} ({}) — severity {:.1}×MAD past the median",
            v.ip,
            v.domains.join(", "),
            v.kind.severity()
        );
    }
    assert_eq!(outcome.activated, vec![rule_id]);
    println!("rule {rule_id} activated for u-alice");

    // ── The next page load is personalized ──────────────────────────
    let page = r#"<html><head>
<script src="http://cdn-a.example/jquery.js"></script>
</head><body>store front</body></html>"#;

    let for_alice = oak.modify_page(Instant::ZERO, "u-alice", "/index.html", page);
    let for_bob = oak.modify_page(Instant::ZERO, "u-bob", "/index.html", page);

    println!("\npage served to u-alice now references: cdn-b.example");
    assert!(for_alice.html.contains("cdn-b.example"));
    println!(
        "cache hint header: {}: {}",
        OAK_ALTERNATE_HEADER,
        for_alice.alternate_header().unwrap()
    );

    assert!(for_bob.html.contains("cdn-a.example"));
    println!("page served to u-bob is unchanged — decisions are per user");
}
