//! Ad and analytics management with Type 1 and Type 3 rules.
//!
//! Table 1 of the paper shows ads/analytics/social dominating the outlier
//! census. This example shows the two rule types built for that tier:
//!
//! - **Type 1** — when the analytics beacon's host under-performs,
//!   remove the beacon entirely ("excluding the object entirely in cases
//!   of non-performance", §1),
//! - **Type 3** — when the ad network under-performs, swap in a
//!   *different* object: a house ad from the origin, plus a sub-rule that
//!   adjusts the page's ad-slot comment marker.
//!
//! Run with: `cargo run --example ad_replacement`

use oak::core::prelude::*;

const BEACON: &str = r#"<script src="http://telemetry.adnet.example/beacon.js" async></script>"#;
const AD_TAG: &str = r#"<iframe src="http://serve.ads.example/slot/17"></iframe>"#;
const HOUSE_AD: &str = r#"<img src="/static/house-ad.png" alt="subscribe!">"#;

fn page() -> String {
    format!(
        r#"<html><head>{BEACON}</head>
<body>
<!-- ad-slot: live -->
{AD_TAG}
<p>article text</p>
</body></html>"#
    )
}

/// A report where both third-party hosts are far out of family, with
/// enough healthy company for the MAD statistics to bite.
fn bad_day_report(user: &str) -> PerfReport {
    let mut r = PerfReport::new(user, "/article/42");
    r.push(ObjectTiming::new(
        "http://telemetry.adnet.example/beacon.js",
        "10.9.0.1",
        4_000,
        1_400.0,
    ));
    r.push(ObjectTiming::new(
        "http://serve.ads.example/slot/17",
        "10.9.0.2",
        18_000,
        1_900.0,
    ));
    r.push(ObjectTiming::new(
        "http://images.example/fig1.png",
        "10.0.0.3",
        30_000,
        90.0,
    ));
    r.push(ObjectTiming::new(
        "http://images.example/fig2.png",
        "10.0.0.3",
        30_000,
        95.0,
    ));
    r.push(ObjectTiming::new(
        "http://fonts.example/serif.woff",
        "10.0.0.4",
        30_000,
        84.0,
    ));
    r.push(ObjectTiming::new(
        "http://origin-static.example/app.js",
        "10.0.0.5",
        30_000,
        102.0,
    ));
    r
}

fn main() {
    let oak = Oak::new(OakConfig::default());

    // Type 1: drop the beacon when its host violates. Ten-minute TTL —
    // transient congestion clears, and the beacon comes back.
    let drop_beacon = oak
        .add_rule(Rule::remove(BEACON).with_ttl_ms(Some(10 * 60 * 1_000)))
        .unwrap();

    // Type 3: different object in the ad slot, with a sub-rule flipping
    // the slot marker. Requires 2 violations before firing — ad revenue
    // is money; one bad sample should not pull a paying ad (§4.2.4).
    let house_ad = oak
        .add_rule(
            Rule::replace_different(AD_TAG, [HOUSE_AD])
                .with_sub_rule("<!-- ad-slot: live -->", "<!-- ad-slot: house -->")
                .with_violations_required(2),
        )
        .unwrap();

    println!("rules: {drop_beacon} (type 1, TTL 10 min), {house_ad} (type 3, 2 violations)");

    // First bad report: beacon rule fires immediately; ad rule waits.
    let o1 = oak.ingest_report(Instant::ZERO, &bad_day_report("u-kim"), &NoFetch);
    println!(
        "\nreport 1: {} violators, activated {:?}",
        o1.violations.len(),
        o1.activated
    );
    assert_eq!(o1.activated, vec![drop_beacon]);

    let after_one = oak.modify_page(Instant(1), "u-kim", "/article/42", &page());
    assert!(!after_one.html.contains("beacon.js"), "beacon removed");
    assert!(
        after_one.html.contains("serve.ads.example"),
        "ad still live"
    );

    // Second bad report: the ad rule reaches its violation quota.
    let o2 = oak.ingest_report(Instant(2), &bad_day_report("u-kim"), &NoFetch);
    assert_eq!(o2.activated, vec![house_ad]);
    println!("report 2: activated {:?}", o2.activated);

    let after_two = oak.modify_page(Instant(3), "u-kim", "/article/42", &page());
    assert!(
        after_two.html.contains("house-ad.png"),
        "house ad in the slot"
    );
    assert!(
        after_two.html.contains("<!-- ad-slot: house -->"),
        "sub-rule fired"
    );
    println!("\npage for u-kim now:\n{}", after_two.html);

    // TTL: eleven minutes later the beacon returns; the house ad stays
    // (no TTL on the type 3 rule).
    let later = oak.modify_page(Instant(11 * 60 * 1_000), "u-kim", "/article/42", &page());
    assert!(later.html.contains("beacon.js"), "beacon back after TTL");
    assert!(later.html.contains("house-ad.png"));
    println!("after the 10-minute TTL the beacon is restored; the house ad remains");
}
