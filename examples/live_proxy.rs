//! The Oak proxy on a real TCP socket.
//!
//! Starts the Oak-enabled web server on localhost, then plays the client
//! side over actual HTTP: fetch the page (receiving the identifying
//! cookie), POST a performance report, and re-fetch to see the
//! personalized rewrite and the `X-Oak-Alternate` cache hint.
//!
//! Run with: `cargo run --example live_proxy`

use oak::core::prelude::*;
use oak::http::cookie::{get_cookie, OAK_USER_COOKIE};
use oak::http::{fetch_tcp, Method, Request, TcpServer};
use oak::server::{OakService, SiteStore, REPORT_PATH};

const PAGE: &str = r#"<html><head>
<script src="http://cdn-a.example/jquery.js"></script>
<link rel="stylesheet" href="http://styles.example/site.css">
</head><body>welcome</body></html>"#;

fn main() {
    // ── Server side ─────────────────────────────────────────────────
    let oak = Oak::new(OakConfig::default());
    oak.add_rule(Rule::replace_identical(
        r#"<script src="http://cdn-a.example/jquery.js">"#,
        [r#"<script src="http://cdn-b.example/jquery.js">"#],
    ))
    .unwrap();

    let mut store = SiteStore::new();
    store.add_page("/index.html", PAGE);

    // Wall-clock the engine: milliseconds since service start.
    let t0 = std::time::Instant::now();
    let service = OakService::new(oak, store)
        .with_clock(move || Instant(t0.elapsed().as_millis() as u64))
        .into_shared();

    let mut server = TcpServer::start(0, service).unwrap();
    let addr = server.addr();
    println!("oak proxy listening on http://{addr}/index.html");

    // ── Client side, over real HTTP ─────────────────────────────────
    // 1. First fetch: default page, cookie minted.
    let resp = fetch_tcp(addr, &Request::new(Method::Get, "/index.html")).unwrap();
    let user = get_cookie(resp.header("set-cookie").unwrap(), OAK_USER_COOKIE)
        .unwrap()
        .to_owned();
    println!(
        "\nGET /index.html → {} bytes, cookie {OAK_USER_COOKIE}={user}",
        resp.body.len()
    );
    assert!(resp.body_text().contains("cdn-a.example"));

    // 2. The "browser" measures its loads; cdn-a had a terrible day.
    let mut report = PerfReport::new(&user, "/index.html");
    report.push(ObjectTiming::new(
        "http://cdn-a.example/jquery.js",
        "10.0.0.1",
        31_000,
        1_210.0,
    ));
    report.push(ObjectTiming::new(
        "http://styles.example/site.css",
        "10.0.0.2",
        12_000,
        95.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/a.png",
        "10.0.0.3",
        20_000,
        102.0,
    ));
    report.push(ObjectTiming::new(
        "http://img.example/b.png",
        "10.0.0.3",
        22_000,
        88.0,
    ));
    report.push(ObjectTiming::new(
        "http://api.example/data.json",
        "10.0.0.4",
        9_000,
        110.0,
    ));

    let post = Request::new(Method::Post, REPORT_PATH)
        .with_body(report.to_json().into_bytes(), "application/json")
        .with_header("Cookie", &format!("{OAK_USER_COOKIE}={user}"));
    let resp = fetch_tcp(addr, &post).unwrap();
    println!(
        "POST {REPORT_PATH} ({} bytes) → {}",
        report.wire_size(),
        resp.status.0
    );

    // 3. Reload: the page is personalized.
    let reload = Request::new(Method::Get, "/index.html")
        .with_header("Cookie", &format!("{OAK_USER_COOKIE}={user}"));
    let resp = fetch_tcp(addr, &reload).unwrap();
    assert!(resp.body_text().contains("cdn-b.example"));
    println!(
        "GET /index.html → rewritten to cdn-b.example; {}: {}",
        OAK_ALTERNATE_HEADER,
        resp.header(OAK_ALTERNATE_HEADER).unwrap()
    );

    server.shutdown();
    println!("\ndone — proxy stopped");
}
