//! Oak as an offline auditing tool.
//!
//! §6: "Examining which rules are being activated by clients enables
//! site operators to determine which components of their sites are
//! performing poorly, effectively using the performance reports of Oak
//! as an offline auditing tool."
//!
//! This example runs a fleet of clients against a corpus site for a
//! simulated day, then folds Oak's activity log into the operator-facing
//! audit: which third parties keep tripping rules, for how many users,
//! and how often the configured alternatives turned out no better.
//!
//! Run with: `cargo run --release --example operator_audit`

use oak::client::{rules, SimSession};
use oak::core::audit::audit;
use oak::core::prelude::*;
use oak::net::SimTime;
use oak::webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 25,
        seed: 7,
        providers: 60,
        persistent_impairment_rate: 0.2,
        ..CorpusConfig::default()
    });

    // Operator: one rule per distinct third-party domain (sites share
    // providers, and one engine fronts the whole portfolio — §4.2.4's
    // wide-scope deployment). Each rule lists all three regional
    // replicas; the engine's linear alternative walk finds each user a
    // viable mirror on its own.
    let replicas = [
        "replica-na.example",
        "replica-eu.example",
        "replica-as.example",
    ];
    let oak = Oak::new(OakConfig::default());
    let mut domains = std::collections::BTreeMap::new();
    let mut seen = std::collections::BTreeSet::new();
    for site in &corpus.sites {
        for (domain, rule) in rules::rules_for_site_multi(site, &replicas) {
            if seen.insert(rule.default_text.clone()) {
                // §4.2.4's activation dampener: a provider must violate
                // twice before a rule fires, so one-off blips don't churn
                // the portfolio.
                if let Ok(id) = oak.add_rule(rule.with_violations_required(2)) {
                    domains.insert(id, domain);
                }
            }
        }
    }
    let mut session = SimSession::new(&corpus, oak);

    // A day of traffic: every client hits every site hourly.
    for hour in 0..24u64 {
        for site_index in 0..corpus.sites.len() {
            for &client in &corpus.clients {
                session.visit(site_index, client, SimTime::from_hours(hour));
            }
        }
    }

    let summary = audit(&session.oak.log());
    println!("{summary}");

    // Fold per-rule entries into per-domain rows (a provider may have an
    // inline-form and a prefix-form rule).
    let mut by_domain: std::collections::BTreeMap<&str, (usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for (rule_id, entry) in summary.busiest_rules() {
        let domain = domains.get(&rule_id).map(String::as_str).unwrap_or("?");
        let row = by_domain.entry(domain).or_default();
        row.0 += entry.activations;
        row.1 = row.1.max(entry.distinct_users);
        row.2 += entry.deactivations;
    }
    let mut rows: Vec<_> = by_domain.into_iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1 .0));

    println!("\nworst offenders by domain:");
    for (domain, (activations, users, deactivations)) in rows.into_iter().take(8) {
        println!(
            "  {:<32} {:>4} activations, {:>3} users, abandon rate {:>4.0}%",
            domain,
            activations,
            users,
            deactivations as f64 / activations.max(1) as f64 * 100.0
        );
    }
    println!(
        "\nthe operator reads this without touching a packet trace: the listed domains\n\
         are the page components that under-perform for real users (§6)"
    );
}
