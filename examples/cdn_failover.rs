//! CDN failover over the simulated Internet.
//!
//! A synthetic site population loads from a client in Europe. Some of the
//! third-party providers carry a persistent path degradation toward
//! European clients (a "network blind spot" — invisible to the operator,
//! §1). Oak's client reports expose it, prefix rules route the affected
//! objects to the EU replica, and page load times recover.
//!
//! Run with: `cargo run --release --example cdn_failover`

use oak::client::{rules, SimSession};
use oak::core::prelude::*;
use oak::net::{Region, SimTime};
use oak::webgen::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        sites: 30,
        seed: 2024,
        providers: 60,
        // Crank persistent degradations so the demo reliably shows one.
        persistent_impairment_rate: 0.35,
        ..CorpusConfig::default()
    });

    // Operator: one Type 2 prefix rule per external domain per site,
    // pointing at the replica closest to our client (EU).
    let oak = Oak::new(OakConfig::default());
    let mut rule_count = 0;
    for site in &corpus.sites {
        for (_, rule) in rules::rules_for_site(site, rules::closest_replica(Region::Europe)) {
            if oak.add_rule(rule).is_ok() {
                rule_count += 1;
            }
        }
    }
    println!(
        "installed {rule_count} type-2 rules across {} sites",
        corpus.sites.len()
    );

    // Pick a European vantage point.
    let client = *corpus
        .clients
        .iter()
        .find(|&&c| corpus.world.client(c).region == Region::Europe)
        .expect("corpus has EU clients");

    let mut session = SimSession::new(&corpus, oak);

    // Visit every site repeatedly: Oak (left) vs default (right).
    let mut improved = 0;
    let mut total = 0;
    println!("\nsite        default→oak PLT after convergence (3 visits)");
    for site_index in 0..corpus.sites.len() {
        let mut oak_plt = 0.0;
        for round in 0..3u64 {
            let t = SimTime::from_minutes(round * 30);
            let (load, outcome) = session.visit(site_index, client, t);
            oak_plt = load.plt_ms;
            if round == 0 && !outcome.activated.is_empty() {
                println!(
                    "  {}: activated {} rule(s) on first report",
                    corpus.sites[site_index].host,
                    outcome.activated.len()
                );
            }
        }
        let default_plt = session
            .visit_default(site_index, client, SimTime::from_minutes(60))
            .plt_ms;
        total += 1;
        if oak_plt < default_plt {
            improved += 1;
        }
        if (default_plt - oak_plt) / default_plt > 0.25 {
            println!(
                "  {:<18} {:>8.0} ms → {:>8.0} ms  ({:>4.1}× faster)",
                corpus.sites[site_index].host,
                default_plt,
                oak_plt,
                default_plt / oak_plt
            );
        }
    }
    println!("\nOak beat the default page on {improved}/{total} sites for this client");
    println!("({} rule-state changes logged)", session.oak.log().len());
}
